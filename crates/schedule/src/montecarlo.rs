//! Monte Carlo schedule risk analysis.
//!
//! PERT's normal approximation (see [`pert`](crate::pert)) only sums
//! variance along a single critical path; when near-critical parallel
//! paths exist it underestimates risk (the classic "merge bias").
//! Monte Carlo sampling fixes that: draw every activity duration from
//! its three-point (triangular) distribution, run CPM per sample, and
//! read completion probabilities and per-activity *criticality
//! indices* off the empirical distribution.
//!
//! Sampling is deterministic per seed, like everything in this
//! workspace — including across thread counts: every sample draws from
//! its own RNG stream derived from `(seed, sample_index)`, so
//! [`simulate`] returns bit-identical results whether the per-sample
//! CPM passes run on one core or sixteen.

use crate::cpm::CpmAnalysis;
use crate::error::ScheduleError;
use crate::network::{ActivityId, ScheduleNetwork, WorkDays};
use crate::pert::ThreePoint;

/// A tiny deterministic generator (SplitMix64). Duplicated from the
/// `simtools` crate on purpose: `schedule` sits *below* the simulation
/// substrate in the workspace layering and must stay dependency-free.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The SplitMix64 finaliser: scrambles `(seed, index)` into a
/// well-separated starting state for one sample's RNG stream, making
/// samples independent of how they are chunked across threads.
fn sample_rng(seed: u64, index: u64) -> Rng {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    Rng(z ^ (z >> 31))
}

/// Minimum samples per worker before another thread pays for itself:
/// each sample is a full CPM pass, so only meaningfully sized runs
/// fan out.
const MIN_SAMPLES_PER_THREAD: usize = 64;

/// Default worker count: the machine's parallelism, bounded so small
/// runs stay sequential.
fn default_threads(samples: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(samples / MIN_SAMPLES_PER_THREAD).max(1)
}

/// Inverse-CDF sample from the triangular distribution `(a, m, b)`.
fn triangular(rng: &mut Rng, a: f64, m: f64, b: f64) -> f64 {
    if b <= a {
        return a;
    }
    let u = rng.next_f64();
    let fc = (m - a) / (b - a);
    if u < fc {
        a + (u * (b - a) * (m - a)).sqrt()
    } else {
        b - ((1.0 - u) * (b - a) * (b - m)).sqrt()
    }
}

/// The result of a Monte Carlo schedule simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskAnalysis {
    samples: Vec<f64>,
    criticality: Vec<f64>,
    mean: f64,
}

impl RiskAnalysis {
    /// Number of samples drawn.
    pub fn samples(&self) -> usize {
        self.samples.len()
    }

    /// Mean simulated project duration, in days.
    pub fn mean_duration(&self) -> WorkDays {
        WorkDays::new(self.mean)
    }

    /// The `q`-quantile (0–1) of project duration — e.g. `0.8` gives
    /// the duration you can commit to with 80% confidence.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile(&self, q: f64) -> WorkDays {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let idx = ((self.samples.len() - 1) as f64 * q).round() as usize;
        WorkDays::new(self.samples[idx])
    }

    /// Probability the project finishes within `deadline`.
    pub fn probability_within(&self, deadline: WorkDays) -> f64 {
        let n = self
            .samples
            .iter()
            .filter(|&&d| d <= deadline.days() + 1e-12)
            .count();
        n as f64 / self.samples.len() as f64
    }

    /// The *criticality index* of an activity: the fraction of samples
    /// in which it lay on the critical path. Activities with high
    /// indices are where management attention buys the most.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from the analyzed network.
    pub fn criticality(&self, id: ActivityId) -> f64 {
        self.criticality[id.index()]
    }
}

/// Runs `samples` Monte Carlo CPM passes over `network`, with each
/// estimated activity's duration drawn from its triangular three-point
/// distribution (activities without an estimate keep their
/// deterministic duration).
///
/// # Errors
///
/// * [`ScheduleError::UnknownActivity`] — an estimate names a foreign
///   activity.
/// * [`ScheduleError::InvalidDuration`] — `samples == 0` is reported as
///   an invalid configuration.
///
/// # Example
///
/// ```
/// use schedule::montecarlo::simulate;
/// use schedule::pert::ThreePoint;
/// use schedule::{ScheduleNetwork, WorkDays};
///
/// # fn main() -> Result<(), schedule::ScheduleError> {
/// let mut net = ScheduleNetwork::new();
/// let a = net.add_activity("layout", WorkDays::new(10.0))?;
/// let est = vec![(a, ThreePoint::new(6.0, 10.0, 20.0)?)];
/// let risk = simulate(&net, &est, 2000, 7)?;
/// // The triangular (6, 10, 20) has mean 12: well above the mode.
/// assert!(risk.mean_duration().days() > 10.0);
/// assert!(risk.probability_within(WorkDays::new(20.0)) > 0.99);
/// # Ok(())
/// # }
/// ```
pub fn simulate(
    network: &ScheduleNetwork,
    estimates: &[(ActivityId, ThreePoint)],
    samples: usize,
    seed: u64,
) -> Result<RiskAnalysis, ScheduleError> {
    simulate_threaded(network, estimates, samples, seed, default_threads(samples))
}

/// One worker's contribution: project durations for its sample range
/// plus per-activity critical-path hit counts.
type ChunkResult = Result<(Vec<f64>, Vec<usize>), ScheduleError>;

/// [`simulate`] with an explicit worker count.
///
/// The per-sample CPM passes are independent, so they fan out over
/// `threads` scoped OS threads (`std::thread::scope` — no external
/// runtime). Each sample's durations are drawn from an RNG stream
/// derived from `(seed, sample_index)`, so the result is **identical
/// for every `threads` value** — parallelism is purely a wall-clock
/// knob, verified by `threading_is_invisible`.
///
/// `threads` is clamped to `[1, samples]`.
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_threaded(
    network: &ScheduleNetwork,
    estimates: &[(ActivityId, ThreePoint)],
    samples: usize,
    seed: u64,
    threads: usize,
) -> Result<RiskAnalysis, ScheduleError> {
    if samples == 0 {
        return Err(ScheduleError::InvalidDuration(0.0));
    }
    for (id, _) in estimates {
        if !network.activities().any(|a| a == *id) {
            return Err(ScheduleError::UnknownActivity(*id));
        }
    }
    let threads = threads.clamp(1, samples);
    let n = network.activity_count();
    let mut mc_span = obs::span!("schedule.montecarlo", samples = samples, threads = threads);
    let (mut durations, critical_hits) = if threads == 1 {
        let _chunk = obs::span!("mc.chunk", chunk = 0u64, samples = samples);
        run_chunk(network, estimates, 0..samples, seed)?
    } else {
        // Contiguous chunks, remainder spread over the first workers.
        let base = samples / threads;
        let extra = samples % threads;
        let mut ranges = Vec::with_capacity(threads);
        let mut start = 0usize;
        for t in 0..threads {
            let len = base + usize::from(t < extra);
            ranges.push(start..start + len);
            start += len;
        }
        let results: Vec<ChunkResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .enumerate()
                .map(|(k, range)| {
                    scope.spawn(move || {
                        // Lane = 1 + chunk index (0 is the orchestrating
                        // thread's convention): the merged trace is a
                        // function of the chunking, not OS scheduling.
                        obs::Collector::set_lane(1 + k as u64);
                        let _chunk = obs::span!("mc.chunk", chunk = k, samples = range.len());
                        run_chunk(network, estimates, range, seed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let mut durations = Vec::with_capacity(samples);
        let mut critical_hits = vec![0usize; n];
        for result in results {
            let (d, hits) = result?;
            durations.extend(d);
            for (acc, h) in critical_hits.iter_mut().zip(hits) {
                *acc += h;
            }
        }
        (durations, critical_hits)
    };
    durations.sort_by(|a, b| a.total_cmp(b));
    let mean = durations.iter().sum::<f64>() / samples as f64;
    mc_span.record("mean_days", mean);
    let criticality = critical_hits
        .iter()
        .map(|&h| h as f64 / samples as f64)
        .collect();
    Ok(RiskAnalysis {
        samples: durations,
        criticality,
        mean,
    })
}

/// Runs the samples in `range` sequentially on a private clone of the
/// network, returning their project durations (in range order) and
/// per-activity critical-path hit counts.
fn run_chunk(
    network: &ScheduleNetwork,
    estimates: &[(ActivityId, ThreePoint)],
    range: std::ops::Range<usize>,
    seed: u64,
) -> ChunkResult {
    let mut durations: Vec<f64> = Vec::with_capacity(range.len());
    let mut critical_hits = vec![0usize; network.activity_count()];
    let mut working = network.clone();
    for sample in range {
        let mut rng = sample_rng(seed, sample as u64);
        for (id, est) in estimates {
            let d = triangular(&mut rng, est.optimistic, est.most_likely, est.pessimistic);
            working.set_duration(*id, WorkDays::new(d))?;
        }
        let cpm: CpmAnalysis = working.analyze()?;
        durations.push(cpm.project_duration().days());
        for id in working.activities() {
            if cpm.is_critical(id) {
                critical_hits[id.index()] += 1;
            }
        }
    }
    Ok((durations, critical_hits))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate(a: f64, m: f64, b: f64) -> ThreePoint {
        ThreePoint::new(a, m, b).expect("valid three-point")
    }

    #[test]
    fn deterministic_per_seed() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(5.0)).unwrap();
        let est = vec![(a, estimate(2.0, 5.0, 10.0))];
        let r1 = simulate(&net, &est, 500, 9).unwrap();
        let r2 = simulate(&net, &est, 500, 9).unwrap();
        assert_eq!(r1, r2);
        let r3 = simulate(&net, &est, 500, 10).unwrap();
        assert_ne!(r1.mean_duration(), r3.mean_duration());
    }

    #[test]
    fn triangular_mean_matches_theory() {
        // Triangular(0, 3, 9) has mean (0+3+9)/3 = 4.
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(1.0)).unwrap();
        let est = vec![(a, estimate(0.0, 3.0, 9.0))];
        let r = simulate(&net, &est, 20_000, 1).unwrap();
        assert!((r.mean_duration().days() - 4.0).abs() < 0.05);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(1.0)).unwrap();
        let est = vec![(a, estimate(2.0, 4.0, 12.0))];
        let r = simulate(&net, &est, 5000, 2).unwrap();
        let q10 = r.quantile(0.1).days();
        let q50 = r.quantile(0.5).days();
        let q90 = r.quantile(0.9).days();
        assert!(q10 <= q50 && q50 <= q90);
        assert!(q10 >= 2.0 - 1e-9 && q90 <= 12.0 + 1e-9);
        assert_eq!(r.probability_within(WorkDays::new(12.0)), 1.0);
        assert_eq!(r.probability_within(WorkDays::new(1.9)), 0.0);
    }

    #[test]
    fn merge_bias_exceeds_single_path_pert() {
        // Two identical parallel activities into a sink: the project
        // duration is the MAX of two triangulars, so its mean exceeds
        // one triangular's mean — the merge bias PERT misses.
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(5.0)).unwrap();
        let b = net.add_activity("b", WorkDays::new(5.0)).unwrap();
        let sink = net.add_activity("sink", WorkDays::ZERO).unwrap();
        net.add_precedence(a, sink).unwrap();
        net.add_precedence(b, sink).unwrap();
        let tri = estimate(2.0, 5.0, 8.0); // mean 5
        let r = simulate(&net, &[(a, tri), (b, tri)], 10_000, 3).unwrap();
        assert!(
            r.mean_duration().days() > 5.2,
            "mean {} should show merge bias",
            r.mean_duration()
        );
    }

    #[test]
    fn criticality_index_splits_between_symmetric_paths() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(5.0)).unwrap();
        let b = net.add_activity("b", WorkDays::new(5.0)).unwrap();
        let tri = estimate(2.0, 5.0, 8.0);
        let r = simulate(&net, &[(a, tri), (b, tri)], 4000, 4).unwrap();
        // Symmetric parallel activities are each critical about half
        // the time (both when they tie, rare for continuous draws).
        assert!(
            (r.criticality(a) - 0.5).abs() < 0.05,
            "{}",
            r.criticality(a)
        );
        assert!((r.criticality(b) - 0.5).abs() < 0.05);
        assert!((r.criticality(a) + r.criticality(b) - 1.0).abs() < 0.05);
    }

    #[test]
    fn dominant_path_has_criticality_one() {
        let mut net = ScheduleNetwork::new();
        let long = net.add_activity("long", WorkDays::new(50.0)).unwrap();
        let short = net.add_activity("short", WorkDays::new(1.0)).unwrap();
        let r = simulate(&net, &[(short, estimate(0.5, 1.0, 1.5))], 1000, 5).unwrap();
        assert_eq!(r.criticality(long), 1.0);
        assert_eq!(r.criticality(short), 0.0);
        assert_eq!(r.samples(), 1000);
    }

    #[test]
    fn threading_is_invisible() {
        // Same seed, any worker count: bit-identical analysis. This is
        // the contract that lets `simulate` pick a thread count from
        // the machine without breaking reproducibility.
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(5.0)).unwrap();
        let b = net.add_activity("b", WorkDays::new(2.0)).unwrap();
        let sink = net.add_activity("sink", WorkDays::new(1.0)).unwrap();
        net.add_precedence(a, sink).unwrap();
        net.add_precedence(b, sink).unwrap();
        let est = vec![(a, estimate(2.0, 5.0, 9.0)), (b, estimate(1.0, 2.0, 6.0))];
        let sequential = simulate_threaded(&net, &est, 501, 11, 1).unwrap();
        for threads in [2, 3, 4, 8] {
            let parallel = simulate_threaded(&net, &est, 501, 11, threads).unwrap();
            assert_eq!(sequential, parallel, "threads={threads} diverged");
        }
        // And the auto-threaded entry point agrees as well.
        assert_eq!(sequential, simulate(&net, &est, 501, 11).unwrap());
    }

    #[test]
    fn thread_count_is_clamped() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(1.0)).unwrap();
        let est = vec![(a, estimate(1.0, 2.0, 3.0))];
        // More workers than samples: clamped, still correct.
        let r = simulate_threaded(&net, &est, 5, 3, 64).unwrap();
        assert_eq!(r.samples(), 5);
        // Zero workers: clamped to one.
        let r0 = simulate_threaded(&net, &est, 5, 3, 0).unwrap();
        assert_eq!(r, r0);
    }

    #[test]
    fn rejects_bad_input() {
        let net = ScheduleNetwork::new();
        assert!(simulate(&net, &[], 0, 1).is_err());
        let mut other = ScheduleNetwork::new();
        let foreign = other.add_activity("x", WorkDays::new(1.0)).unwrap();
        assert!(simulate(&net, &[(foreign, estimate(1.0, 1.0, 1.0))], 10, 1).is_err());
    }

    #[test]
    fn degenerate_triangular_is_constant() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(1.0)).unwrap();
        let r = simulate(&net, &[(a, estimate(3.0, 3.0, 3.0))], 100, 6).unwrap();
        assert_eq!(r.quantile(0.0), WorkDays::new(3.0));
        assert_eq!(r.quantile(1.0), WorkDays::new(3.0));
    }
}
