//! Property-based tests over random operation sequences on the
//! metadata database: referential integrity, dense versioning, and
//! link validity must hold regardless of interleaving.
//!
//! Ported to the in-repo `harness` framework: `prop_oneof!` becomes
//! `one_of(...)` over boxed strategies; shrinking still minimizes the
//! failing operation sequence.

use harness::prelude::*;
use metadata::{EntityInstanceId, MetadataDb, ScheduleInstanceId};
use schedule::WorkDays;
use schema::examples;

/// An abstract operation against the circuit-schema database.
#[derive(Debug, Clone)]
enum Op {
    Plan {
        activity: usize,
        start: u16,
        duration: u16,
    },
    RunCreate {
        start: u16,
        extra: u16,
    },
    SupplyStimuli {
        at: u16,
    },
    LinkLatest {
        activity: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    one_of(vec![
        (0usize..2, any_u16(), any_u16())
            .prop_map(|(activity, start, duration)| Op::Plan {
                activity,
                start,
                duration,
            })
            .boxed(),
        (any_u16(), any_u16())
            .prop_map(|(start, extra)| Op::RunCreate { start, extra })
            .boxed(),
        any_u16().prop_map(|at| Op::SupplyStimuli { at }).boxed(),
        (0usize..2)
            .prop_map(|activity| Op::LinkLatest { activity })
            .boxed(),
    ])
}

const ACTIVITIES: [&str; 2] = ["Create", "Simulate"];

fn apply(db: &mut MetadataDb, op: &Op, clock: &mut f64) {
    match op {
        Op::Plan {
            activity,
            start,
            duration,
        } => {
            let session = db.begin_planning(WorkDays::new(*clock));
            db.plan_activity(
                session,
                ACTIVITIES[*activity],
                WorkDays::new(f64::from(*start) / 100.0),
                WorkDays::new(f64::from(*duration) / 100.0),
            )
            .expect("known activity");
        }
        Op::RunCreate { start, extra } => {
            let begin = clock.max(f64::from(*start) / 100.0);
            let run = db
                .begin_run("Create", "alice", WorkDays::new(begin))
                .expect("known activity");
            let end = begin + f64::from(*extra) / 100.0 + 0.01;
            let data = db.store_data("n.net", vec![1, 2, 3]);
            db.finish_run(run, "netlist", data, WorkDays::new(end), &[])
                .expect("valid finish");
            *clock = end;
        }
        Op::SupplyStimuli { at } => {
            let data = db.store_data("s.stim", vec![9]);
            db.supply_input(
                "stimuli",
                "bob",
                WorkDays::new(f64::from(*at) / 100.0),
                data,
            )
            .expect("known class");
        }
        Op::LinkLatest { activity } => {
            let name = ACTIVITIES[*activity];
            let Some(plan) = db.current_plan(name) else {
                return;
            };
            if plan.is_complete() {
                return;
            }
            let sc = plan.id();
            // Find the newest instance produced by this activity.
            let candidate = db.runs_of(name).iter().rev().find_map(|r| r.output());
            if let Some(entity) = candidate {
                db.link_completion(sc, entity).expect("valid link");
            }
        }
    }
}

harness::props! {
    config(cases = 64);

    fn invariants_hold_under_random_ops(ops in vec(arb_op(), 0..40)) {
        let mut db = MetadataDb::for_schema(&examples::circuit_design());
        let mut clock = 0.0;
        for op in &ops {
            apply(&mut db, op, &mut clock);
        }

        // Versions are dense and ordered per container.
        for class in db.entity_classes().map(str::to_owned).collect::<Vec<_>>() {
            let container = db.entity_container(&class).expect("exists");
            for (i, &id) in container.iter().enumerate() {
                let inst = db.entity_instance(id);
                prop_assert_eq!(inst.version() as usize, i + 1);
                prop_assert_eq!(inst.class(), class.as_str());
            }
        }
        for activity in db.activities().map(str::to_owned).collect::<Vec<_>>() {
            let container = db.schedule_container(&activity).expect("exists");
            for (i, &id) in container.iter().enumerate() {
                let sc = db.schedule_instance(id);
                prop_assert_eq!(sc.version() as usize, i + 1);
                // Provenance chains to the immediately preceding version.
                if i > 0 {
                    prop_assert_eq!(sc.derived_from(), Some(container[i - 1]));
                } else {
                    prop_assert_eq!(sc.derived_from(), None);
                }
            }
        }

        // Runs have ordered timestamps and dense iterations per activity.
        for activity in ACTIVITIES {
            for (i, run) in db.runs_of(activity).iter().enumerate() {
                prop_assert_eq!(run.iteration() as usize, i + 1);
                if let Some(f) = run.finished_at() {
                    prop_assert!(f.days() >= run.started_at().days());
                }
            }
        }

        // Links always target instances of the activity's output class,
        // produced by a run of that activity.
        for activity in ACTIVITIES {
            if let Some(plan) = db.current_plan(activity) {
                if let Some(entity) = plan.linked_entity() {
                    let inst = db.entity_instance(entity);
                    prop_assert_eq!(
                        inst.class(),
                        db.output_class_of(activity).expect("declared")
                    );
                    let run = db.run(inst.produced_by().expect("linked instances have runs"));
                    prop_assert_eq!(run.activity(), activity);
                }
            }
        }

        // actual_start is the min over run starts.
        if let Some(start) = db.actual_start("Create") {
            let min = db
                .runs_of("Create")
                .iter()
                .map(|r| r.started_at().days())
                .fold(f64::INFINITY, f64::min);
            prop_assert!((start.days() - min).abs() < 1e-9);
        }
    }

    fn dump_load_roundtrip_under_random_ops(ops in vec(arb_op(), 0..40)) {
        let mut db = MetadataDb::for_schema(&examples::circuit_design());
        let mut clock = 0.0;
        for op in &ops {
            apply(&mut db, op, &mut clock);
        }
        let dump = db.dump();
        let loaded = MetadataDb::load(&dump).expect("own dumps load");
        prop_assert_eq!(loaded.dump(), dump);
        // Derived queries agree too.
        for activity in ACTIVITIES {
            prop_assert_eq!(loaded.actual_start(activity), db.actual_start(activity));
            prop_assert_eq!(loaded.actual_finish(activity), db.actual_finish(activity));
            prop_assert_eq!(loaded.last_duration(activity), db.last_duration(activity));
        }
    }

    fn plan_evolution_is_a_version_chain(versions in 1usize..10) {
        let mut db = MetadataDb::for_schema(&examples::circuit_design());
        let mut latest: Option<ScheduleInstanceId> = None;
        for v in 0..versions {
            let session = db.begin_planning(WorkDays::new(v as f64));
            latest = Some(
                db.plan_activity(session, "Create", WorkDays::ZERO, WorkDays::new(1.0))
                    .expect("known activity"),
            );
        }
        let chain = db.plan_evolution(latest.expect("planned at least once"));
        prop_assert_eq!(chain.len(), versions);
        // Newest first, versions descending.
        for (i, id) in chain.iter().enumerate() {
            prop_assert_eq!(
                db.schedule_instance(*id).version() as usize,
                versions - i
            );
        }
    }

    fn derivation_cone_is_closed(chain_len in 1usize..8) {
        // Build a dependency chain of netlist instances (each run
        // consumes the previous instance) and check the cone.
        let mut db = MetadataDb::for_schema(&examples::circuit_design());
        let mut prev: Option<EntityInstanceId> = None;
        let mut t = 0.0;
        for _ in 0..chain_len {
            let run = db.begin_run("Create", "alice", WorkDays::new(t)).expect("known");
            t += 1.0;
            let data = db.store_data("n", vec![]);
            let inputs: Vec<_> = prev.into_iter().collect();
            let id = db
                .finish_run(run, "netlist", data, WorkDays::new(t), &inputs)
                .expect("valid");
            prev = Some(id);
        }
        let last = prev.expect("built at least one");
        let cone = db.derivation_of(last);
        prop_assert_eq!(cone.len(), chain_len);
        // Closed under depends_on.
        for id in &cone {
            for dep in db.entity_instance(*id).depends_on() {
                prop_assert!(cone.contains(dep));
            }
        }
    }
}
