//! Regenerates **Fig. 4**: the example task schema — netlist editor
//! producing a netlist, simulator consuming netlist + stimuli to
//! produce performance — parsed from DSL source and projected onto the
//! flow graph.

use schema::{examples, SchemaGraph};

fn main() {
    let schema = examples::circuit_design();
    println!("DSL source:");
    print!("{}", schema.to_source());

    println!("\nConstruction rules (d_i = f(d_1, ..., d_n)):");
    for rule in schema.rules() {
        println!(
            "  {} = {}({})",
            rule.output(),
            rule.tool(),
            rule.inputs().join(", ")
        );
    }

    let graph = SchemaGraph::for_schema(&schema);
    println!("\nSchema flow graph ([data] and (activity) nodes):");
    let dag = graph.dag();
    for edge in dag.edges() {
        let from = dag.node_weight(edge.from).expect("edge endpoints exist");
        let to = dag.node_weight(edge.to).expect("edge endpoints exist");
        println!("  {from} -> {to}");
    }
    println!(
        "\nPrimary inputs (designer-supplied): {:?}",
        schema
            .primary_inputs()
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
    );
}
