//! SplitMix64 — the deterministic generator behind every synthetic
//! behaviour in this workspace.
//!
//! Tool durations, failure decisions, and workload shapes must be
//! *reproducible*: the experiments in EXPERIMENTS.md quote concrete
//! numbers, and re-running a bench must regenerate them. SplitMix64 is
//! tiny, passes BigCrush, and seeding it with a hash of the request
//! makes every invocation a pure function of its inputs.

/// A SplitMix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use simtools::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; bias is negligible for our bounds (< 2^32).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A sample from `Normal(mean, std_dev)` via Box–Muller, clamped to
    /// be non-negative (durations cannot be negative).
    pub fn next_duration(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (mean + std_dev * z).max(0.0)
    }
}

/// Stable 64-bit hash (FNV-1a) for deriving seeds from names.
pub fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mixes several seed components into one.
pub fn mix(parts: &[u64]) -> u64 {
    let mut g = SplitMix64::new(0x243F_6A88_85A3_08D3);
    let mut acc = 0u64;
    for &p in parts {
        g.state ^= p;
        acc ^= g.next_u64();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut g = SplitMix64::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| g.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_bounds() {
        let mut g = SplitMix64::new(77);
        for _ in 0..10_000 {
            assert!(g.next_below(7) < 7);
        }
        // All residues reachable.
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[g.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn durations_non_negative_and_centered() {
        let mut g = SplitMix64::new(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.next_duration(10.0, 2.0)).collect();
        assert!(samples.iter().all(|&d| d >= 0.0));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn hash_str_stable_and_distinct() {
        assert_eq!(hash_str("simulator"), hash_str("simulator"));
        assert_ne!(hash_str("simulator"), hash_str("router"));
        assert_ne!(hash_str(""), hash_str("a"));
    }

    #[test]
    fn mix_depends_on_order_and_content() {
        assert_eq!(mix(&[1, 2]), mix(&[1, 2]));
        assert_ne!(mix(&[1, 2]), mix(&[2, 1]));
        assert_ne!(mix(&[1]), mix(&[1, 0]));
    }
}
