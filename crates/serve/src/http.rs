//! A deliberately small, total HTTP/1.1 wire layer: request parsing
//! with hard limits and a response writer. Everything here is written
//! to survive a fuzzer — malformed input maps to a typed
//! [`ParseReject`] (which the server answers as a 4xx/5xx) or to
//! [`ReadOutcome::Disconnected`] (which the server answers by closing
//! the socket), never to a panic.
//!
//! Scope is exactly what the workspace server needs:
//!
//! * request line + headers + optional `Content-Length` body;
//! * no chunked transfer encoding (rejected with 501);
//! * `HTTP/1.1` and `HTTP/1.0` only (else 505);
//! * ASCII-clean header names; arbitrary bytes tolerated in values.

use std::io::{self, Read};
use std::time::Duration;

/// Hard cap on the request line, bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Hard cap on a single header line, bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Hard cap on the number of headers.
pub const MAX_HEADERS: usize = 64;
/// Hard cap on a request body, bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, ... (uppercased as received).
    pub method: String,
    /// Decoded path, query string stripped (e.g. `/projects/alu`).
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open after this
    /// exchange (HTTP/1.1 default; overridden by `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request was refused at the wire layer. Maps 1:1 onto an HTTP
/// status the server sends back before closing or continuing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseReject {
    /// The HTTP status to answer with.
    pub status: u16,
    /// Human-readable reason (becomes the response body).
    pub reason: String,
}

impl ParseReject {
    fn new(status: u16, reason: impl Into<String>) -> Self {
        ParseReject {
            status,
            reason: reason.into(),
        }
    }
}

/// The outcome of reading one request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A parseable request.
    Request(Request),
    /// Malformed input; answer `reject.status` and drop the
    /// connection.
    Reject(ParseReject),
    /// The peer closed (or timed out) before sending a full request;
    /// close silently.
    Disconnected,
}

/// Reads bytes up to and including the first `\r\n\r\n` (or `\n\n`),
/// bounded by `limit`; returns the header block and any body prefix
/// read past it.
fn read_head(stream: &mut impl Read, limit: usize) -> io::Result<Option<(Vec<u8>, Vec<u8>)>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        // Scan for the blank line separating headers from body.
        if let Some(pos) = find_blank_line(&buf) {
            let body = buf.split_off(pos);
            return Ok(Some((buf, body)));
        }
        if buf.len() > limit {
            // Oversized head: report what we have; the parser turns it
            // into a 431.
            return Ok(Some((buf, Vec::new())));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            // Truncated head: peer hung up mid-request.
            return Ok(Some((buf, Vec::new())));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Index just past the first `\r\n\r\n` or `\n\n` in `buf`.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Splits percent-encoded `%XX` sequences; invalid escapes pass
/// through literally (robustness over strictness).
fn percent_decode(s: &str) -> String {
    fn hex(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                out.push(hi * 16 + lo);
                i += 3;
                continue;
            }
        }
        if bytes[i] == b'+' {
            out.push(b' ');
        } else {
            out.push(bytes[i]);
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses `a=b&c=d` into decoded pairs.
fn parse_query(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Parses the header block (request line + header lines) of `head`.
fn parse_head(head: &[u8]) -> Result<Request, ParseReject> {
    let text = match std::str::from_utf8(head) {
        Ok(t) => t,
        Err(_) => return Err(ParseReject::new(400, "request head is not valid UTF-8")),
    };
    let mut lines = text.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(ParseReject::new(414, "request line too long"));
    }
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(ParseReject::new(
                400,
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    if !method
        .chars()
        .all(|c| c.is_ascii_alphabetic() && c.is_ascii_uppercase())
        || method.is_empty()
    {
        return Err(ParseReject::new(400, format!("bad method {method:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        // Something that is not even HTTP-shaped is a malformed
        // request (400); a real-but-unsupported version is 505.
        if !version.starts_with("HTTP/") {
            return Err(ParseReject::new(
                400,
                format!("not an HTTP request line (version {version:?})"),
            ));
        }
        return Err(ParseReject::new(
            505,
            format!("unsupported protocol version {version:?}"),
        ));
    }
    if !target.starts_with('/') {
        return Err(ParseReject::new(
            400,
            format!("request target {target:?} must be origin-form"),
        ));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if line.len() > MAX_HEADER_LINE {
            return Err(ParseReject::new(431, "header line too long"));
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseReject::new(431, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseReject::new(400, format!("malformed header {line:?}")));
        };
        let name = name.trim();
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_graphic() && b != b':') {
            return Err(ParseReject::new(
                400,
                format!("malformed header name {name:?}"),
            ));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }
    Ok(Request {
        method: method.to_owned(),
        path: percent_decode(raw_path),
        query: parse_query(raw_query),
        headers,
        body: Vec::new(),
    })
}

/// Reads and parses one request from `stream`. `read_timeout` should
/// already be installed on the socket; timeouts and resets surface as
/// [`ReadOutcome::Disconnected`] (mid-head) or a 408 reject is left to
/// the caller's policy via `Disconnected`.
pub fn read_request(stream: &mut impl Read) -> ReadOutcome {
    let head_limit = MAX_REQUEST_LINE + MAX_HEADERS * MAX_HEADER_LINE;
    let (head, body_prefix) = match read_head(stream, head_limit) {
        Ok(Some(parts)) => parts,
        Ok(None) => return ReadOutcome::Disconnected,
        Err(e) => {
            return match e.kind() {
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                    ReadOutcome::Reject(ParseReject::new(408, "timed out reading request"))
                }
                _ => ReadOutcome::Disconnected,
            }
        }
    };
    if head.len() > head_limit {
        return ReadOutcome::Reject(ParseReject::new(431, "request head too large"));
    }
    if find_blank_line(&head).is_none() {
        // EOF before the head terminator: a truncated request. If the
        // peer sent nothing parseable at all, close silently; if it
        // sent a partial head, answer 400 so well-behaved-but-buggy
        // clients learn something.
        return if head.iter().all(|b| b.is_ascii_whitespace()) {
            ReadOutcome::Disconnected
        } else {
            ReadOutcome::Reject(ParseReject::new(400, "truncated request head"))
        };
    }
    let mut request = match parse_head(&head) {
        Ok(r) => r,
        Err(reject) => return ReadOutcome::Reject(reject),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return ReadOutcome::Reject(ParseReject::new(501, "transfer-encoding not supported"));
    }
    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return ReadOutcome::Reject(ParseReject::new(
                    400,
                    format!("bad content-length {v:?}"),
                ))
            }
        },
    };
    if content_length > MAX_BODY {
        return ReadOutcome::Reject(ParseReject::new(413, "request body too large"));
    }
    let mut body = body_prefix;
    if body.len() > content_length {
        // Pipelined extra bytes are not supported: treat as malformed.
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                return ReadOutcome::Reject(ParseReject::new(
                    400,
                    format!(
                        "truncated body: content-length {content_length}, got {}",
                        body.len()
                    ),
                ))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return ReadOutcome::Reject(ParseReject::new(408, "timed out reading body"))
            }
            Err(_) => return ReadOutcome::Disconnected,
        }
    }
    request.body = body;
    ReadOutcome::Request(request)
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// A response ready for serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Extra headers (name, value).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// An error response with a `error: <reason>` text body.
    pub fn error(status: u16, reason: impl AsRef<str>) -> Response {
        Response::text(status, format!("error: {}\n", reason.as_ref()))
    }

    /// Serializes status line + headers + body. `close` controls the
    /// `Connection` header.
    pub fn to_bytes(&self, close: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Default socket read/write timeout for server-side connections.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(5);

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> ReadOutcome {
        let mut cursor = std::io::Cursor::new(bytes.to_vec());
        read_request(&mut cursor)
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let out = parse(
            b"GET /projects/alu/status?target=performance&x=a%20b HTTP/1.1\r\n\
              Host: localhost\r\nAuthorization: Bearer tok\r\n\r\n",
        );
        let ReadOutcome::Request(r) = out else {
            panic!("expected request, got {out:?}");
        };
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/projects/alu/status");
        assert_eq!(r.query_param("target"), Some("performance"));
        assert_eq!(r.query_param("x"), Some("a b"));
        assert_eq!(r.header("authorization"), Some("Bearer tok"));
        assert!(r.keep_alive());
    }

    #[test]
    fn parses_post_with_body() {
        let out = parse(b"POST /p HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello");
        let ReadOutcome::Request(r) = out else {
            panic!("expected request");
        };
        assert_eq!(r.body, b"hello");
        assert!(!r.keep_alive());
    }

    #[test]
    fn rejects_garbage_with_400_family() {
        for (bytes, status) in [
            (&b"NOT A REQUEST\r\n\r\n"[..], 400),
            (b"GET /x HTTP/2.0\r\n\r\n", 505),
            (b"GET relative HTTP/1.1\r\n\r\n", 400),
            (b"G@T /x HTTP/1.1\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 400),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
            (b"GET /x HTTP/1.1\r\nBroken Header\r\n\r\n", 400),
        ] {
            match parse(bytes) {
                ReadOutcome::Reject(r) => assert_eq!(r.status, status, "for {bytes:?}"),
                other => panic!("expected reject for {bytes:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_body_is_413() {
        let head = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        match parse(head.as_bytes()) {
            ReadOutcome::Reject(r) => assert_eq!(r.status, 413),
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn empty_connection_disconnects_silently() {
        assert!(matches!(parse(b""), ReadOutcome::Disconnected));
        assert!(matches!(parse(b"   \r\n"), ReadOutcome::Disconnected));
    }

    #[test]
    fn truncated_head_is_400() {
        match parse(b"GET /x HTTP/1.1\r\nHost: local") {
            ReadOutcome::Reject(r) => assert_eq!(r.status, 400),
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn response_serialization_is_well_formed() {
        let bytes = Response::text(200, "ok\n").to_bytes(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn percent_decoding_tolerates_invalid_escapes() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%2"), "trail%2");
        assert_eq!(percent_decode("plus+plus"), "plus plus");
    }
}
