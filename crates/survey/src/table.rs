use crate::systems::SystemModel;
use crate::Level;

/// Renders Table I: systems as columns, architecture levels as rows,
/// each cell listing the system's object names at that level.
///
/// The layout matches the paper's "SYSTEM REPRESENTATION USING THE
/// FOUR-LEVEL ARCHITECTURE": a header row of system names, then one
/// row group per level with one object per line.
pub fn render_table(systems: &[SystemModel]) -> String {
    const CELL: usize = 24;
    let mut out = String::new();
    out.push_str("TABLE I. SYSTEM REPRESENTATION USING THE FOUR-LEVEL ARCHITECTURE\n\n");
    // Header.
    out.push_str(&format!("{:8}", "Level"));
    for s in systems {
        out.push_str(&format!("{:<CELL$}", s.name()));
    }
    out.push('\n');
    out.push_str(&"-".repeat(8 + CELL * systems.len()));
    out.push('\n');
    for level in Level::ALL {
        let cells: Vec<&[&str]> = systems.iter().map(|s| s.objects_at(level)).collect();
        let height = cells.iter().map(|c| c.len()).max().unwrap_or(0);
        for line in 0..height {
            if line == 0 {
                out.push_str(&format!("{:<8}", level.to_string()));
            } else {
                out.push_str(&" ".repeat(8));
            }
            for cell in &cells {
                let text = cell.get(line).copied().unwrap_or("");
                let mut text = text.to_owned();
                if text.len() > CELL - 1 {
                    text.truncate(CELL - 2);
                    text.push('~');
                }
                out.push_str(&format!("{text:<CELL$}"));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surveyed_systems;

    #[test]
    fn table_has_header_and_levels() {
        let table = render_table(&surveyed_systems());
        assert!(table.starts_with("TABLE I."));
        for level in ["Level 1", "Level 2", "Level 3", "Level 4"] {
            assert!(table.contains(level), "missing {level}");
        }
        for name in [
            "RoadMap Model",
            "ELSIS",
            "Hercules",
            "History Model",
            "Hilda",
            "VOV",
        ] {
            assert!(table.contains(name), "missing {name}");
        }
    }

    #[test]
    fn table_contains_signature_objects() {
        let table = render_table(&surveyed_systems());
        assert!(table.contains("Trace")); // VOV
        assert!(table.contains("Tokens")); // Hilda's Petri net
        assert!(table.contains("Schedule")); // Hercules' addition
    }

    #[test]
    fn long_names_are_truncated_not_overflowing() {
        let table = render_table(&surveyed_systems());
        let widths: Vec<usize> = table.lines().map(|l| l.len()).collect();
        let max = widths.iter().copied().max().unwrap();
        assert!(max <= 8 + 24 * 6);
    }

    #[test]
    fn empty_input_renders_header_only() {
        let table = render_table(&[]);
        assert!(table.contains("TABLE I."));
    }
}
