//! VOV-style trace tracking (Casotto & Sangiovanni-Vincentelli, TCAD
//! 1993).
//!
//! VOV's position — quoted in the paper's §II — is that "a design
//! process cannot be planned a priori and instead must be created as
//! the designers work through the design process". The system therefore
//! records a *trace*: a bipartite graph of tool invocations and the
//! data they read and wrote, built during execution.
//!
//! The trace is excellent at retrospection and invalidation ("this
//! input changed, what must rerun?") and structurally incapable of
//! forecasting (there is nothing to forecast with until the work has
//! happened). [`Trace::can_forecast`] makes that contrast explicit for
//! the comparison benches.

use std::collections::HashMap;

use flowgraph::{Dag, NodeId};

/// A node in the trace: a tool invocation or a datum.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceNode {
    /// One tool invocation, with the time it ran.
    Invocation {
        /// Tool name.
        tool: String,
        /// When it ran (days from project start).
        at: f64,
    },
    /// A design datum, by name.
    Datum(String),
}

impl TraceNode {
    /// The tool or datum name.
    pub fn name(&self) -> &str {
        match self {
            TraceNode::Invocation { tool, .. } => tool,
            TraceNode::Datum(name) => name,
        }
    }
}

/// An execution trace built a posteriori, one invocation at a time.
///
/// # Example
///
/// ```
/// let mut trace = baselines::vov::Trace::new();
/// trace.record(0.5, "editor", &[], &["netlist"]);
/// trace.record(1.5, "simulator", &["netlist", "stimuli"], &["perf"]);
/// // Retrospection works; forecasting does not.
/// assert_eq!(trace.invocations(), 2);
/// assert!(!trace.can_forecast());
/// assert_eq!(trace.must_rerun_after("netlist"), vec!["simulator"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    graph: Dag<TraceNode, ()>,
    data_nodes: HashMap<String, NodeId>,
    invocation_nodes: Vec<NodeId>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one tool invocation at time `at` reading `inputs` and
    /// writing `outputs`. Data nodes are created on first mention;
    /// re-written data gets a fresh node (the trace keeps history, it
    /// never overwrites).
    pub fn record(&mut self, at: f64, tool: &str, inputs: &[&str], outputs: &[&str]) {
        let inv = self.graph.add_node(TraceNode::Invocation {
            tool: tool.to_owned(),
            at,
        });
        self.invocation_nodes.push(inv);
        for &input in inputs {
            let d = self.datum_node(input);
            self.graph
                .add_edge(d, inv, ())
                .expect("inputs precede the invocation, so no cycle");
        }
        for &output in outputs {
            // A fresh node per (re)write keeps the trace acyclic and
            // versioned, exactly like VOV's transactions.
            let d = self.graph.add_node(TraceNode::Datum(output.to_owned()));
            self.data_nodes.insert(output.to_owned(), d);
            self.graph
                .add_edge(inv, d, ())
                .expect("outputs are fresh nodes, so no cycle");
        }
    }

    fn datum_node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.data_nodes.get(name) {
            return id;
        }
        let id = self.graph.add_node(TraceNode::Datum(name.to_owned()));
        self.data_nodes.insert(name.to_owned(), id);
        id
    }

    /// Number of recorded invocations.
    pub fn invocations(&self) -> usize {
        self.invocation_nodes.len()
    }

    /// Whether the trace can answer forward-looking schedule questions.
    /// Always `false`: there is no plan, only history. This is the
    /// structural difference the integrated system's benches quantify.
    pub fn can_forecast(&self) -> bool {
        false
    }

    /// Tools that must rerun if the *latest version* of `datum`
    /// changes: every invocation downstream of it in the trace, in
    /// recorded order.
    pub fn must_rerun_after(&self, datum: &str) -> Vec<&str> {
        let Some(&node) = self.data_nodes.get(datum) else {
            return Vec::new();
        };
        let cone = self.graph.output_cone(&[node]);
        self.invocation_nodes
            .iter()
            .filter(|id| cone.contains(id))
            .map(|&id| self.graph.node_weight(id).expect("trace node").name())
            .collect()
    }

    /// The invocations in dependency order — VOV's re-execution recipe
    /// for reproducing the design.
    pub fn retrace_order(&self) -> Vec<&str> {
        self.graph
            .topological_order()
            .expect("traces are acyclic by construction")
            .into_iter()
            .filter(|id| self.invocation_nodes.contains(id))
            .map(|id| self.graph.node_weight(id).expect("trace node").name())
            .collect()
    }

    /// Tool invocation times, oldest first — the only "schedule" a
    /// trace has is the one that already happened.
    pub fn timeline(&self) -> Vec<(f64, &str)> {
        let mut out: Vec<(f64, &str)> = self
            .invocation_nodes
            .iter()
            .filter_map(|&id| match self.graph.node_weight(id) {
                Some(TraceNode::Invocation { tool, at }) => Some((*at, tool.as_str())),
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit_trace() -> Trace {
        let mut t = Trace::new();
        t.record(0.5, "editor", &[], &["netlist"]);
        t.record(1.5, "simulator", &["netlist", "stimuli"], &["perf"]);
        t
    }

    #[test]
    fn record_builds_bipartite_graph() {
        let t = circuit_trace();
        assert_eq!(t.invocations(), 2);
        assert_eq!(t.timeline(), vec![(0.5, "editor"), (1.5, "simulator")]);
    }

    #[test]
    fn rerun_analysis() {
        let t = circuit_trace();
        assert_eq!(t.must_rerun_after("netlist"), vec!["simulator"]);
        assert_eq!(t.must_rerun_after("stimuli"), vec!["simulator"]);
        assert!(t.must_rerun_after("perf").is_empty());
        assert!(t.must_rerun_after("unknown").is_empty());
    }

    #[test]
    fn rewrites_version_data() {
        let mut t = circuit_trace();
        // Editor reruns, producing a new netlist version; old simulator
        // run is not downstream of the NEW netlist.
        t.record(3.0, "editor", &[], &["netlist"]);
        assert!(t.must_rerun_after("netlist").is_empty());
        assert_eq!(t.invocations(), 3);
    }

    #[test]
    fn retrace_is_dependency_ordered() {
        let t = circuit_trace();
        assert_eq!(t.retrace_order(), vec!["editor", "simulator"]);
    }

    #[test]
    fn no_forecasting() {
        assert!(!circuit_trace().can_forecast());
        assert!(!Trace::new().can_forecast());
    }

    #[test]
    fn node_names() {
        assert_eq!(TraceNode::Datum("x".into()).name(), "x");
        assert_eq!(
            TraceNode::Invocation {
                tool: "t".into(),
                at: 0.0
            }
            .name(),
            "t"
        );
    }
}
