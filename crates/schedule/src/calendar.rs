use std::collections::BTreeSet;
use std::fmt;

/// Day of the week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// All seven weekdays, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Weekday::Monday => "Mon",
            Weekday::Tuesday => "Tue",
            Weekday::Wednesday => "Wed",
            Weekday::Thursday => "Thu",
            Weekday::Friday => "Fri",
            Weekday::Saturday => "Sat",
            Weekday::Sunday => "Sun",
        };
        write!(f, "{s}")
    }
}

/// A civil (proleptic Gregorian) calendar date.
///
/// Backed by a day number so that date arithmetic is integer
/// arithmetic; the civil conversion uses Howard Hinnant's
/// `days_from_civil` algorithm. Valid across the full `i32` year range,
/// far beyond any project plan.
///
/// # Example
///
/// ```
/// use schedule::CalDate;
///
/// let kickoff = CalDate::new(1995, 6, 12); // DAC'95 week
/// assert_eq!(kickoff.succ().day(), 13);
/// assert_eq!(kickoff.to_string(), "1995-06-12");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CalDate {
    /// Days since 1970-01-01 (may be negative).
    epoch_days: i64,
}

impl CalDate {
    /// Creates a date from year/month/day.
    ///
    /// # Panics
    ///
    /// Panics if `month` is not 1–12 or `day` is not valid for the
    /// month (leap years are handled).
    pub fn new(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month must be 1-12, got {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day {day} invalid for {year}-{month:02}"
        );
        CalDate {
            epoch_days: days_from_civil(year, month, day),
        }
    }

    /// Creates a date directly from days since 1970-01-01.
    pub fn from_epoch_days(epoch_days: i64) -> Self {
        CalDate { epoch_days }
    }

    /// Days since 1970-01-01.
    pub fn epoch_days(self) -> i64 {
        self.epoch_days
    }

    /// The year component.
    pub fn year(self) -> i32 {
        civil_from_days(self.epoch_days).0
    }

    /// The month component (1–12).
    pub fn month(self) -> u32 {
        civil_from_days(self.epoch_days).1
    }

    /// The day-of-month component (1–31).
    pub fn day(self) -> u32 {
        civil_from_days(self.epoch_days).2
    }

    /// Day of week (1970-01-01 was a Thursday).
    pub fn weekday(self) -> Weekday {
        // epoch_days 0 => Thursday => index 3 with Monday=0.
        let idx = (self.epoch_days + 3).rem_euclid(7) as usize;
        Weekday::ALL[idx]
    }

    /// The next calendar day.
    pub fn succ(self) -> CalDate {
        CalDate {
            epoch_days: self.epoch_days + 1,
        }
    }

    /// This date plus `days` calendar days (may be negative).
    pub fn plus_days(self, days: i64) -> CalDate {
        CalDate {
            epoch_days: self.epoch_days + days,
        }
    }

    /// Signed number of calendar days from `other` to `self`.
    pub fn days_since(self, other: CalDate) -> i64 {
        self.epoch_days - other.epoch_days
    }
}

impl fmt::Display for CalDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = civil_from_days(self.epoch_days);
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// Hinnant's `days_from_civil`: days since 1970-01-01 for y-m-d.
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Hinnant's `civil_from_days`: y-m-d for days since 1970-01-01.
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(y) => 29,
        2 => 28,
        _ => 0,
    }
}

/// A work calendar: which weekdays are working days, plus holidays.
///
/// Schedules are computed in [`WorkDays`](crate::WorkDays) offsets; the
/// calendar converts an offset from the project start into a civil date
/// (and back) by skipping non-working days.
///
/// # Example
///
/// ```
/// use schedule::{CalDate, Calendar};
///
/// let cal = Calendar::five_day(CalDate::new(1995, 6, 12)); // a Monday
/// // 5 working days after Monday lands on the next Monday.
/// assert_eq!(cal.date_of(5.0), CalDate::new(1995, 6, 19));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Calendar {
    start: CalDate,
    working: [bool; 7],
    holidays: BTreeSet<CalDate>,
}

impl Calendar {
    /// A Monday–Friday work week beginning at `start`.
    ///
    /// If `start` itself is not a working day, day 0 is the first
    /// working day after it.
    pub fn five_day(start: CalDate) -> Self {
        Calendar {
            start,
            working: [true, true, true, true, true, false, false],
            holidays: BTreeSet::new(),
        }
    }

    /// A seven-day calendar (every day works) beginning at `start`.
    pub fn seven_day(start: CalDate) -> Self {
        Calendar {
            start,
            working: [true; 7],
            holidays: BTreeSet::new(),
        }
    }

    /// Marks `date` as a holiday (non-working).
    #[must_use]
    pub fn with_holiday(mut self, date: CalDate) -> Self {
        self.holidays.insert(date);
        self
    }

    /// The project start date.
    pub fn start(&self) -> CalDate {
        self.start
    }

    /// Whether `date` is a working day under this calendar.
    pub fn is_working(&self, date: CalDate) -> bool {
        let idx = Weekday::ALL
            .iter()
            .position(|&w| w == date.weekday())
            .expect("weekday in table");
        self.working[idx] && !self.holidays.contains(&date)
    }

    /// Converts a working-day offset from project start into the civil
    /// date on which that working day falls.
    ///
    /// Fractional offsets round *up* to the day the work completes
    /// within. Offset `0.0` is the first working day on or after the
    /// start date.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is negative or not finite.
    pub fn date_of(&self, offset: f64) -> CalDate {
        assert!(
            offset.is_finite() && offset >= 0.0,
            "offset must be finite and non-negative, got {offset}"
        );
        let mut remaining = offset.ceil() as i64;
        let mut date = self.start;
        // Find day 0: first working day at or after start.
        while !self.is_working(date) {
            date = date.succ();
        }
        while remaining > 0 {
            date = date.succ();
            if self.is_working(date) {
                remaining -= 1;
            }
        }
        date
    }

    /// Counts working days strictly between the project start's day 0
    /// and `date` — the inverse of [`date_of`](Calendar::date_of) for
    /// working days.
    ///
    /// Dates before day 0 report `0.0`.
    pub fn offset_of(&self, date: CalDate) -> f64 {
        let mut day0 = self.start;
        while !self.is_working(day0) {
            day0 = day0.succ();
        }
        if date <= day0 {
            return 0.0;
        }
        let mut count = 0i64;
        let mut d = day0;
        while d < date {
            d = d.succ();
            if self.is_working(d) {
                count += 1;
            }
        }
        count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip_known_dates() {
        for (y, m, d, epoch) in [
            (1970, 1, 1, 0i64),
            (1970, 1, 2, 1),
            (1969, 12, 31, -1),
            (2000, 3, 1, 11017),
            (1995, 6, 12, 9293),
        ] {
            let date = CalDate::new(y, m, d);
            assert_eq!(date.epoch_days(), epoch, "{y}-{m}-{d}");
            assert_eq!((date.year(), date.month(), date.day()), (y, m, d));
        }
    }

    #[test]
    fn roundtrip_sweep() {
        // Every day across several years, including leap boundaries.
        let start = CalDate::new(1992, 1, 1);
        let mut d = start;
        for _ in 0..(366 * 9) {
            let back = CalDate::new(d.year(), d.month(), d.day());
            assert_eq!(back, d);
            d = d.succ();
        }
    }

    #[test]
    fn weekdays_match_history() {
        // 1970-01-01 was a Thursday; DAC'95 opened Monday 1995-06-12.
        assert_eq!(CalDate::new(1970, 1, 1).weekday(), Weekday::Thursday);
        assert_eq!(CalDate::new(1995, 6, 12).weekday(), Weekday::Monday);
        assert_eq!(CalDate::new(2000, 1, 1).weekday(), Weekday::Saturday);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(1996));
        assert!(!is_leap(1995));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn invalid_date_panics() {
        CalDate::new(1995, 2, 29);
    }

    #[test]
    fn display_iso() {
        assert_eq!(CalDate::new(1995, 6, 5).to_string(), "1995-06-05");
    }

    #[test]
    fn five_day_calendar_skips_weekends() {
        let cal = Calendar::five_day(CalDate::new(1995, 6, 12)); // Monday
        assert_eq!(cal.date_of(0.0), CalDate::new(1995, 6, 12));
        assert_eq!(cal.date_of(4.0), CalDate::new(1995, 6, 16)); // Friday
        assert_eq!(cal.date_of(5.0), CalDate::new(1995, 6, 19)); // next Monday
        assert_eq!(cal.date_of(4.5), CalDate::new(1995, 6, 19)); // rounds up
    }

    #[test]
    fn start_on_weekend_rolls_forward() {
        let cal = Calendar::five_day(CalDate::new(1995, 6, 10)); // Saturday
        assert_eq!(cal.date_of(0.0), CalDate::new(1995, 6, 12)); // Monday
    }

    #[test]
    fn holidays_are_skipped() {
        let cal =
            Calendar::five_day(CalDate::new(1995, 6, 12)).with_holiday(CalDate::new(1995, 6, 13));
        assert_eq!(cal.date_of(1.0), CalDate::new(1995, 6, 14));
        assert!(!cal.is_working(CalDate::new(1995, 6, 13)));
    }

    #[test]
    fn seven_day_calendar_is_dense() {
        let cal = Calendar::seven_day(CalDate::new(1995, 6, 12));
        assert_eq!(cal.date_of(6.0), CalDate::new(1995, 6, 18)); // Sunday
    }

    #[test]
    fn offset_of_inverts_date_of() {
        let cal = Calendar::five_day(CalDate::new(1995, 6, 12));
        for offset in [0.0, 1.0, 4.0, 5.0, 9.0, 23.0] {
            let date = cal.date_of(offset);
            assert_eq!(cal.offset_of(date), offset, "offset {offset}");
        }
    }

    #[test]
    fn offset_before_start_is_zero() {
        let cal = Calendar::five_day(CalDate::new(1995, 6, 12));
        assert_eq!(cal.offset_of(CalDate::new(1995, 6, 1)), 0.0);
    }

    #[test]
    fn plus_days_and_days_since() {
        let a = CalDate::new(1995, 6, 12);
        assert_eq!(a.plus_days(30), CalDate::new(1995, 7, 12));
        assert_eq!(a.plus_days(30).days_since(a), 30);
        assert_eq!(a.plus_days(-12), CalDate::new(1995, 5, 31));
    }
}
