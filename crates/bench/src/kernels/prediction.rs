//! B7 — prediction accuracy: history-based estimators vs designer
//! intuition on synthetic duration histories (flat-noisy and trending).
//!
//! Expected shape: once a few observations exist, every history-based
//! estimator beats a 2x-off intuition guess; the trend estimator wins
//! on growing activities, smoothing estimators win on noisy-flat ones.

use harness::bench::{black_box, Record};
use predict::{evaluate, Ewma, Intuition, LastValue, LinearTrend, MeanOfAll, Predictor};
use simtools::workload::duration_history;

fn estimators() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(Intuition::new(10.0)), // designer guess, 2x off base 5
        Box::new(LastValue),
        Box::new(MeanOfAll),
        Box::new(Ewma::new(0.3)),
        Box::new(LinearTrend),
    ]
}

/// Runs the kernel; `quick` selects the smoke-test plan and sizes.
pub fn run(quick: bool) -> Vec<Record> {
    let flat = duration_history(5.0, 0.0, 0.25, 60, 17);
    let trending = duration_history(5.0, 0.04, 0.10, 60, 23);

    // One-shot accuracy table (captured by EXPERIMENTS.md); skipped in
    // quick mode to keep the smoke test's output terse.
    if !quick {
        for (name, history) in [("flat-noisy", &flat), ("trending", &trending)] {
            println!("\nprediction accuracy on {name} history:");
            for est in estimators() {
                if let Some(report) = evaluate(est.as_ref(), history, 3) {
                    println!("  {report}");
                }
            }
        }
    }

    let mut suite = super::suite("prediction", quick);
    suite.bench("predict_rolling_eval_60pts", Some(60), || {
        for est in estimators() {
            let _ = evaluate(est.as_ref(), black_box(&flat), 3);
        }
    });
    suite.into_records()
}
