//! B2 — schedule planning throughput: the simulated-execution
//! traversal (schedule-instance creation + CPM + levelling) vs flow
//! size.
//!
//! Expected shape: planning cost grows roughly linearly with the task
//! tree; planning a 100-activity flow stays well under a second, so
//! "the schedule plan can be updated at any time" is practical.

use harness::bench::Record;

use crate::pipeline_manager;

/// Runs the kernel; `quick` selects the smoke-test plan and sizes.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("planning", quick);
    let sizes: &[usize] = if quick { &[10, 50] } else { &[10, 50, 100] };
    for &stages in sizes {
        suite.bench_with_setup(
            &format!("plan_pipeline/{stages}"),
            Some(stages as u64),
            || pipeline_manager(stages, 4, 1),
            |mut h| h.plan(&format!("d{stages}")).expect("plannable"),
        );
    }
    suite.into_records()
}
