use crate::Predictor;

/// Predicts whatever the designer guessed — the baseline the paper's
/// integrated history beats. Always predicts, regardless of history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Intuition {
    guess: f64,
}

impl Intuition {
    /// Creates an intuition "estimator" with a fixed guess.
    ///
    /// # Panics
    ///
    /// Panics if `guess` is not finite or is negative.
    pub fn new(guess: f64) -> Self {
        assert!(
            guess.is_finite() && guess >= 0.0,
            "guess must be a duration"
        );
        Intuition { guess }
    }
}

impl Predictor for Intuition {
    fn name(&self) -> &str {
        "intuition"
    }

    fn predict(&self, _history: &[f64]) -> Option<f64> {
        Some(self.guess)
    }
}

/// Predicts the most recent measured duration — the paper's example
/// query, "the duration of an activity the last time it was performed".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LastValue;

impl Predictor for LastValue {
    fn name(&self) -> &str {
        "last-value"
    }

    fn predict(&self, history: &[f64]) -> Option<f64> {
        history.last().copied()
    }
}

/// Predicts the mean of the entire history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeanOfAll;

impl Predictor for MeanOfAll {
    fn name(&self) -> &str {
        "mean"
    }

    fn predict(&self, history: &[f64]) -> Option<f64> {
        if history.is_empty() {
            None
        } else {
            Some(history.iter().sum::<f64>() / history.len() as f64)
        }
    }
}

/// Predicts the mean of the last `window` observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovingAverage {
    window: usize,
}

impl MovingAverage {
    /// Creates a moving average over `window` observations.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MovingAverage { window }
    }
}

impl Predictor for MovingAverage {
    fn name(&self) -> &str {
        "moving-average"
    }

    fn predict(&self, history: &[f64]) -> Option<f64> {
        if history.is_empty() {
            return None;
        }
        let tail = &history[history.len().saturating_sub(self.window)..];
        Some(tail.iter().sum::<f64>() / tail.len() as f64)
    }
}

/// Exponentially weighted moving average with smoothing factor `alpha`
/// (1.0 = last value, → 0.0 = long memory).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
}

impl Ewma {
    /// Creates an EWMA estimator.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha }
    }
}

impl Predictor for Ewma {
    fn name(&self) -> &str {
        "ewma"
    }

    fn predict(&self, history: &[f64]) -> Option<f64> {
        let (&first, rest) = history.split_first()?;
        let mut level = first;
        for &x in rest {
            level = self.alpha * x + (1.0 - self.alpha) * level;
        }
        Some(level)
    }
}

/// Ordinary-least-squares trend over observation index, extrapolated
/// one step ahead; clamped non-negative. Needs at least two points.
///
/// Catches the systematic growth real activities show as a design
/// grows (later simulations take longer because the netlist grew).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinearTrend;

impl Predictor for LinearTrend {
    fn name(&self) -> &str {
        "linear-trend"
    }

    fn predict(&self, history: &[f64]) -> Option<f64> {
        let n = history.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mean_x = (nf - 1.0) / 2.0;
        let mean_y = history.iter().sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (i, &y) in history.iter().enumerate() {
            let dx = i as f64 - mean_x;
            sxx += dx * dx;
            sxy += dx * (y - mean_y);
        }
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let intercept = mean_y - slope * mean_x;
        Some((intercept + slope * nf).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HISTORY: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];

    #[test]
    fn intuition_ignores_history() {
        let p = Intuition::new(7.5);
        assert_eq!(p.predict(&[]), Some(7.5));
        assert_eq!(p.predict(&HISTORY), Some(7.5));
        assert_eq!(p.name(), "intuition");
    }

    #[test]
    #[should_panic(expected = "must be a duration")]
    fn intuition_rejects_nan() {
        Intuition::new(f64::NAN);
    }

    #[test]
    fn last_value() {
        assert_eq!(LastValue.predict(&HISTORY), Some(5.0));
        assert_eq!(LastValue.predict(&[]), None);
    }

    #[test]
    fn mean_of_all() {
        assert_eq!(MeanOfAll.predict(&HISTORY), Some(3.0));
        assert_eq!(MeanOfAll.predict(&[]), None);
    }

    #[test]
    fn moving_average_window() {
        assert_eq!(MovingAverage::new(2).predict(&HISTORY), Some(4.5));
        // Window longer than history uses all of it.
        assert_eq!(MovingAverage::new(10).predict(&HISTORY), Some(3.0));
        assert_eq!(MovingAverage::new(3).predict(&[]), None);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn moving_average_zero_window() {
        MovingAverage::new(0);
    }

    #[test]
    fn ewma_limits() {
        // alpha = 1: last value.
        assert_eq!(Ewma::new(1.0).predict(&HISTORY), Some(5.0));
        // small alpha: close to the first value for short histories.
        let low = Ewma::new(0.01).predict(&HISTORY).unwrap();
        assert!(low < 1.5);
        assert_eq!(Ewma::new(0.5).predict(&[]), None);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn linear_trend_extrapolates() {
        // Perfect line 1..5 → next is 6.
        let p = LinearTrend.predict(&HISTORY).unwrap();
        assert!((p - 6.0).abs() < 1e-9);
        assert_eq!(LinearTrend.predict(&[3.0]), None);
    }

    #[test]
    fn linear_trend_flat_history() {
        let p = LinearTrend.predict(&[2.0, 2.0, 2.0]).unwrap();
        assert!((p - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_trend_clamps_negative() {
        // Steeply decreasing: raw extrapolation would go negative.
        let p = LinearTrend.predict(&[5.0, 3.0, 1.0]).unwrap();
        assert!(p >= 0.0);
    }
}
