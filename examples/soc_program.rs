//! A 31-activity system-on-chip program run by an eight-person team:
//! the scale where the paper's integration argument bites. Shows
//! block-level rollup (§V future work), mid-project forecasting,
//! Monte Carlo risk on the proposed plan, and the SPI trajectory.
//!
//! Run with `cargo run --example soc_program`.

use hercules::{Decomposition, Hercules};
use schedule::gantt::GanttOptions;
use schedule::montecarlo::simulate;
use schedule::pert::ThreePoint;
use schedule::ScheduleNetwork;
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut h = Hercules::new(
        examples::soc_program(),
        ToolLibrary::standard(),
        Team::of_size(8),
        2026,
    );
    let plan = h.plan("signoff_report")?;
    println!(
        "planned {} activities; proposed tapeout day {}",
        plan.len(),
        plan.project_finish()
    );

    // --- Monte Carlo risk on the proposal ----------------------------
    let mut net = ScheduleNetwork::new();
    let tree = h.extract_task_tree("signoff_report")?;
    let mut ids = Vec::new();
    for pa in plan.activities() {
        ids.push((
            pa.activity.clone(),
            net.add_activity(pa.activity.clone(), pa.duration)?,
        ));
    }
    for (activity, id) in &ids {
        for consumer in tree.consumers_of_output(activity) {
            let cid = ids.iter().find(|(a, _)| a == consumer).expect("planned").1;
            net.add_precedence(*id, cid)?;
        }
    }
    let estimates: Vec<_> = ids
        .iter()
        .map(|(a, id)| {
            let d = plan.activity(a).expect("planned").duration.days();
            (*id, ThreePoint::new(0.6 * d, d, 2.0 * d).expect("ordered"))
        })
        .collect();
    let risk = simulate(&net, &estimates, 5000, 3)?;
    println!(
        "risk: P50 day {:.0}, P80 day {:.0}, P95 day {:.0}",
        risk.quantile(0.5).days(),
        risk.quantile(0.8).days(),
        risk.quantile(0.95).days()
    );

    // --- Execute the block work, forecast, then finish ----------------
    h.execute("integ_rtl")?; // all block RTL + integration
    let forecast = h.forecast("signoff_report")?;
    println!(
        "\nmid-project (day {}): {} done, {} open; forecast tapeout day {} via {:?}",
        forecast.as_of, forecast.complete, forecast.open, forecast.finish, forecast.critical
    );
    h.execute("signoff_report")?;
    println!("actual tapeout: day {}", h.clock());

    // --- Block-level rollup (the project manager's view) --------------
    let decomposition = Decomposition::new()
        .block("arch", ["ArchSpec"])
        .block("cpu", ["Rtl_cpu", "Verify_cpu", "Synth_cpu"])
        .block("dsp", ["Rtl_dsp", "Verify_dsp", "Synth_dsp"])
        .block("mem", ["Rtl_mem", "Verify_mem", "Synth_mem"])
        .block("io", ["Rtl_io", "Verify_io", "Synth_io"])
        .block("integration", ["Integrate", "VerifySoc", "SynthSoc"])
        .block(
            "physical",
            [
                "FloorplanSoc",
                "PlaceSoc",
                "RouteSoc",
                "WriteGds",
                "SignoffSoc",
            ],
        );
    println!("\nblock rollup:");
    for block in h.rollup(&decomposition)? {
        println!(
            "  {:<12} {}/{} done{}",
            block.block,
            block.complete,
            block.activities.len(),
            block
                .slip()
                .map(|s| format!(", slip {s:+.1}d"))
                .unwrap_or_default()
        );
    }
    print!(
        "\n{}",
        h.block_gantt(
            &decomposition,
            &GanttOptions {
                ascii: true,
                width: 64,
                label_width: 12,
                ..GanttOptions::default()
            }
        )?
    );

    // --- SPI trajectory ------------------------------------------------
    println!("\nSPI over the project:");
    for (t, v) in h.status().variance_series(6) {
        println!(
            "  day {:>7} SPI {:.2}  (PV {:.0}d, EV {:.0}d)",
            t.to_string(),
            v.spi,
            v.planned_value,
            v.earned_value
        );
    }
    Ok(())
}
