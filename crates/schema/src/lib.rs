//! Level 1 of the four-level flow-management architecture: the *task
//! schema*.
//!
//! A task schema "describes the entities (tool and data classes) and the
//! relationships between entities that are needed to model all tasks in
//! a design process" (Johnson & Brockman, DAC 1995, §IV-A). Formally it
//! is a set of *construction rules*
//!
//! ```text
//! d_i = f(d_1, d_2, ..., d_n)
//! ```
//!
//! stating that an instance of data class `d_i` is created by applying
//! tool `f` to instances of data classes `d_1..d_n`. The paper's running
//! example (Fig. 4) is the circuit-design schema:
//!
//! ```text
//! activity Create:   netlist     = netlist_editor();
//! activity Simulate: performance = simulator(netlist, stimuli);
//! ```
//!
//! This crate provides the object model ([`TaskSchema`],
//! [`EntityClass`], [`ConstructionRule`]), a small text DSL with a
//! hand-written lexer/parser ([`parse_schema`]), validation, and the
//! projection of a schema onto the [`flowgraph::Dag`] substrate
//! ([`SchemaGraph`]) that Level-2 flow models are instantiated from.
//!
//! # Example
//!
//! ```
//! use schema::parse_schema;
//!
//! # fn main() -> Result<(), schema::SchemaError> {
//! let schema = parse_schema(
//!     "data netlist; data stimuli; data performance;
//!      tool netlist_editor; tool simulator;
//!      activity Create:   netlist = netlist_editor();
//!      activity Simulate: performance = simulator(netlist, stimuli);",
//! )?;
//! assert_eq!(schema.rules().len(), 2);
//! assert_eq!(schema.rule("Simulate").unwrap().inputs().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod model;
mod parse;

pub mod examples;

pub use error::{ParseErrorKind, SchemaError};
pub use graph::{SchemaGraph, SchemaNode};
pub use model::{ConstructionRule, EntityClass, EntityKind, TaskSchema, TaskSchemaBuilder};
pub use parse::parse_schema;
