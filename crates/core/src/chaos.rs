//! Seeded chaos scenarios: random flows driven through random fault
//! plans, with crash injection in the metadata journal — the
//! executable argument that the failure-semantics layer is sound.
//!
//! A [`ChaosScenario`] is a pure function of its seed: it derives a
//! schema, team size, project seed, fault plan, and crash point from
//! one `u64`, runs the full plan → execute → recover cycle, and
//! returns a [`ChaosReport`] listing every violated property. The same
//! scenarios back three consumers:
//!
//! * the chaos property suite (`tests/chaos_properties.rs`),
//! * the `chaos` stage of `scripts/ci.sh` (fixed seed set), and
//! * `herc chaos --seed N` for interactive replay of a failure.
//!
//! Properties checked per scenario:
//!
//! 1. the session never panics and never aborts on injected tool
//!    faults (only a metadata crash injection may abort, by design);
//! 2. [`metadata::MetadataDb::check_invariants`] holds on the live
//!    database after execution;
//! 3. replaying the write-ahead journal reproduces the live database
//!    byte-for-byte ([`metadata::MetadataDb::recover`]);
//! 4. a blocked activity is never linked complete, and (when plans
//!    exist) the open scope was replanned around it;
//! 5. after an injected crash in a follow-up session, recovery yields
//!    a database that passes invariants and in which every previously
//!    completed activity retains its actual dates.
//!
//! # Example
//!
//! ```
//! use hercules::chaos::ChaosScenario;
//!
//! let report = ChaosScenario::from_seed(7).run();
//! assert!(report.is_clean(), "{report}");
//! ```

use std::fmt;

use metadata::{MetadataDb, MetadataError};
use schema::{examples, TaskSchema};
use simtools::rng::{mix, SplitMix64};
use simtools::workload::Team;
use simtools::{FaultPlan, ToolLibrary};

use crate::error::HerculesError;
use crate::manager::Hercules;
use crate::policy::ExecutionPolicy;

/// One deterministic chaos scenario, fully derived from a seed.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    seed: u64,
    schema: TaskSchema,
    target: String,
    team_size: usize,
    project_seed: u64,
    fault_seed: u64,
    crash_after: u32,
    policy: ExecutionPolicy,
}

impl ChaosScenario {
    /// Derives a scenario from `seed`: schema shape, team size, tool
    /// seed, fault plan seed, and the crash point for the follow-up
    /// session are all pure functions of it.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(mix(&[seed, 0xC4A0_5CEA]));
        let (schema, target) = match rng.next_below(4) {
            0 => (examples::circuit_design(), "performance".to_owned()),
            1 => (examples::asic_flow(), "signoff_report".to_owned()),
            2 => {
                let stages = 3 + rng.next_below(5) as usize;
                (examples::pipeline(stages), format!("d{stages}"))
            }
            _ => {
                let layers = 2 + rng.next_below(2) as usize;
                let width = 2 + rng.next_below(2) as usize;
                (examples::layered(layers, width, 2), "merged".to_owned())
            }
        };
        let team_size = 1 + rng.next_below(3) as usize;
        let project_seed = rng.next_u64();
        let fault_seed = rng.next_u64();
        let crash_after = rng.next_below(32) as u32;
        // Drawn last so older scenario derivations (schema, team,
        // seeds, crash point) are unchanged for every existing seed.
        let policy =
            ExecutionPolicy::ALL[rng.next_below(ExecutionPolicy::ALL.len() as u64) as usize];
        ChaosScenario {
            seed,
            schema,
            target,
            team_size,
            project_seed,
            fault_seed,
            crash_after,
            policy,
        }
    }

    /// Overrides the drawn scheduling policy — `herc chaos --policy`
    /// and the per-policy CI legs pin every scenario to one policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The scenario's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scenario's execution target.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// The scenario's task schema (for harnesses that rebuild the
    /// session elsewhere, e.g. behind the workspace server).
    pub fn schema(&self) -> &TaskSchema {
        &self.schema
    }

    /// The scenario's team size.
    pub fn team_size(&self) -> usize {
        self.team_size
    }

    /// The seed for the project's tool simulation.
    pub fn project_seed(&self) -> u64 {
        self.project_seed
    }

    /// The seed for the scenario's fault plan.
    pub fn fault_seed(&self) -> u64 {
        self.fault_seed
    }

    /// The scheduling policy the scenario executes under.
    pub fn policy(&self) -> ExecutionPolicy {
        self.policy
    }

    /// Runs the scenario and collects property violations.
    pub fn run(&self) -> ChaosReport {
        let mut report = ChaosReport {
            seed: self.seed,
            schema: self.schema.name().to_owned(),
            target: self.target.clone(),
            policy: self.policy.name().to_owned(),
            executed: 0,
            blocked: 0,
            skipped: 0,
            crash_fired: false,
            violations: Vec::new(),
        };
        let mut h = Hercules::new(
            self.schema.clone(),
            ToolLibrary::standard(),
            Team::of_size(self.team_size),
            self.project_seed,
        );
        h.set_execution_policy(self.policy);
        h.enable_journal();
        if let Err(e) = h.plan(&self.target) {
            report.violations.push(format!("plan failed: {e}"));
            return report;
        }
        // A quarter of tools persistently broken: scenarios use only a
        // handful of tools each, so the paper-default 5% rate would
        // leave the blocked/degraded path mostly unexercised.
        h.set_fault_plan(FaultPlan::seeded(self.fault_seed).with_persistent_rate(0.25));

        // Property 1: injected tool faults never abort the session.
        let exec = match h.execute(&self.target) {
            Ok(r) => r,
            Err(e) => {
                report
                    .violations
                    .push(format!("execute aborted on injected faults: {e}"));
                return report;
            }
        };
        report.executed = exec.activities().len();
        report.blocked = exec.blocked().len();
        report.skipped = exec.skipped().len();

        // Property 4: blocked semantics.
        for b in exec.blocked() {
            if !h.is_blocked(&b.activity) {
                report.violations.push(format!(
                    "{} blocked in report but not in manager",
                    b.activity
                ));
            }
            if h.db()
                .current_plan(&b.activity)
                .is_some_and(|p| p.is_complete())
            {
                report
                    .violations
                    .push(format!("blocked {} is linked complete", b.activity));
            }
            if !exec.replanned().iter().any(|(n, _)| n == &b.activity) {
                report.violations.push(format!(
                    "blocked {} missing from the degraded replan",
                    b.activity
                ));
            }
        }

        // Property 2: live database invariants.
        if let Err(violations) = h.db().check_invariants() {
            for v in violations {
                report.violations.push(format!("live invariant: {v}"));
            }
        }

        // Property 3: journal replay reproduces the live database.
        let Some(journal) = h.db().journal() else {
            report.violations.push("journal disappeared".to_owned());
            return report;
        };
        match MetadataDb::recover(journal) {
            Ok(replayed) => {
                if replayed.dump() != h.db().dump() {
                    report
                        .violations
                        .push("journal replay diverges from live database".to_owned());
                }
            }
            Err(e) => report
                .violations
                .push(format!("journal replay failed: {e}")),
        }

        // Property 5: crash-consistency of a follow-up session. The
        // operator repairs the tools, arms a crash, and pushes on; the
        // crash may fire mid-plan or mid-execute (or not at all, for
        // large crash points).
        let completed: Vec<String> = h
            .db()
            .completed_activities()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut h2 = h.clone();
        h2.set_fault_plan(FaultPlan::none());
        h2.clear_blocked();
        h2.inject_db_crash_after(self.crash_after);
        let followup: Result<(), HerculesError> = (|| {
            h2.replan(&self.target)?;
            h2.execute(&self.target)?;
            Ok(())
        })();
        report.crash_fired = h2.db().has_crashed();
        if let Err(e) = followup {
            let injected = matches!(e, HerculesError::Metadata(MetadataError::InjectedCrash));
            if !injected {
                report
                    .violations
                    .push(format!("follow-up session failed without a crash: {e}"));
            }
        }
        let Some(journal2) = h2.db().journal() else {
            report
                .violations
                .push("follow-up journal disappeared".to_owned());
            return report;
        };
        match MetadataDb::recover(journal2) {
            Ok(recovered) => {
                if let Err(violations) = recovered.check_invariants() {
                    for v in violations {
                        report.violations.push(format!("recovered invariant: {v}"));
                    }
                }
                for activity in &completed {
                    if recovered.actual_finish(activity) != h.db().actual_finish(activity) {
                        report.violations.push(format!(
                            "completed {activity} lost its actual finish across crash recovery"
                        ));
                    }
                    if !recovered
                        .current_plan(activity)
                        .is_some_and(|p| p.is_complete())
                    {
                        report.violations.push(format!(
                            "completed {activity} lost its completion link across crash recovery"
                        ));
                    }
                }
            }
            Err(e) => report
                .violations
                .push(format!("crash recovery failed: {e}")),
        }
        report
    }
}

/// The outcome of one chaos scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// The scenario seed (replay with `herc chaos --seed N`).
    pub seed: u64,
    /// The derived schema's name.
    pub schema: String,
    /// The derived execution target.
    pub target: String,
    /// The scheduling policy the scenario dispatched under.
    pub policy: String,
    /// Activities that executed to convergence.
    pub executed: usize,
    /// Activities blocked by the retry policy.
    pub blocked: usize,
    /// Activities skipped for missing inputs.
    pub skipped: usize,
    /// Whether the armed crash fired during the follow-up session.
    pub crash_fired: bool,
    /// Every property violation observed (empty = the scenario holds).
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Whether the scenario upheld every property.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chaos seed {:>4}  {:<10} -> {:<16} {:<9} exec {:>2}  blocked {}  skipped {}  crash {}  {}",
            self.seed,
            self.schema,
            self.target,
            self.policy,
            self.executed,
            self.blocked,
            self.skipped,
            if self.crash_fired { "yes" } else { "no " },
            if self.is_clean() { "ok" } else { "FAIL" },
        )?;
        for v in &self.violations {
            write!(f, "\n  violation: {v}")?;
        }
        Ok(())
    }
}

/// Runs `count` scenarios seeded `base_seed..base_seed + count`.
pub fn run_suite(base_seed: u64, count: u64) -> Vec<ChaosReport> {
    (base_seed..base_seed + count)
        .map(|s| ChaosScenario::from_seed(s).run())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        let a = ChaosScenario::from_seed(3).run();
        let b = ChaosScenario::from_seed(3).run();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_vary_shape() {
        let shapes: std::collections::BTreeSet<String> = (0..12)
            .map(|s| ChaosScenario::from_seed(s).target().to_owned())
            .collect();
        assert!(shapes.len() > 1, "all scenarios identical: {shapes:?}");
    }

    #[test]
    fn seeds_vary_policy_and_override_pins_it() {
        let policies: std::collections::BTreeSet<&str> = (0..16)
            .map(|s| ChaosScenario::from_seed(s).policy().name())
            .collect();
        assert!(policies.len() > 1, "all scenarios drew {policies:?}");
        let pinned = ChaosScenario::from_seed(3).with_policy(ExecutionPolicy::Heft);
        assert_eq!(pinned.policy(), ExecutionPolicy::Heft);
        assert!(pinned.run().is_clean());
    }

    #[test]
    fn small_fixed_set_is_clean() {
        for report in run_suite(0, 8) {
            assert!(report.is_clean(), "{report}");
        }
    }

    #[test]
    fn some_scenario_injects_faults() {
        let reports = run_suite(0, 16);
        assert!(
            reports.iter().any(|r| r.blocked > 0 || r.skipped > 0),
            "no scenario ever degraded — fault rates too low to test anything"
        );
        assert!(
            reports.iter().any(|r| r.crash_fired),
            "no scenario ever fired its crash point"
        );
    }
}
