//! A multi-tenant network front end for the workspace kernel.
//!
//! The paper's flow manager is inherently multi-user: designers query
//! status and trigger replans against a shared schedule database. This
//! crate puts a dependency-free HTTP/1.1 server in front of
//! [`hercules::Workspace`] — blocking `std::net` sockets, a fixed
//! worker-thread pool, hand-rolled parsing with hard limits — keeping
//! the repository's offline discipline while making the "many
//! concurrent users" axis measurable (bench kernel B13 `serve_load`).
//!
//! Layering:
//!
//! * [`http`] — wire parsing/serialization, total over arbitrary
//!   bytes (the fuzz target);
//! * [`auth`] — `tenant:token` bearer auth + per-tenant in-flight
//!   caps;
//! * [`batch`] — per-project replan coalescing (N concurrent replan
//!   requests → few kernel passes, wave semantics);
//! * [`api`] — routing and the *pure* render functions the
//!   differential suite pins against direct kernel calls;
//! * [`server`] — accept loop, bounded queue (429 on overflow),
//!   worker pool;
//! * [`client`] — a minimal blocking client for tests, benches, and
//!   `herc serve --oneshot`;
//! * [`access_log`] — structured JSONL per-request log
//!   (`--access-log`), one line per request with the trace id.
//!
//! Every request is stamped with a trace id (accepted from, or echoed
//! into, the `x-herc-trace` header) that correlates the access log,
//! 5xx error bodies, and the always-on flight recorder
//! (`GET /debug/flight?trace=<id>`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use hercules::Workspace;
//! use serve::{Client, Server, ServerConfig};
//!
//! let ws = Arc::new(Workspace::in_memory());
//! let server = Server::start(ws, ServerConfig::default()).unwrap();
//! let client = Client::new(server.addr());
//! let resp = client.get("/healthz").unwrap();
//! assert_eq!(resp.status, 200);
//! server.shutdown();
//! ```

pub mod access_log;
pub mod api;
pub mod auth;
pub mod batch;
pub mod client;
pub mod http;
pub mod server;

pub use access_log::{AccessEntry, AccessLog};
pub use api::{plan_body, replan_body, run_body, status_body, Api, ApiConfig};
pub use auth::{Admission, AdmissionGuard, AuthError, TokenRegistry};
pub use batch::{Coalescer, Role};
pub use client::{Client, HttpResponse};
pub use http::{Request, Response};
pub use server::{Server, ServerConfig};
