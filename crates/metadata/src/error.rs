use std::error::Error;
use std::fmt;

use crate::ids::{EntityInstanceId, RunId, ScheduleInstanceId};

/// Errors produced by metadata-database operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MetadataError {
    /// The named activity has no schedule container (not in the schema
    /// this database was initialised from).
    UnknownActivity(String),
    /// The named entity class has no container.
    UnknownClass(String),
    /// An id did not refer to an object of this database.
    UnknownId(String),
    /// `finish_run` was called with an output class that the run's
    /// activity does not produce.
    WrongOutputClass {
        /// The run being finished.
        run: RunId,
        /// The activity's declared output class.
        expected: String,
        /// The class actually supplied.
        found: String,
    },
    /// The run was already finished.
    RunAlreadyFinished(RunId),
    /// A completion link's endpoints disagree: the entity instance was
    /// not produced by the schedule instance's activity.
    MismatchedLink {
        /// The schedule instance being linked.
        schedule: ScheduleInstanceId,
        /// The entity instance offered as the final result.
        entity: EntityInstanceId,
    },
    /// The schedule instance is already linked to a final result.
    AlreadyLinked(ScheduleInstanceId),
    /// A run finished before it started, or another impossible
    /// timestamp ordering.
    InvalidTimestamps {
        /// Start offset in days.
        started: f64,
        /// Finish offset in days.
        finished: f64,
    },
    /// A handle minted under an older store generation was used after a
    /// compaction bumped the database's generation. The slot space is
    /// renumbered by compaction, so resolving the stale handle could
    /// silently alias a different object — the database rejects it
    /// instead. Re-query through the store to obtain fresh handles.
    StaleHandle(String),
    /// A simulated crash point fired between a journal append and its
    /// apply ([`MetadataDb::inject_crash_after`](crate::MetadataDb::inject_crash_after)),
    /// or an operation was attempted on a database that already
    /// crashed. Recover with
    /// [`MetadataDb::recover`](crate::MetadataDb::recover).
    InjectedCrash,
    /// The store behind this database lost durability (a tail append
    /// failed — disk full, I/O error) and is **wedged**: it refuses
    /// every further fallible mutation rather than acknowledge writes
    /// it cannot persist. Reads remain served; reopen the store to
    /// resume from the last durable prefix.
    StorageFailed(String),
}

impl fmt::Display for MetadataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetadataError::UnknownActivity(name) => {
                write!(f, "no schedule container for activity {name:?}")
            }
            MetadataError::UnknownClass(name) => {
                write!(f, "no entity container for class {name:?}")
            }
            MetadataError::UnknownId(id) => write!(f, "unknown id {id}"),
            MetadataError::WrongOutputClass {
                run,
                expected,
                found,
            } => write!(f, "{run} must produce {expected:?} but was given {found:?}"),
            MetadataError::RunAlreadyFinished(run) => {
                write!(f, "{run} was already finished")
            }
            MetadataError::MismatchedLink { schedule, entity } => write!(
                f,
                "cannot link {schedule} to {entity}: the instance was not produced by that activity"
            ),
            MetadataError::AlreadyLinked(schedule) => {
                write!(f, "{schedule} is already linked to a final result")
            }
            MetadataError::InvalidTimestamps { started, finished } => {
                write!(f, "finish time {finished} precedes start time {started}")
            }
            MetadataError::StaleHandle(id) => {
                write!(
                    f,
                    "stale handle {id}: minted before the last compaction; re-query for a fresh id"
                )
            }
            MetadataError::InjectedCrash => {
                write!(
                    f,
                    "injected crash: the process died between journal append and apply"
                )
            }
            MetadataError::StorageFailed(detail) => {
                write!(
                    f,
                    "storage failed, store is wedged (reopen to resume): {detail}"
                )
            }
        }
    }
}

impl Error for MetadataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = MetadataError::WrongOutputClass {
            run: RunId::new(2, 0),
            expected: "netlist".into(),
            found: "layout".into(),
        };
        let s = e.to_string();
        assert!(s.contains("run2") && s.contains("netlist") && s.contains("layout"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetadataError>();
    }
}
