//! B8 — Gantt rendering cost vs project size.
//!
//! Expected shape: linear in rows; even hundred-activity charts render
//! in microseconds, keeping the status view interactive.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schedule::gantt::{render, GanttOptions, GanttRow};
use schedule::WorkDays;

fn rows(n: usize) -> Vec<GanttRow> {
    (0..n)
        .map(|i| {
            let start = WorkDays::new(i as f64 * 0.7);
            let finish = WorkDays::new(i as f64 * 0.7 + 2.0);
            let mut row = GanttRow::planned(format!("activity{i}"), start, finish);
            if i % 2 == 0 {
                row = row.with_actual(start, finish + WorkDays::new(0.5), true);
            }
            row
        })
        .collect()
}

fn bench_gantt(c: &mut Criterion) {
    let mut group = c.benchmark_group("gantt_render");
    for &n in &[10usize, 100, 500] {
        let rows = rows(n);
        group.throughput(criterion::Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rows, |b, rows| {
            b.iter(|| render(rows, &GanttOptions::default()))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_gantt
}
criterion_main!(benches);
