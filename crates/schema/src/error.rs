use std::error::Error;
use std::fmt;

/// What went wrong while lexing or parsing schema source text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// A character that cannot start any token.
    UnexpectedChar(char),
    /// A token other than the expected one was found.
    Expected {
        /// Human description of what the parser wanted.
        wanted: &'static str,
        /// The token actually found.
        found: String,
    },
    /// The source ended in the middle of a declaration.
    UnexpectedEof,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::Expected { wanted, found } => {
                write!(f, "expected {wanted}, found {found:?}")
            }
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
        }
    }
}

/// Errors produced while parsing or validating a task schema.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchemaError {
    /// Syntax error at `line`:`column` (both 1-based).
    Parse {
        /// 1-based source line.
        line: usize,
        /// 1-based source column.
        column: usize,
        /// Classification of the failure.
        kind: ParseErrorKind,
    },
    /// Two entity classes share a name.
    DuplicateClass(String),
    /// Two activities share a name.
    DuplicateActivity(String),
    /// Two rules produce the same data class — outputs must be unique so
    /// that every datum has one producing activity.
    DuplicateProducer {
        /// The doubly-produced data class.
        class: String,
        /// The second activity claiming it.
        activity: String,
    },
    /// A rule references a class that was never declared.
    UnknownClass {
        /// The undeclared class name.
        class: String,
        /// The rule that referenced it.
        activity: String,
    },
    /// A rule uses a class with the wrong kind (tool where data is
    /// needed or vice versa).
    WrongKind {
        /// The offending class.
        class: String,
        /// The rule that misused it.
        activity: String,
        /// What the position required, e.g. `"data"`.
        expected: &'static str,
    },
    /// The same input appears twice in one rule.
    DuplicateInput {
        /// The repeated input class.
        class: String,
        /// The rule containing the repetition.
        activity: String,
    },
    /// A rule consumes the data class it produces.
    SelfDependency {
        /// The rule whose output is also an input.
        activity: String,
    },
    /// The rules form a dependency cycle, so no execution order exists.
    CyclicSchema {
        /// An activity on the cycle.
        activity: String,
    },
    /// The schema contains no construction rules.
    Empty,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Parse { line, column, kind } => {
                write!(f, "parse error at {line}:{column}: {kind}")
            }
            SchemaError::DuplicateClass(name) => {
                write!(f, "entity class {name:?} declared more than once")
            }
            SchemaError::DuplicateActivity(name) => {
                write!(f, "activity {name:?} declared more than once")
            }
            SchemaError::DuplicateProducer { class, activity } => write!(
                f,
                "data class {class:?} already has a producer; activity {activity:?} cannot also produce it"
            ),
            SchemaError::UnknownClass { class, activity } => {
                write!(f, "activity {activity:?} references undeclared class {class:?}")
            }
            SchemaError::WrongKind {
                class,
                activity,
                expected,
            } => write!(
                f,
                "activity {activity:?} uses {class:?} where a {expected} class is required"
            ),
            SchemaError::DuplicateInput { class, activity } => {
                write!(f, "activity {activity:?} lists input {class:?} twice")
            }
            SchemaError::SelfDependency { activity } => {
                write!(f, "activity {activity:?} consumes its own output")
            }
            SchemaError::CyclicSchema { activity } => {
                write!(f, "construction rules form a cycle through activity {activity:?}")
            }
            SchemaError::Empty => write!(f, "schema contains no construction rules"),
        }
    }
}

impl Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SchemaError::UnknownClass {
            class: "wave".into(),
            activity: "Simulate".into(),
        };
        assert!(e.to_string().contains("Simulate"));
        assert!(e.to_string().contains("wave"));
    }

    #[test]
    fn parse_error_carries_position() {
        let e = SchemaError::Parse {
            line: 3,
            column: 7,
            kind: ParseErrorKind::UnexpectedEof,
        };
        assert!(e.to_string().contains("3:7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SchemaError>();
    }
}
