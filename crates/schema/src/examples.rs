//! Ready-made schemas used throughout the workspace: the paper's
//! running example plus larger flows for realistic scenarios and
//! benchmarks.

use crate::model::TaskSchema;
use crate::parse::parse_schema;

/// The paper's Fig. 4 circuit-design schema:
///
/// ```text
/// activity Create:   netlist     = netlist_editor();
/// activity Simulate: performance = simulator(netlist, stimuli);
/// ```
///
/// `stimuli` is a primary input the designer supplies directly.
pub fn circuit_design() -> TaskSchema {
    parse_schema(
        "schema circuit;
         data netlist, stimuli, performance;
         tool netlist_editor, simulator;
         activity Create:   netlist = netlist_editor();
         activity Simulate: performance = simulator(netlist, stimuli);",
    )
    .expect("built-in circuit schema is valid")
}

/// A realistic RTL-to-GDSII ASIC flow with nine activities: spec
/// capture, RTL entry, functional verification, synthesis, floorplan,
/// placement, clock-tree synthesis, routing, and signoff.
pub fn asic_flow() -> TaskSchema {
    parse_schema(
        "schema asic;
         data spec, rtl, testbench, sim_report, netlist, floorplan_db,
              placed_db, cts_db, routed_db, signoff_report;
         tool spec_editor, rtl_editor, rtl_simulator, synthesizer,
              floorplanner, placer, cts_tool, router, signoff_checker;
         activity CaptureSpec: spec = spec_editor();
         activity WriteRtl:    rtl = rtl_editor(spec);
         activity VerifyRtl:   sim_report = rtl_simulator(rtl, testbench);
         activity Synthesize:  netlist = synthesizer(rtl);
         activity Floorplan:   floorplan_db = floorplanner(netlist, spec);
         activity Place:       placed_db = placer(floorplan_db);
         activity Cts:         cts_db = cts_tool(placed_db);
         activity Route:       routed_db = router(cts_db);
         activity Signoff:     signoff_report = signoff_checker(routed_db, sim_report);",
    )
    .expect("built-in asic schema is valid")
}

/// A board-level design flow: schematic capture, layout, fabrication
/// outputs, and a bring-up report — a second domain to show the model is
/// not circuit-specific.
pub fn board_flow() -> TaskSchema {
    parse_schema(
        "schema board;
         data requirements, schematic_db, bom, layout_db, gerbers, bringup_report;
         tool req_editor, schematic_editor, bom_extractor, board_router,
              gerber_writer, lab_bench;
         activity Requirements: requirements = req_editor();
         activity Schematic:    schematic_db = schematic_editor(requirements);
         activity ExtractBom:   bom = bom_extractor(schematic_db);
         activity LayOut:       layout_db = board_router(schematic_db);
         activity WriteGerbers: gerbers = gerber_writer(layout_db);
         activity BringUp:      bringup_report = lab_bench(gerbers, bom);",
    )
    .expect("built-in board schema is valid")
}

/// A 31-activity system-on-chip program: four IP blocks (CPU, DSP,
/// memory controller, IO) each with its own RTL/verify/synthesis
/// mini-flow, converging through integration, physical design, and
/// tapeout signoff — the scale at which block-level rollup views and
/// staffing optimization start to matter.
pub fn soc_program() -> TaskSchema {
    let blocks = ["cpu", "dsp", "mem", "io"];
    let mut src = String::from(
        "schema soc;
         data arch_spec, integ_rtl, integ_report, soc_netlist,
              soc_floorplan, soc_placed, soc_routed, gds, signoff_report, tb_env;
         tool arch_editor, integrator, soc_simulator, soc_synthesizer,
              soc_floorplanner, soc_placer, soc_router, gds_writer, soc_signoff;
         activity ArchSpec: arch_spec = arch_editor();\n",
    );
    for block in blocks {
        src.push_str(&format!(
            "data {block}_rtl, {block}_report, {block}_netlist;
             tool {block}_editor, {block}_simulator, {block}_synth;
             activity Rtl_{block}: {block}_rtl = {block}_editor(arch_spec);
             activity Verify_{block}: {block}_report = {block}_simulator({block}_rtl, tb_env);
             activity Synth_{block}: {block}_netlist = {block}_synth({block}_rtl);\n"
        ));
    }
    src.push_str(
        "activity Integrate: integ_rtl = integrator(cpu_rtl, dsp_rtl, mem_rtl, io_rtl);
         activity VerifySoc: integ_report = soc_simulator(integ_rtl, tb_env);
         activity SynthSoc: soc_netlist = soc_synthesizer(integ_rtl,
             cpu_netlist, dsp_netlist, mem_netlist, io_netlist);
         activity FloorplanSoc: soc_floorplan = soc_floorplanner(soc_netlist, arch_spec);
         activity PlaceSoc: soc_placed = soc_placer(soc_floorplan);
         activity RouteSoc: soc_routed = soc_router(soc_placed);
         activity WriteGds: gds = gds_writer(soc_routed);
         activity SignoffSoc: signoff_report = soc_signoff(gds, integ_report,
             cpu_report, dsp_report, mem_report, io_report);\n",
    );
    parse_schema(&src).expect("built-in soc schema is valid")
}

/// Generates a synthetic pipeline schema with `stages` chained
/// activities (`d0 -> A1 -> d1 -> A2 -> ... -> d{stages}`), used by
/// benchmarks to scale flow size.
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn pipeline(stages: usize) -> TaskSchema {
    assert!(stages > 0, "pipeline needs at least one stage");
    let mut src = String::from("schema pipeline;\n");
    for i in 0..=stages {
        src.push_str(&format!("data d{i};\n"));
    }
    for i in 1..=stages {
        src.push_str(&format!("tool t{i};\n"));
    }
    src.push_str("activity Stage1: d1 = t1(d0);\n");
    for i in 2..=stages {
        src.push_str(&format!("activity Stage{i}: d{i} = t{i}(d{});\n", i - 1));
    }
    parse_schema(&src).expect("generated pipeline schema is valid")
}

/// Generates a layered schema: `layers` layers of `width` parallel
/// activities, each consuming `fanin` outputs of the previous layer,
/// with a final merge activity. Models wide parallel design work
/// (per-block synthesis, per-corner analysis) converging to signoff.
///
/// # Panics
///
/// Panics if any dimension is zero or `fanin > width`.
pub fn layered(layers: usize, width: usize, fanin: usize) -> TaskSchema {
    assert!(
        layers > 0 && width > 0 && fanin > 0,
        "dimensions must be positive"
    );
    assert!(fanin <= width, "fanin cannot exceed width");
    let mut src = String::from("schema layered;\ntool worker, merger;\n");
    for w in 0..width {
        src.push_str(&format!("data in{w};\n"));
    }
    for l in 0..layers {
        for w in 0..width {
            src.push_str(&format!("data l{l}w{w};\n"));
        }
    }
    src.push_str("data merged;\n");
    for l in 0..layers {
        for w in 0..width {
            let inputs: Vec<String> = (0..fanin)
                .map(|k| {
                    if l == 0 {
                        format!("in{}", (w + k) % width)
                    } else {
                        format!("l{}w{}", l - 1, (w + k) % width)
                    }
                })
                .collect();
            src.push_str(&format!(
                "activity L{l}W{w}: l{l}w{w} = worker({});\n",
                inputs.join(", ")
            ));
        }
    }
    let last: Vec<String> = (0..width).map(|w| format!("l{}w{w}", layers - 1)).collect();
    src.push_str(&format!(
        "activity Merge: merged = merger({});\n",
        last.join(", ")
    ));
    parse_schema(&src).expect("generated layered schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SchemaGraph;

    #[test]
    fn circuit_matches_paper() {
        let s = circuit_design();
        assert_eq!(s.name(), "circuit");
        assert_eq!(s.rules().len(), 2);
        assert_eq!(
            s.primary_inputs()
                .iter()
                .map(|c| c.name())
                .collect::<Vec<_>>(),
            vec!["stimuli"]
        );
    }

    #[test]
    fn asic_flow_orders_nine_activities() {
        let s = asic_flow();
        let order = SchemaGraph::for_schema(&s).activity_order();
        assert_eq!(order.len(), 9);
        let pos = |name: &str| order.iter().position(|a| a == name).unwrap();
        assert!(pos("CaptureSpec") < pos("WriteRtl"));
        assert!(pos("Synthesize") < pos("Route"));
        assert!(pos("Route") < pos("Signoff"));
    }

    #[test]
    fn board_flow_valid() {
        let s = board_flow();
        assert_eq!(s.rules().len(), 6);
        assert_eq!(s.primary_outputs()[0].name(), "bringup_report");
    }

    #[test]
    fn soc_program_shape() {
        let s = soc_program();
        // 1 arch + 4 blocks × 3 + 8 integration/physical activities.
        assert_eq!(s.rules().len(), 1 + 4 * 3 + 8);
        let order = SchemaGraph::for_schema(&s).activity_order();
        let pos = |name: &str| order.iter().position(|a| a == name).unwrap();
        assert!(pos("ArchSpec") < pos("Rtl_cpu"));
        assert!(pos("Rtl_cpu") < pos("Integrate"));
        assert!(pos("Integrate") < pos("SynthSoc"));
        assert!(pos("WriteGds") < pos("SignoffSoc"));
        // Hierarchical synthesis: every activity is in the signoff cone.
        assert_eq!(
            SchemaGraph::for_schema(&s)
                .activities_for_target("signoff_report")
                .len(),
            s.rules().len()
        );
        // tb_env is the only designer-supplied input.
        assert_eq!(
            s.primary_inputs()
                .iter()
                .map(|c| c.name())
                .collect::<Vec<_>>(),
            vec!["tb_env"]
        );
    }

    #[test]
    fn pipeline_scales() {
        let s = pipeline(25);
        assert_eq!(s.rules().len(), 25);
        let order = SchemaGraph::for_schema(&s).activity_order();
        assert_eq!(order.first().map(String::as_str), Some("Stage1"));
        assert_eq!(order.last().map(String::as_str), Some("Stage25"));
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn pipeline_zero_panics() {
        pipeline(0);
    }

    #[test]
    fn layered_has_merge_last() {
        let s = layered(3, 4, 2);
        assert_eq!(s.rules().len(), 3 * 4 + 1);
        let order = SchemaGraph::for_schema(&s).activity_order();
        assert_eq!(order.last().map(String::as_str), Some("Merge"));
    }

    #[test]
    #[should_panic(expected = "fanin cannot exceed width")]
    fn layered_bad_fanin_panics() {
        layered(2, 2, 3);
    }
}
