//! Aggregated micro-benchmark runner (replaces `cargo bench`): runs
//! the B1–B14 kernels and writes `BENCH_schedflow.json` at the
//! workspace root.
//!
//! Usage:
//!
//! ```text
//! benchmarks [FILTER] [--quick] [--out PATH]
//! ```
//!
//! * `FILTER` — run only kernels whose name contains the substring
//!   (e.g. `cpm`, `plan`). Must match at least one kernel name.
//! * `--quick` — smoke-test sampling plan (same as `BENCH_QUICK=1`).
//! * `--out PATH` — where to write the JSON report (default:
//!   `BENCH_schedflow.json` at the workspace root).

use std::path::PathBuf;
use std::process::ExitCode;

use bench::kernels;

fn usage() -> ExitCode {
    eprintln!("usage: benchmarks [FILTER] [--quick] [--out PATH]");
    eprintln!("kernels: {}", kernels::KERNELS.join(", "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1");
    let mut filter: Option<String> = None;
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag: {flag}");
                return usage();
            }
            name if filter.is_none() => filter = Some(name.to_owned()),
            _ => return usage(),
        }
    }

    if let Some(f) = filter.as_deref() {
        if !kernels::KERNELS.iter().any(|k| k.contains(f)) {
            eprintln!("no kernel matches '{f}'");
            return usage();
        }
    }

    let out = out.unwrap_or_else(|| {
        // crates/bench -> workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_schedflow.json")
    });

    eprintln!(
        "running kernels ({} mode){}...",
        if quick { "quick" } else { "full" },
        filter
            .as_deref()
            .map(|f| format!(", filter '{f}'"))
            .unwrap_or_default()
    );
    let records = kernels::run_all(quick, filter.as_deref());
    if records.is_empty() {
        eprintln!("no benchmarks ran");
        return ExitCode::FAILURE;
    }

    match harness::bench::write_report(&out, &records) {
        Ok(()) => {
            eprintln!("wrote {} records to {}", records.len(), out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}
