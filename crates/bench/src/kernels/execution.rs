//! B3 — execution engine throughput: runs/second through the
//! plan-execute-link cycle, including iteration loops and metadata
//! writes.
//!
//! Expected shape: linear in total runs; the metadata layer adds
//! negligible overhead on top of the tool models, supporting the
//! paper's claim that tracking can live inside the flow manager.

use harness::bench::Record;

use crate::pipeline_manager;

/// Runs the kernel; `quick` selects the smoke-test plan and sizes.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("execution", quick);
    let sizes: &[usize] = if quick { &[10] } else { &[10, 50] };
    for &stages in sizes {
        suite.bench_with_setup(
            &format!("execute_pipeline/{stages}"),
            Some(stages as u64),
            || {
                let mut h = pipeline_manager(stages, 4, 1);
                h.plan(&format!("d{stages}")).expect("plannable");
                h
            },
            |mut h| h.execute(&format!("d{stages}")).expect("executable"),
        );
    }
    suite.into_records()
}
