use std::fmt;

use crate::rng::{mix, SplitMix64};

/// One request to run a tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ToolInvocation {
    /// Total size of the input design data in bytes (0 for source
    /// activities like the paper's `Create`).
    pub input_bytes: u64,
    /// 1-based iteration number of the owning activity — later
    /// iterations converge (designers fix what the last run exposed).
    pub iteration: u32,
    /// Project-level seed, so different projects see different noise.
    pub seed: u64,
}

/// The observable result of running a tool.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolOutcome {
    /// Wall-clock working days the run took.
    pub duration_days: f64,
    /// The produced design data.
    pub output: Vec<u8>,
    /// Whether the result meets the activity's goals. A `false` outcome
    /// means the designer will iterate ("a given activity may need to
    /// be run several times before the design goals are achieved").
    pub converged: bool,
}

/// A deterministic behaviour model of one CAD tool.
///
/// Duration = `base_days + bytes_factor * input_kib`, perturbed by
/// log-normal-ish noise of relative width `jitter`; convergence per
/// iteration follows a geometric-style ramp from `first_pass_rate`
/// towards certainty at `max_iterations`. All draws come from a
/// [`SplitMix64`] seeded by the invocation, so identical requests give
/// identical outcomes.
///
/// # Example
///
/// ```
/// use simtools::{ToolInvocation, ToolModel};
///
/// let sim = ToolModel::new("simulator", 1.0)
///     .with_bytes_factor(0.05)
///     .with_first_pass_rate(0.5);
/// let out = sim.invoke(&ToolInvocation { input_bytes: 2048, iteration: 1, seed: 1 });
/// assert!(out.duration_days >= 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ToolModel {
    name: String,
    base_days: f64,
    bytes_factor: f64,
    jitter: f64,
    first_pass_rate: f64,
    max_iterations: u32,
    output_bytes: u64,
}

impl ToolModel {
    /// Creates a model with the given base duration in days and
    /// moderate defaults: no input-size sensitivity, 20% jitter, 60%
    /// first-pass success converging by iteration 5, 4 KiB outputs.
    ///
    /// # Panics
    ///
    /// Panics if `base_days` is negative or not finite.
    pub fn new(name: impl Into<String>, base_days: f64) -> Self {
        assert!(
            base_days.is_finite() && base_days >= 0.0,
            "base duration must be finite and non-negative"
        );
        ToolModel {
            name: name.into(),
            base_days,
            bytes_factor: 0.0,
            jitter: 0.2,
            first_pass_rate: 0.6,
            max_iterations: 5,
            output_bytes: 4096,
        }
    }

    /// Days added per KiB of input data.
    #[must_use]
    pub fn with_bytes_factor(mut self, days_per_kib: f64) -> Self {
        self.bytes_factor = days_per_kib.max(0.0);
        self
    }

    /// Relative duration noise (0 = deterministic durations).
    #[must_use]
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Probability the first iteration already meets the goals.
    #[must_use]
    pub fn with_first_pass_rate(mut self, rate: f64) -> Self {
        self.first_pass_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Iteration count by which convergence is certain.
    #[must_use]
    pub fn with_max_iterations(mut self, n: u32) -> Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Size of produced design data in bytes.
    #[must_use]
    pub fn with_output_bytes(mut self, bytes: u64) -> Self {
        self.output_bytes = bytes;
        self
    }

    /// The tool's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base duration in days.
    pub fn base_days(&self) -> f64 {
        self.base_days
    }

    /// Probability the first iteration meets the goals.
    pub fn first_pass_rate(&self) -> f64 {
        self.first_pass_rate
    }

    /// Iteration count by which convergence is certain.
    pub fn max_iterations(&self) -> u32 {
        self.max_iterations
    }

    /// Size of produced design data in bytes.
    pub fn output_bytes(&self) -> u64 {
        self.output_bytes
    }

    /// Expected (noise-free) duration for an input of `input_bytes`.
    pub fn nominal_duration(&self, input_bytes: u64) -> f64 {
        self.base_days + self.bytes_factor * (input_bytes as f64 / 1024.0)
    }

    /// Rough expected iteration count before convergence: `1 /
    /// first_pass_rate`, capped at `max_iterations`. Planners use this
    /// to turn per-run durations into per-activity estimates.
    pub fn expected_iterations(&self) -> f64 {
        if self.first_pass_rate <= 0.0 {
            f64::from(self.max_iterations)
        } else {
            (1.0 / self.first_pass_rate).min(f64::from(self.max_iterations))
        }
    }

    /// Expected total activity duration for `input_bytes`, accounting
    /// for iterations (later iterations run faster, mirroring
    /// [`invoke`](ToolModel::invoke)'s iteration scaling).
    pub fn expected_activity_duration(&self, input_bytes: u64) -> f64 {
        let nominal = self.nominal_duration(input_bytes);
        let iters = self.expected_iterations();
        // First iteration full cost; the fractional expected remainder
        // at the second-iteration rate (scale 1/1.25).
        nominal + nominal * (iters - 1.0).max(0.0) * 0.8
    }

    /// Runs the model. Deterministic in `(model, invocation)`.
    pub fn invoke(&self, req: &ToolInvocation) -> ToolOutcome {
        let seed = mix(&[
            crate::rng::hash_str(&self.name),
            req.seed,
            req.input_bytes,
            u64::from(req.iteration),
        ]);
        let mut rng = SplitMix64::new(seed);
        let nominal = self.nominal_duration(req.input_bytes);
        // Later iterations are faster: the designer rruns on a narrower
        // problem (fixes, not full redesign).
        let iteration_scale = 1.0 / (1.0 + 0.25 * f64::from(req.iteration.saturating_sub(1)));
        let duration = rng
            .next_duration(
                nominal * iteration_scale,
                nominal * self.jitter * iteration_scale,
            )
            .max(0.05 * self.base_days.max(0.1));
        // Convergence probability ramps linearly from the first-pass
        // rate to 1.0 at max_iterations.
        let ramp = if self.max_iterations <= 1 {
            1.0
        } else {
            let t = f64::from(req.iteration.min(self.max_iterations) - 1)
                / f64::from(self.max_iterations - 1);
            self.first_pass_rate + (1.0 - self.first_pass_rate) * t
        };
        let converged = req.iteration >= self.max_iterations || rng.next_f64() < ramp;
        // Synthetic output: header + pseudo-random payload of the
        // configured size (capped so huge flows stay in memory).
        let payload = (self.output_bytes.min(1 << 20)) as usize;
        let mut output = Vec::with_capacity(payload + 32);
        output.extend_from_slice(self.name.as_bytes());
        output.extend_from_slice(&req.iteration.to_le_bytes());
        while output.len() < payload {
            output.extend_from_slice(&rng.next_u64().to_le_bytes());
        }
        output.truncate(payload.max(8));
        ToolOutcome {
            duration_days: duration,
            output,
            converged,
        }
    }
}

impl fmt::Display for ToolModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (base {:.2}d, +{:.3}d/KiB, fp {:.0}%)",
            self.name,
            self.base_days,
            self.bytes_factor,
            self.first_pass_rate * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(iteration: u32) -> ToolInvocation {
        ToolInvocation {
            input_bytes: 1024,
            iteration,
            seed: 11,
        }
    }

    #[test]
    fn deterministic_outcomes() {
        let m = ToolModel::new("simulator", 2.0).with_bytes_factor(0.1);
        assert_eq!(m.invoke(&req(1)), m.invoke(&req(1)));
        assert_ne!(m.invoke(&req(1)), m.invoke(&req(2)));
    }

    #[test]
    fn duration_scales_with_input() {
        let m = ToolModel::new("synth", 1.0)
            .with_bytes_factor(0.5)
            .with_jitter(0.0);
        let small = m.invoke(&ToolInvocation {
            input_bytes: 0,
            iteration: 1,
            seed: 0,
        });
        let large = m.invoke(&ToolInvocation {
            input_bytes: 100 * 1024,
            iteration: 1,
            seed: 0,
        });
        assert!(large.duration_days > small.duration_days);
        assert!((m.nominal_duration(100 * 1024) - 51.0).abs() < 1e-9);
    }

    #[test]
    fn later_iterations_are_faster() {
        let m = ToolModel::new("editor", 4.0).with_jitter(0.0);
        let first = m.invoke(&req(1)).duration_days;
        let third = m.invoke(&req(3)).duration_days;
        assert!(third < first);
    }

    #[test]
    fn convergence_certain_at_max_iterations() {
        let m = ToolModel::new("editor", 1.0)
            .with_first_pass_rate(0.0)
            .with_max_iterations(3);
        assert!(m.invoke(&req(3)).converged);
        assert!(m.invoke(&req(7)).converged);
    }

    #[test]
    fn first_pass_rate_one_always_converges() {
        let m = ToolModel::new("editor", 1.0).with_first_pass_rate(1.0);
        for seed in 0..50 {
            let out = m.invoke(&ToolInvocation {
                input_bytes: 0,
                iteration: 1,
                seed,
            });
            assert!(out.converged);
        }
    }

    #[test]
    fn first_pass_rate_statistics() {
        let m = ToolModel::new("editor", 1.0)
            .with_first_pass_rate(0.5)
            .with_max_iterations(10);
        let n = 2000;
        let converged = (0..n)
            .filter(|&seed| {
                m.invoke(&ToolInvocation {
                    input_bytes: 0,
                    iteration: 1,
                    seed,
                })
                .converged
            })
            .count();
        let rate = converged as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn outputs_have_configured_size_and_differ_by_iteration() {
        let m = ToolModel::new("router", 1.0).with_output_bytes(512);
        let a = m.invoke(&req(1));
        let b = m.invoke(&req(2));
        assert_eq!(a.output.len(), 512);
        assert_ne!(a.output, b.output);
    }

    #[test]
    fn durations_never_zero() {
        let m = ToolModel::new("quick", 0.1).with_jitter(1.0);
        for seed in 0..200 {
            let out = m.invoke(&ToolInvocation {
                input_bytes: 0,
                iteration: 1,
                seed,
            });
            assert!(out.duration_days > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_base_panics() {
        ToolModel::new("bad", -1.0);
    }

    #[test]
    fn display_shows_parameters() {
        let m = ToolModel::new("simulator", 2.0);
        assert!(m.to_string().contains("simulator"));
        assert!(m.to_string().contains("fp 60%"));
    }
}
