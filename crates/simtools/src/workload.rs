//! Workload generation: design teams and primary-input data for driving
//! flows through the execution engine, plus synthetic duration
//! histories for exercising prediction models.

use crate::rng::{hash_str, mix, SplitMix64};

/// A design team: named designers that activities can be assigned to.
///
/// # Example
///
/// ```
/// use simtools::workload::Team;
///
/// let team = Team::of_size(3);
/// assert_eq!(team.len(), 3);
/// assert_eq!(team.designer(0), "designer0");
/// // Round-robin assignment cycles through members.
/// assert_eq!(team.assignee(5), "designer2");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Team {
    names: Vec<String>,
}

impl Team {
    /// A team of `n` designers named `designer0..designer{n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn of_size(n: usize) -> Self {
        assert!(n > 0, "a team needs at least one designer");
        Team {
            names: (0..n).map(|i| format!("designer{i}")).collect(),
        }
    }

    /// A team with explicit names.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty.
    pub fn with_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(!names.is_empty(), "a team needs at least one designer");
        Team { names }
    }

    /// Number of designers.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if... never: teams are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `i`-th designer's name.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn designer(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Round-robin assignee for the `k`-th activity.
    pub fn assignee(&self, k: usize) -> &str {
        &self.names[k % self.names.len()]
    }

    /// Stable fallback assignee for a named activity, keyed on a hash
    /// of the name rather than a positional index — so the assignment
    /// does not shift when surrounding activities complete, the scope
    /// changes, or a scheduling policy reorders dispatch between
    /// sessions.
    pub fn assignee_for(&self, activity: &str) -> &str {
        let i = (hash_str(activity) % self.names.len() as u64) as usize;
        &self.names[i]
    }

    /// Iterates over designer names.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        self.names.iter().map(String::as_str)
    }
}

/// Generates deterministic primary-input design data for `class` under
/// a project `seed`: a few KiB of pseudo-random bytes prefixed by the
/// class name, sized by a per-class hash.
pub fn primary_input_data(class: &str, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(mix(&[hash_str(class), seed]));
    let size = 512 + (rng.next_below(8) as usize) * 512;
    let mut data = Vec::with_capacity(size);
    data.extend_from_slice(class.as_bytes());
    while data.len() < size {
        data.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    data.truncate(size);
    data
}

/// A synthetic history of measured activity durations with a trend and
/// noise — the input shape for evaluating prediction models (bench B7).
///
/// Durations follow `base * (1 + drift)^k` with relative noise, clamped
/// positive; `k` is the observation index.
pub fn duration_history(base: f64, drift: f64, noise: f64, count: usize, seed: u64) -> Vec<f64> {
    assert!(base > 0.0, "base duration must be positive");
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|k| {
            let trend = base * (1.0 + drift).powi(k as i32);
            rng.next_duration(trend, trend * noise).max(0.01)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn team_round_robin() {
        let t = Team::of_size(2);
        assert_eq!(t.assignee(0), "designer0");
        assert_eq!(t.assignee(1), "designer1");
        assert_eq!(t.assignee(2), "designer0");
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn stable_assignee_depends_on_name_only() {
        let t = Team::of_size(3);
        // Same activity, same designer — regardless of any positional
        // context the caller might have.
        assert_eq!(t.assignee_for("Synthesize"), t.assignee_for("Synthesize"));
        // Distinct activities spread across the team.
        let spread: std::collections::BTreeSet<&str> =
            ["Create", "Simulate", "Route", "Place", "Cts"]
                .iter()
                .map(|a| t.assignee_for(a))
                .collect();
        assert!(
            spread.len() > 1,
            "hash assignment never spreads: {spread:?}"
        );
        // The designer is always a team member.
        assert!(t.iter().any(|d| d == t.assignee_for("Signoff")));
    }

    #[test]
    fn team_with_names() {
        let t = Team::with_names(["alice", "bob"]);
        assert_eq!(t.designer(1), "bob");
    }

    #[test]
    #[should_panic(expected = "at least one designer")]
    fn empty_team_panics() {
        Team::of_size(0);
    }

    #[test]
    fn primary_input_deterministic_and_class_dependent() {
        let a = primary_input_data("stimuli", 1);
        let b = primary_input_data("stimuli", 1);
        let c = primary_input_data("testbench", 1);
        let d = primary_input_data("stimuli", 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert!(a.len() >= 512);
        assert!(a.starts_with(b"stimuli"));
    }

    #[test]
    fn history_trend_and_positivity() {
        let h = duration_history(10.0, 0.05, 0.1, 40, 3);
        assert_eq!(h.len(), 40);
        assert!(h.iter().all(|&d| d > 0.0));
        // With positive drift the later half should average higher.
        let first: f64 = h[..20].iter().sum::<f64>() / 20.0;
        let second: f64 = h[20..].iter().sum::<f64>() / 20.0;
        assert!(second > first);
    }

    #[test]
    fn history_deterministic() {
        assert_eq!(
            duration_history(5.0, 0.0, 0.2, 10, 9),
            duration_history(5.0, 0.0, 0.2, 10, 9)
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn history_rejects_bad_base() {
        duration_history(0.0, 0.0, 0.0, 1, 0);
    }
}
