//! A process-wide metrics registry: named monotonic counters, gauges,
//! and fixed-bucket histograms, with optional key/value labels.
//!
//! Unlike tracing, metrics are **always on** — a counter bump is one
//! atomic add, cheap enough to leave in release builds — and are meant
//! to replace the ad-hoc stats structs that accreted across crates
//! (e.g. the planner's retired `PlanStats` snapshot and its
//! accessor shims, fully replaced by `hercules.plan.*`). Handles are
//! cheap to clone and safe to cache; the registry itself is keyed by
//! `(name, sorted labels)` so distant layers share a metric by naming
//! convention alone (`hercules.plan.cache_hits`, `journal.appends`,
//! `serve.requests{endpoint="plan"}`, …).
//!
//! **Label cardinality guidance:** labels multiply series. Use values
//! from small closed sets (endpoint class, tenant name, status class)
//! — never unbounded inputs like project names from requests or raw
//! paths. Every labeled variant is a separate atomic cell held for the
//! life of the process.
//!
//! Snapshots export three ways: [`Metrics::render`] (human table with
//! p50/p95/p99), [`Metrics::to_json`] (the `/metrics` endpoint), and
//! [`Metrics::to_prometheus`] (text exposition format v0, stable
//! ordering and escaping — golden-pinned under `tests/`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter. Clones share the same cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that goes up *and* down (queue depth, in-flight
/// requests). Clones share the same cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    fn new() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.set(0);
    }
}

/// A histogram over fixed, registration-time bucket bounds.
///
/// `bounds` are upper edges: a sample lands in the first bucket whose
/// bound is `>= sample`; larger samples land in the implicit overflow
/// bucket. Everything is atomics — `observe` is lock-free — and the
/// running sum is an `f64` stored as bits and updated by CAS.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

struct HistogramInner {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets (last = overflow).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 bits of the running sum, updated via compare-exchange.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A standalone histogram (not registered anywhere) — for local
    /// aggregation like the B13 latency kernel. Registry histograms
    /// come from [`Metrics::histogram`].
    pub fn with_bounds(bounds: &[f64]) -> Self {
        let mut b: Vec<f64> = bounds.to_vec();
        b.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        let buckets = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: b,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
        }))
    }

    /// Records one sample.
    pub fn observe(&self, sample: f64) {
        let inner = &*self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|b| sample <= *b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + sample).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// The `q`-quantile (`q` in `[0,1]`) estimated from the bucket
    /// counts, linearly interpolated inside the winning bucket — the
    /// same estimator Prometheus' `histogram_quantile` uses. The
    /// result always lies within the bucket containing the true sample
    /// quantile, so the error is bounded by that bucket's width. A
    /// quantile landing in the overflow bucket reports the largest
    /// finite bound (the histogram cannot see past it). 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        percentile_from_buckets(&self.buckets(), q)
    }

    /// `(upper_bound, count)` per bucket; the final entry uses
    /// `f64::INFINITY` for the overflow bucket.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        let inner = &*self.0;
        inner
            .buckets
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let bound = inner.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                (bound, c.load(Ordering::Relaxed))
            })
            .collect()
    }

    fn reset(&self) {
        let inner = &*self.0;
        for b in &inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        inner.count.store(0, Ordering::Relaxed);
        inner.sum_bits.store(0.0_f64.to_bits(), Ordering::Relaxed);
    }
}

/// Bucket-interpolated quantile over `(upper_bound, count)` pairs (see
/// [`Histogram::percentile`]).
fn percentile_from_buckets(buckets: &[(f64, u64)], q: f64) -> f64 {
    let total: u64 = buckets.iter().map(|(_, c)| *c).sum();
    if total == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    // The fractional rank; the floor at ~0 makes q=0 pick the first
    // non-empty bucket's lower edge instead of dividing by zero.
    let target = (q * total as f64).max(1e-12);
    let mut cum_before = 0.0f64;
    let mut prev_finite: Option<f64> = None;
    for (bound, c) in buckets {
        let cum = cum_before + *c as f64;
        if *c > 0 && cum >= target {
            if !bound.is_finite() {
                return prev_finite.unwrap_or(0.0);
            }
            let lower = match prev_finite {
                Some(p) => p,
                // Implicit lower edge of the first bucket: 0 for
                // positive bounds (the common latency case).
                None => bound.min(0.0),
            };
            return lower + (*bound - lower) * ((target - cum_before) / *c as f64);
        }
        cum_before = cum;
        if bound.is_finite() {
            prev_finite = Some(*bound);
        }
    }
    prev_finite.unwrap_or(0.0)
}

/// Registry key: metric name plus sorted labels.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

fn make_key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    labels.sort();
    MetricKey {
        name: name.to_owned(),
        labels,
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<MetricKey, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<MetricKey, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The process-wide metrics registry (associated functions only).
pub struct Metrics;

impl Metrics {
    /// The unlabeled counter named `name`, registering it on first
    /// use. Cache the returned handle on hot paths — lookup takes the
    /// registry lock.
    pub fn counter(name: &str) -> Counter {
        Self::counter_with(name, &[])
    }

    /// The counter named `name` with `labels` (order-insensitive).
    pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = make_key(name, labels);
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        match reg
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!(
                "metric {name:?} is already registered as a {}",
                other.kind()
            ),
        }
    }

    /// The unlabeled gauge named `name`.
    pub fn gauge(name: &str) -> Gauge {
        Self::gauge_with(name, &[])
    }

    /// The gauge named `name` with `labels`.
    pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = make_key(name, labels);
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        match reg
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!(
                "metric {name:?} is already registered as a {}",
                other.kind()
            ),
        }
    }

    /// The unlabeled histogram named `name`, registering it with
    /// `bounds` on first use (later calls reuse the original bounds).
    pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
        Self::histogram_with(name, bounds, &[])
    }

    /// The histogram named `name` with `labels`.
    pub fn histogram_with(name: &str, bounds: &[f64], labels: &[(&str, &str)]) -> Histogram {
        let key = make_key(name, labels);
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        match reg
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Histogram::with_bounds(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!(
                "metric {name:?} is already registered as a {}",
                other.kind()
            ),
        }
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// `(name, labels)`.
    pub fn snapshot() -> Vec<MetricSnapshot> {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.iter()
            .map(|(key, m)| match m {
                Metric::Counter(c) => MetricSnapshot::Counter {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value: c.get(),
                },
                Metric::Gauge(g) => MetricSnapshot::Gauge {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value: g.get(),
                },
                Metric::Histogram(h) => MetricSnapshot::Histogram {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h.buckets(),
                },
            })
            .collect()
    }

    /// Zeroes every registered metric (handles stay valid). Intended
    /// for tests and the start of CLI sessions.
    pub fn reset() {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        for m in reg.values() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Renders the snapshot as an aligned, human-readable table.
    /// Histograms include the interpolated p50/p95/p99.
    pub fn render() -> String {
        let snap = Metrics::snapshot();
        let mut out = String::new();
        let width = snap.iter().map(|s| s.full_name().len()).max().unwrap_or(0);
        for s in &snap {
            let name = s.full_name();
            match s {
                MetricSnapshot::Counter { value, .. } => {
                    out.push_str(&format!("{name:<width$}  {value}\n"));
                }
                MetricSnapshot::Gauge { value, .. } => {
                    out.push_str(&format!("{name:<width$}  {value}\n"));
                }
                MetricSnapshot::Histogram {
                    count,
                    sum,
                    buckets,
                    ..
                } => {
                    let mean = if *count == 0 {
                        0.0
                    } else {
                        sum / *count as f64
                    };
                    let p50 = percentile_from_buckets(buckets, 0.50);
                    let p95 = percentile_from_buckets(buckets, 0.95);
                    let p99 = percentile_from_buckets(buckets, 0.99);
                    out.push_str(&format!(
                        "{name:<width$}  count={count} sum={sum:.3} mean={mean:.3} \
                         p50={p50:.3} p95={p95:.3} p99={p99:.3}\n"
                    ));
                    for (bound, c) in buckets {
                        if *c == 0 {
                            continue;
                        }
                        if bound.is_finite() {
                            out.push_str(&format!("{:width$}    <= {bound}: {c}\n", ""));
                        } else {
                            out.push_str(&format!("{:width$}    > max: {c}\n", ""));
                        }
                    }
                }
            }
        }
        out
    }

    /// Serializes the snapshot as a JSON object keyed by metric name
    /// (labeled series key as `name{k="v",…}`). Histograms carry
    /// count/sum/p50/p95/p99 plus the raw buckets.
    pub fn to_json() -> String {
        use std::fmt::Write as _;
        let snap = Metrics::snapshot();
        let mut out = String::from("{");
        for (i, s) in snap.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            crate::export::escape_json(&s.full_name(), &mut out);
            out.push_str("\":");
            match s {
                MetricSnapshot::Counter { value, .. } => {
                    let _ = write!(out, "{value}");
                }
                MetricSnapshot::Gauge { value, .. } => {
                    let _ = write!(out, "{value}");
                }
                MetricSnapshot::Histogram {
                    count,
                    sum,
                    buckets,
                    ..
                } => {
                    let p50 = percentile_from_buckets(buckets, 0.50);
                    let p95 = percentile_from_buckets(buckets, 0.95);
                    let p99 = percentile_from_buckets(buckets, 0.99);
                    let _ = write!(
                        out,
                        "{{\"count\":{count},\"sum\":{sum},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99}"
                    );
                    out.push_str(",\"buckets\":[");
                    for (j, (bound, c)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        if bound.is_finite() {
                            let _ = write!(out, "[{bound},{c}]");
                        } else {
                            let _ = write!(out, "[null,{c}]");
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }

    /// Serializes the snapshot in Prometheus text exposition format
    /// (v0): one `# TYPE` line per family, counters/gauges as single
    /// samples, histograms as cumulative `_bucket{le=…}` series plus
    /// `_sum`/`_count`. Metric names are mangled to the legal charset
    /// (`.` → `_`), label values escaped per the spec. Ordering is the
    /// registry's `(name, labels)` order — deterministic, so output is
    /// golden-pinnable.
    pub fn to_prometheus() -> String {
        use std::fmt::Write as _;
        let snap = Metrics::snapshot();
        let mut out = String::new();
        let mut last_family: Option<(String, &'static str)> = None;
        for s in &snap {
            let family = mangle_name(s.name());
            let kind = match s {
                MetricSnapshot::Counter { .. } => "counter",
                MetricSnapshot::Gauge { .. } => "gauge",
                MetricSnapshot::Histogram { .. } => "histogram",
            };
            if last_family.as_ref() != Some(&(family.clone(), kind)) {
                let _ = writeln!(out, "# TYPE {family} {kind}");
                last_family = Some((family.clone(), kind));
            }
            match s {
                MetricSnapshot::Counter { labels, value, .. } => {
                    out.push_str(&family);
                    write_label_set(&mut out, labels, None);
                    let _ = writeln!(out, " {value}");
                }
                MetricSnapshot::Gauge { labels, value, .. } => {
                    out.push_str(&family);
                    write_label_set(&mut out, labels, None);
                    let _ = writeln!(out, " {value}");
                }
                MetricSnapshot::Histogram {
                    labels,
                    count,
                    sum,
                    buckets,
                    ..
                } => {
                    let mut cum = 0u64;
                    for (bound, c) in buckets {
                        cum += c;
                        let le = if bound.is_finite() {
                            format!("{bound}")
                        } else {
                            "+Inf".to_owned()
                        };
                        let _ = write!(out, "{family}_bucket");
                        write_label_set(&mut out, labels, Some(&le));
                        let _ = writeln!(out, " {cum}");
                    }
                    let _ = write!(out, "{family}_sum");
                    write_label_set(&mut out, labels, None);
                    let _ = writeln!(out, " {sum}");
                    let _ = write!(out, "{family}_count");
                    write_label_set(&mut out, labels, None);
                    let _ = writeln!(out, " {count}");
                }
            }
        }
        out
    }
}

/// Maps a dotted metric name onto the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn mangle_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Writes `{k="v",…,le="…"}` (omitted entirely when empty and no le).
fn write_label_set(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&mangle_name(k));
        out.push_str("=\"");
        escape_label_value(v, out);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

/// Escapes a label value per the exposition format: `\`, `"`, newline.
fn escape_label_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// One metric's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// A counter's value.
    Counter {
        /// Metric name.
        name: String,
        /// Sorted `(key, value)` labels (empty for unlabeled metrics).
        labels: Vec<(String, String)>,
        /// Current count.
        value: u64,
    },
    /// A gauge's value.
    Gauge {
        /// Metric name.
        name: String,
        /// Sorted `(key, value)` labels.
        labels: Vec<(String, String)>,
        /// Current value.
        value: i64,
    },
    /// A histogram's state.
    Histogram {
        /// Metric name.
        name: String,
        /// Sorted `(key, value)` labels.
        labels: Vec<(String, String)>,
        /// Samples recorded.
        count: u64,
        /// Sum of samples.
        sum: f64,
        /// `(upper_bound, count)` per bucket (last bound is infinite).
        buckets: Vec<(f64, u64)>,
    },
}

impl MetricSnapshot {
    /// The metric's base name (labels excluded).
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. }
            | MetricSnapshot::Gauge { name, .. }
            | MetricSnapshot::Histogram { name, .. } => name,
        }
    }

    /// The metric's labels.
    pub fn labels(&self) -> &[(String, String)] {
        match self {
            MetricSnapshot::Counter { labels, .. }
            | MetricSnapshot::Gauge { labels, .. }
            | MetricSnapshot::Histogram { labels, .. } => labels,
        }
    }

    /// The series key: `name` or `name{k="v",…}` with labels sorted.
    pub fn full_name(&self) -> String {
        let labels = self.labels();
        if labels.is_empty() {
            return self.name().to_owned();
        }
        let mut out = String::from(self.name());
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(v, &mut out);
            out.push('"');
        }
        out.push('}');
        out
    }

    /// The counter value, if this is a counter.
    pub fn counter_value(&self) -> Option<u64> {
        match self {
            MetricSnapshot::Counter { value, .. } => Some(*value),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let a = Metrics::counter("test.metrics.shared");
        let b = Metrics::counter("test.metrics.shared");
        a.reset();
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        let snap = Metrics::snapshot();
        let found = snap
            .iter()
            .find(|s| s.name() == "test.metrics.shared")
            .unwrap();
        assert_eq!(found.counter_value(), Some(5));
    }

    #[test]
    fn labels_separate_series_and_ignore_order() {
        let a = Metrics::counter_with("test.metrics.labeled", &[("ep", "plan"), ("t", "a")]);
        let same = Metrics::counter_with("test.metrics.labeled", &[("t", "a"), ("ep", "plan")]);
        let other = Metrics::counter_with("test.metrics.labeled", &[("ep", "run"), ("t", "a")]);
        a.reset();
        other.reset();
        a.add(3);
        same.add(2);
        other.inc();
        assert_eq!(a.get(), 5, "label order must not split the series");
        assert_eq!(other.get(), 1);
        let snap = Metrics::snapshot();
        let found = snap
            .iter()
            .find(|s| s.full_name() == "test.metrics.labeled{ep=\"plan\",t=\"a\"}")
            .expect("labeled series in snapshot");
        assert_eq!(found.counter_value(), Some(5));
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = Metrics::gauge("test.metrics.gauge");
        g.set(0);
        g.inc();
        g.add(4);
        g.dec();
        assert_eq!(g.get(), 4);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_buckets_sum_and_mean() {
        let h = Metrics::histogram("test.metrics.hist", &[1.0, 10.0, 100.0]);
        h.reset();
        for v in [0.5, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 555.5).abs() < 1e-9);
        assert!((h.mean() - 138.875).abs() < 1e-9);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (10.0, 1));
        assert_eq!(buckets[2], (100.0, 1));
        assert_eq!(buckets[3].1, 1); // overflow
        assert!(buckets[3].0.is_infinite());
    }

    #[test]
    fn percentile_interpolates_within_the_winning_bucket() {
        let h = Histogram::with_bounds(&[10.0, 20.0, 40.0]);
        // 10 samples in (10, 20]: the median interpolates inside it.
        for _ in 0..10 {
            h.observe(15.0);
        }
        let p50 = h.percentile(0.5);
        assert!((10.0..=20.0).contains(&p50), "p50={p50}");
        assert!((h.percentile(0.0) - 10.0).abs() < 1e-6);
        assert!((h.percentile(1.0) - 20.0).abs() < 1e-9);
        // Overflow-bucket quantiles clamp to the last finite bound.
        h.observe(1e9);
        assert!((h.percentile(1.0) - 40.0).abs() < 1e-9);
        // Empty histogram reports 0.
        assert_eq!(Histogram::with_bounds(&[1.0]).percentile(0.9), 0.0);
    }

    #[test]
    fn concurrent_observations_do_not_lose_samples() {
        let h = Metrics::histogram("test.metrics.concurrent", &[0.5]);
        h.reset();
        let c = Metrics::counter("test.metrics.concurrent_count");
        c.reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        h.observe(1.0);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(c.get(), 4000);
        assert!((h.sum() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn render_and_json_are_parseable() {
        let c = Metrics::counter("test.metrics.render");
        c.inc();
        let h = Metrics::histogram("test.metrics.render_hist", &[1.0, 2.0]);
        h.observe(1.5);
        let text = Metrics::render();
        assert!(text.contains("test.metrics.render"));
        assert!(text.contains("p95="), "histogram lines carry percentiles");
        crate::export::validate_json(&Metrics::to_json()).unwrap();
        assert!(Metrics::to_json().contains("\"p99\":"));
    }

    #[test]
    fn prometheus_exposition_validates() {
        Metrics::counter_with("test.metrics.prom", &[("tenant", "a\"b\\c")]).inc();
        Metrics::histogram("test.metrics.prom_hist", &[0.5, 1.0]).observe(0.7);
        let text = Metrics::to_prometheus();
        crate::export::validate_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE test_metrics_prom counter"), "{text}");
        assert!(text.contains("tenant=\"a\\\"b\\\\c\""), "escaping: {text}");
        assert!(text.contains("test_metrics_prom_hist_bucket{le=\"+Inf\"}"));
    }
}
