//! Synthetic EDA tool substrate.
//!
//! The paper's Hercules invokes real CAD tools (a netlist editor, a
//! circuit simulator) whose runs create design data; reproducing the
//! *flow management* behaviour does not require the tools themselves,
//! only their observable shape: a run takes time that depends on the
//! tool and its inputs, produces output data, sometimes fails, and an
//! activity may need several iterations before the designer accepts the
//! result.
//!
//! This crate provides that shape, deterministically:
//!
//! * [`ToolModel`] — a parameterised behaviour model; invoking it with
//!   the same inputs always yields the same outcome (durations,
//!   output bytes, convergence), so every experiment in this
//!   repository is reproducible.
//! * [`ToolLibrary`] — tool-name → model, with calibrated defaults for
//!   the tool names used by the built-in schemas and a hash-derived
//!   fallback for any other name.
//! * [`cluster`] — simulated heterogeneous clusters (worker speed
//!   factors, seeded transfer delay) that policy-driven executors
//!   dispatch onto.
//! * [`des`] — a minimal discrete-event core (clock + time-ordered
//!   event queue) the execution engines are built on.
//! * [`rng`] — the SplitMix64 generator used for all deterministic
//!   pseudo-randomness.
//!
//! # Example
//!
//! ```
//! use simtools::{ToolInvocation, ToolLibrary};
//!
//! let lib = ToolLibrary::standard();
//! let outcome = lib.invoke("simulator", &ToolInvocation {
//!     input_bytes: 4096,
//!     iteration: 1,
//!     seed: 42,
//! });
//! assert!(outcome.duration_days > 0.0);
//! // Same request, same outcome: the substrate is deterministic.
//! let again = lib.invoke("simulator", &ToolInvocation {
//!     input_bytes: 4096,
//!     iteration: 1,
//!     seed: 42,
//! });
//! assert_eq!(outcome, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod library;
mod model;

pub mod cluster;
pub mod des;
pub mod rng;
pub mod vfs;
pub mod workload;

pub use fault::{BrokenToolPlan, FaultInjector, FaultPlan, FaultedOutcome, InjectedFault};
pub use library::ToolLibrary;
pub use model::{ToolInvocation, ToolModel, ToolOutcome};
