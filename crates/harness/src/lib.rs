//! Offline-first test and benchmark infrastructure for the
//! dac95-schedflow workspace.
//!
//! The container this repo builds in has **no network access**, so
//! crates-io dev-dependencies (`proptest`, `rand`, `criterion`) can
//! never resolve. This crate replaces all three with in-repo
//! equivalents driven by [`simtools::rng::SplitMix64`]:
//!
//! * [`strategy`] + [`runner`] + the [`props!`] macro — a mini
//!   property-testing framework with seeded generators and
//!   hedgehog-style integrated shrinking. Failures report a minimal
//!   counterexample and a `HARNESS_SEED` reproduction line.
//! * [`mod@bench`] — a micro-benchmark harness (warmup, fixed iteration
//!   counts, median/p95/min) emitting `BENCH_schedflow.json`.
//!
//! See `crates/harness/README.md` for the full API walkthrough and the
//! JSON schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
mod macros;
pub mod runner;
pub mod strategy;
pub mod tree;

pub use simtools::rng::SplitMix64;

/// Everything a property-test file needs, proptest-prelude style.
pub mod prelude {
    pub use crate::runner::{check, Config};
    pub use crate::strategy::{
        any_u16, any_u64, ascii_noise, ident, one_of, printable_noise, string_from, vec, weighted,
        BoxedStrategy, Just, Strategy, StrategyExt,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, props};
    pub use simtools::rng::SplitMix64;
}
