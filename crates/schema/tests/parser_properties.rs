//! Property-based tests for the schema DSL: round-tripping through
//! `to_source`, parser totality on arbitrary input, and structural
//! invariants of generated schemas.
//!
//! Ported to the in-repo `harness` framework: the proptest regex
//! strategies become explicit character-class generators
//! (`ident()`, `ascii_noise()`, `printable_noise()`).

use harness::prelude::*;
use schema::{parse_schema, EntityKind, SchemaError, TaskSchemaBuilder};

/// Builds a random *valid* schema: `n` data classes in a random
/// forest-like producer structure plus distinct tool names.
fn arb_schema_source() -> impl Strategy<Value = String> {
    (2usize..10, any_u64()).prop_map(|(n, seed)| {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("data d{i};\ntool t{i};\n"));
        }
        // Rule i produces d_i from a subset of earlier data classes,
        // chosen by the seed bits — always acyclic.
        let mut bits = seed;
        for i in 1..n {
            let mut inputs = Vec::new();
            for j in 0..i {
                if bits & 1 == 1 {
                    inputs.push(format!("d{j}"));
                }
                bits >>= 1;
            }
            src.push_str(&format!(
                "activity A{i}: d{i} = t{i}({});\n",
                inputs.join(", ")
            ));
        }
        src
    })
}

harness::props! {
    fn valid_schemas_roundtrip(src in arb_schema_source()) {
        let schema = parse_schema(&src).expect("generated source is valid");
        let reparsed = parse_schema(&schema.to_source()).expect("to_source is valid DSL");
        prop_assert_eq!(schema.classes(), reparsed.classes());
        prop_assert_eq!(schema.rules(), reparsed.rules());
    }

    fn parser_never_panics(garbage in printable_noise(0..200)) {
        // Totality: arbitrary printable input (including multibyte
        // code points) either parses or returns an error — never
        // panics.
        let _ = parse_schema(&garbage);
    }

    fn parser_never_panics_on_ascii_noise(garbage in ascii_noise(0..300)) {
        let _ = parse_schema(&garbage);
    }

    fn builder_and_parser_agree(names in vec(ident(), 2..6)) {
        // Unique-ify names to sidestep duplicate-class errors.
        let mut names = names;
        names.sort();
        names.dedup();
        prop_assume!(names.len() >= 2);
        let data = &names[0];
        let tool = &names[1];
        prop_assume!(data != tool);
        let built = TaskSchemaBuilder::new("x")
            .class(data.clone(), EntityKind::Data)
            .class(tool.clone(), EntityKind::Tool)
            .rule("Make", data.clone(), tool.clone(), &[])
            .build()
            .expect("valid");
        let parsed = parse_schema(&format!(
            "data {data}; tool {tool}; activity Make: {data} = {tool}();"
        ))
        .expect("valid");
        prop_assert_eq!(built.rules(), parsed.rules());
    }

    fn producers_unique_in_valid_schemas(src in arb_schema_source()) {
        let schema = parse_schema(&src).expect("valid");
        for class in schema.classes() {
            if class.kind() == EntityKind::Data {
                // producer_of is deterministic and at-most-one by
                // validation; consumers never include the producer rule.
                if let Some(producer) = schema.producer_of(class.name()) {
                    for consumer in schema.consumers_of(class.name()) {
                        prop_assert_ne!(consumer.activity(), producer.activity());
                    }
                }
            }
        }
    }

    fn error_positions_are_in_range(src in arb_schema_source(), cut in 0usize..100) {
        // Truncating valid source mid-token must yield a parse error
        // whose position lies within the (truncated) text. Clamp the
        // cut to a char boundary so slicing stays valid.
        let mut cut = cut.min(src.len());
        while cut > 0 && !src.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &src[..cut];
        match parse_schema(truncated) {
            Ok(_) | Err(SchemaError::Empty) => {}
            Err(SchemaError::Parse { line, column, .. }) => {
                let lines: Vec<&str> = truncated.split('\n').collect();
                prop_assert!(line >= 1 && line <= lines.len() + 1);
                prop_assert!(column >= 1);
            }
            Err(_) => {} // truncated rules may also fail validation
        }
    }
}
