use crate::Level;

/// One surveyed system's vocabulary at each architecture level —
/// a row group of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemModel {
    name: &'static str,
    reference: &'static str,
    level1: &'static [&'static str],
    level2: &'static [&'static str],
    level3: &'static [&'static str],
    level4: &'static [&'static str],
}

impl SystemModel {
    /// The system's name as the paper uses it.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Citation note (venue/institution).
    pub fn reference(&self) -> &'static str {
        self.reference
    }

    /// The object names the system uses at `level`.
    pub fn objects_at(&self, level: Level) -> &'static [&'static str] {
        match level {
            Level::One => self.level1,
            Level::Two => self.level2,
            Level::Three => self.level3,
            Level::Four => self.level4,
        }
    }
}

/// The six systems of Table I, in the paper's column order.
pub fn surveyed_systems() -> Vec<SystemModel> {
    vec![
        SystemModel {
            name: "RoadMap Model",
            reference: "Philips Research (van den Hamer & Treffers, ICCAD'91)",
            level1: &["FlowType (Tool)", "Pin (PinType)", "Port (DataType)"],
            level2: &["Flow", "InSlot", "OutSlot", "FlowHierarchy"],
            level3: &["Run", "Representation", "RepUsage"],
            level4: &["Representation File Group"],
        },
        SystemModel {
            name: "ELSIS",
            reference: "Delft University (ten Bosch, Bingley & van der Wolf, DAC'91)",
            level1: &["Tool", "Task"],
            level2: &["PortInst", "Channel", "Task"],
            level3: &["ActivityRun", "Transaction"],
            level4: &["Design Object"],
        },
        SystemModel {
            name: "Hercules",
            reference: "Carnegie Mellon / Notre Dame (Sutton, Brockman & Director, DAC'93)",
            level1: &["FlowGraph", "Entity", "Task Templates"],
            level2: &["Node", "Arc", "Design Tasks"],
            level3: &[
                "Run",
                "Entity Instance",
                "Instance Dependency",
                "Schedule",
                "Schedule Node",
            ],
            level4: &["Cyclops Data Object"],
        },
        SystemModel {
            name: "History Model",
            reference: "UC Berkeley (Chiueh & Katz, ICCAD'90)",
            level1: &["Activity", "Tool Dependency", "Data Dependency"],
            level2: &["Design Activity"],
            level3: &["Design Process"],
            level4: &["Data Object"],
        },
        SystemModel {
            name: "Hilda",
            reference: "Siemens Research (Bretschneider, Kopf & Lagger, ICCAD'90)",
            level1: &["Transitions", "Places", "Arcs"],
            level2: &["Patterns (Reusable)"],
            level3: &["Tokens", "Transitions", "Places"],
            level4: &["Tokens", "Places"],
        },
        SystemModel {
            name: "VOV",
            reference: "UC Berkeley (Casotto & Sangiovanni-Vincentelli, TCAD'93)",
            level1: &["(none: no a-priori flow)"],
            level2: &["Trace"],
            level3: &["Trace Transaction"],
            level4: &["Data Object"],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_systems_in_paper_order() {
        let systems = surveyed_systems();
        let names: Vec<&str> = systems.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "RoadMap Model",
                "ELSIS",
                "Hercules",
                "History Model",
                "Hilda",
                "VOV"
            ]
        );
    }

    #[test]
    fn every_system_covers_every_level() {
        for system in surveyed_systems() {
            for level in Level::ALL {
                assert!(
                    !system.objects_at(level).is_empty(),
                    "{} has no objects at {level}",
                    system.name()
                );
            }
            assert!(!system.reference().is_empty());
        }
    }

    #[test]
    fn hercules_level3_includes_schedule_objects() {
        // The paper's contribution: schedule data mirrored into Level 3.
        let systems = surveyed_systems();
        let hercules = systems.iter().find(|s| s.name() == "Hercules").unwrap();
        let level3 = hercules.objects_at(Level::Three);
        assert!(level3.contains(&"Schedule"));
        assert!(level3.contains(&"Run"));
    }

    #[test]
    fn vov_has_no_apriori_flow() {
        let systems = surveyed_systems();
        let vov = systems.iter().find(|s| s.name() == "VOV").unwrap();
        assert!(vov.objects_at(Level::One)[0].contains("no a-priori"));
    }
}
