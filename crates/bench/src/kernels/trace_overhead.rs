//! B11 — tracing overhead on the hot paths: the B2 (plan) and B9
//! (incremental replan) bodies measured with the collector disabled,
//! enabled, and enabled-with-export.
//!
//! The observability contract (DESIGN.md §9): instrumentation must be
//! effectively free when the collector is off (one relaxed atomic load
//! per site) and cheap enough when on that tracing a planning session
//! is always acceptable — the budget is **< 2× the disabled median**
//! for the `enabled` variants. The `exporting` variants additionally
//! drain the buffers and serialize JSONL every 64 iterations, putting
//! an upper bound on "trace continuously, ship everything".
//!
//! Bodies:
//!
//! * `plan_*` — B2's body: a fresh 50-stage pipeline planned from
//!   scratch (schedule-instance creation + CPM + levelling), one
//!   `hercules.plan` span + cache-miss event + metrics per call.
//! * `replan_*` — B9's manager-level body: repeated replans of an
//!   unchanged 50-stage scope, served by the incremental engine's
//!   cache (one `hercules.replan` + `hercules.plan` span pair, a
//!   `plan.cache_hit` event, and the metrics updates per call).
//!
//! The three variants share sampling plans and sizes, so the ratios
//! `enabled/disabled` and `exporting/disabled` can be read straight
//! off `BENCH_schedflow.json` (see the B11 rows in EXPERIMENTS.md).

use harness::bench::Record;
use obs::export::{to_jsonl, Timebase};

use crate::pipeline_manager;

const STAGES: usize = 50;

/// How often the `enabled` variants drain the thread buffers: often
/// enough to keep memory bounded, rarely enough that the per-call cost
/// reflects recording, not draining.
const DRAIN_EVERY: u32 = 256;

/// How often the `exporting` variants drain **and** serialize JSONL.
const EXPORT_EVERY: u32 = 64;

/// Runs the kernel; `quick` selects the smoke-test sampling plan.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("trace_overhead", quick);
    let target = format!("d{STAGES}");

    // -- B2 body: plan from scratch --------------------------------------
    suite.bench_with_setup(
        &format!("plan_disabled/{STAGES}"),
        Some(STAGES as u64),
        || pipeline_manager(STAGES, 4, 1),
        |mut h| h.plan(&target).expect("plannable").project_finish(),
    );
    {
        let session = obs::Collector::session();
        let mut calls = 0u32;
        suite.bench_with_setup(
            &format!("plan_enabled/{STAGES}"),
            Some(STAGES as u64),
            || pipeline_manager(STAGES, 4, 1),
            |mut h| {
                let finish = h.plan(&target).expect("plannable").project_finish();
                calls += 1;
                if calls.is_multiple_of(DRAIN_EVERY) {
                    drop(session.drain_partial());
                }
                finish
            },
        );
        drop(session.finish());
    }
    {
        let session = obs::Collector::session();
        let mut calls = 0u32;
        suite.bench_with_setup(
            &format!("plan_exporting/{STAGES}"),
            Some(STAGES as u64),
            || pipeline_manager(STAGES, 4, 1),
            |mut h| {
                let finish = h.plan(&target).expect("plannable").project_finish();
                calls += 1;
                if calls.is_multiple_of(EXPORT_EVERY) {
                    let trace = session.drain_partial();
                    std::hint::black_box(to_jsonl(&trace, Timebase::Wall));
                }
                finish
            },
        );
        drop(session.finish());
    }

    // -- B9 body: incremental replan of an unchanged scope ----------------
    let mut h = pipeline_manager(STAGES, 4, 1);
    h.plan(&target).expect("plannable");
    suite.bench(
        &format!("replan_disabled/{STAGES}"),
        Some(STAGES as u64),
        || h.replan(&target).expect("replannable").project_finish,
    );
    {
        let session = obs::Collector::session();
        let mut calls = 0u32;
        suite.bench(
            &format!("replan_enabled/{STAGES}"),
            Some(STAGES as u64),
            || {
                let finish = h.replan(&target).expect("replannable").project_finish;
                calls += 1;
                if calls.is_multiple_of(DRAIN_EVERY) {
                    drop(session.drain_partial());
                }
                finish
            },
        );
        drop(session.finish());
    }
    {
        let session = obs::Collector::session();
        let mut calls = 0u32;
        suite.bench(
            &format!("replan_exporting/{STAGES}"),
            Some(STAGES as u64),
            || {
                let finish = h.replan(&target).expect("replannable").project_finish;
                calls += 1;
                if calls.is_multiple_of(EXPORT_EVERY) {
                    let trace = session.drain_partial();
                    std::hint::black_box(to_jsonl(&trace, Timebase::Wall));
                }
                finish
            },
        );
        drop(session.finish());
    }
    suite.into_records()
}
