//! Regenerates **Fig. 8**: the Hercules user interface — the task
//! graph with schedule operations, and the Gantt chart showing planned
//! versus accomplished work.

use bench::asic_manager;
use schedule::gantt::GanttOptions;

fn main() {
    let mut h = asic_manager(3, 5);
    h.plan("signoff_report").expect("plannable");
    // Execute the front half, leaving the back half planned-only, so
    // the chart shows done, in-flight, and future work like the figure.
    h.execute("placed_db").expect("executable");

    println!("Task graph (schedule operations apply at each node):\n");
    let tree = h.extract_task_tree("signoff_report").expect("known target");
    for activity in tree.activities() {
        let state = h
            .status()
            .row(activity)
            .map(|r| r.state.to_string())
            .unwrap_or_default();
        println!(
            "  ({activity:<12}) -> [{:<14}]  {state}",
            tree.output_of(activity)
        );
    }

    println!("\nGantt chart (planned ░/= vs accomplished █/#, ! = slip):\n");
    let status = h.status();
    print!(
        "{}",
        status.gantt(&GanttOptions {
            ascii: true,
            width: 72,
            label_width: 14,
            ..GanttOptions::default()
        })
    );
    println!("\nVariance summary: {}", status.variance());
}
