//! Ergonomic construction of flow graphs from string keys.
//!
//! Flow models are usually written down by name ("simulate depends on
//! netlist and stimuli"), not by node id. [`DagBuilder`] maps names to
//! ids on first use and lets callers declare edges directly between
//! names.
//!
//! ```
//! use flowgraph::builder::DagBuilder;
//!
//! # fn main() -> Result<(), flowgraph::GraphError> {
//! let mut b = DagBuilder::new();
//! b.edge("netlist", "simulate")?;
//! b.edge("stimuli", "simulate")?;
//! let (dag, names) = b.finish();
//! assert_eq!(dag.node_count(), 3);
//! assert_eq!(dag.node_weight(names["simulate"]), Some(&"simulate".to_string()));
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::dag::{Dag, NodeId};
use crate::error::GraphError;

/// Builds a [`Dag`] keyed by string names.
///
/// Node weights are the names themselves; edge weights are `()`. Use the
/// returned name map to translate back to ids after
/// [`finish`](DagBuilder::finish).
#[derive(Debug, Clone, Default)]
pub struct DagBuilder {
    dag: Dag<String, ()>,
    names: HashMap<String, NodeId>,
}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, inserting a fresh node on first use.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = self.dag.add_node(name.to_owned());
        self.names.insert(name.to_owned(), id);
        id
    }

    /// Declares the dependency `from -> to`, creating nodes as needed.
    /// Duplicate declarations are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::WouldCycle`] if the edge would close a
    /// cycle, or [`GraphError::SelfLoop`] for `from == to`.
    pub fn edge(&mut self, from: &str, to: &str) -> Result<(), GraphError> {
        let f = self.node(from);
        let t = self.node(to);
        if self.dag.has_edge(f, t) {
            return Ok(());
        }
        self.dag.add_edge(f, t, ())?;
        Ok(())
    }

    /// Declares a chain of dependencies `names[0] -> names[1] -> ...`.
    ///
    /// # Errors
    ///
    /// Returns the first error from [`edge`](DagBuilder::edge).
    pub fn chain(&mut self, names: &[&str]) -> Result<(), GraphError> {
        for w in names.windows(2) {
            self.edge(w[0], w[1])?;
        }
        Ok(())
    }

    /// Number of nodes declared so far.
    pub fn node_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Consumes the builder, returning the graph and the name → id map.
    pub fn finish(self) -> (Dag<String, ()>, HashMap<String, NodeId>) {
        (self.dag, self.names)
    }
}

/// Generators for synthetic flow graphs used by benchmarks and tests.
pub mod generate {
    use super::*;

    /// A linear pipeline of `n` stages: `s0 -> s1 -> ... -> s{n-1}`.
    pub fn pipeline(n: usize) -> Dag<String, ()> {
        let mut b = DagBuilder::new();
        for i in 0..n {
            b.node(&format!("s{i}"));
        }
        for i in 1..n {
            b.edge(&format!("s{}", i - 1), &format!("s{i}"))
                .expect("pipeline edges are acyclic");
        }
        b.finish().0
    }

    /// A layered flow with `layers` layers of `width` nodes each; every
    /// node depends on `fanin` nodes of the previous layer (wrapping).
    ///
    /// This approximates the shape of real design flows: broad parallel
    /// activities (per-block synthesis, per-corner simulation) with
    /// converging integration steps.
    pub fn layered(layers: usize, width: usize, fanin: usize) -> Dag<String, ()> {
        let mut b = DagBuilder::new();
        for l in 0..layers {
            for w in 0..width {
                b.node(&format!("l{l}w{w}"));
            }
        }
        for l in 1..layers {
            for w in 0..width {
                for k in 0..fanin.min(width) {
                    let src = format!("l{}w{}", l - 1, (w + k) % width);
                    let dst = format!("l{l}w{w}");
                    b.edge(&src, &dst).expect("layered edges are acyclic");
                }
            }
        }
        b.finish().0
    }

    /// A binary in-tree of the given `depth`: leaves feed pairwise into
    /// parents until a single root. Mirrors hierarchical assembly flows.
    pub fn reduction_tree(depth: usize) -> Dag<String, ()> {
        let mut b = DagBuilder::new();
        // Level 0 = leaves (2^depth), level `depth` = root.
        for level in 0..=depth {
            let count = 1usize << (depth - level);
            for i in 0..count {
                b.node(&format!("t{level}_{i}"));
            }
        }
        for level in 1..=depth {
            let count = 1usize << (depth - level);
            for i in 0..count {
                for c in 0..2 {
                    b.edge(
                        &format!("t{}_{}", level - 1, 2 * i + c),
                        &format!("t{level}_{i}"),
                    )
                    .expect("tree edges are acyclic");
                }
            }
        }
        b.finish().0
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use super::*;

    #[test]
    fn node_is_idempotent() {
        let mut b = DagBuilder::new();
        let a1 = b.node("a");
        let a2 = b.node("a");
        assert_eq!(a1, a2);
        assert_eq!(b.node_count(), 1);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut b = DagBuilder::new();
        b.edge("a", "b").unwrap();
        b.edge("a", "b").unwrap();
        let (dag, _) = b.finish();
        assert_eq!(dag.edge_count(), 1);
    }

    #[test]
    fn chain_builds_pipeline() {
        let mut b = DagBuilder::new();
        b.chain(&["a", "b", "c", "d"]).unwrap();
        let (dag, names) = b.finish();
        assert_eq!(dag.edge_count(), 3);
        assert!(dag.reaches(names["a"], names["d"]));
    }

    #[test]
    fn builder_rejects_cycle() {
        let mut b = DagBuilder::new();
        b.chain(&["a", "b", "c"]).unwrap();
        assert!(b.edge("c", "a").is_err());
    }

    #[test]
    fn pipeline_shape() {
        let g = generate::pipeline(10);
        let s = g.stats().unwrap();
        assert_eq!(s.nodes, 10);
        assert_eq!(s.edges, 9);
        assert_eq!(s.depth, 9);
        assert_eq!(s.width, 1);
    }

    #[test]
    fn layered_shape() {
        let g = generate::layered(4, 5, 2);
        let s = g.stats().unwrap();
        assert_eq!(s.nodes, 20);
        assert_eq!(s.sources, 5);
        assert_eq!(s.sinks, 5);
        assert_eq!(s.depth, 3);
        assert_eq!(s.width, 5);
    }

    #[test]
    fn reduction_tree_shape() {
        let g = generate::reduction_tree(3);
        let s = g.stats().unwrap();
        assert_eq!(s.nodes, 8 + 4 + 2 + 1);
        assert_eq!(s.sources, 8);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.depth, 3);
    }

    #[test]
    fn pipeline_zero_and_one() {
        assert_eq!(generate::pipeline(0).node_count(), 0);
        let g = generate::pipeline(1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
