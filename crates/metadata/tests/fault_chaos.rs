//! The storage chaos suite: 64 fault-seeded sessions driven through
//! [`FaultVfs`] over [`MemVfs`], each ending in a crash or a plain
//! process exit, then recovered with no faults. The contract under
//! test is the durability tentpole's one-liner:
//!
//! > the store either serves correct data or reports corruption —
//! > never silently wrong, never aborting.
//!
//! Concretely, after every session, reopening the directory must
//! either
//!
//! * succeed with a state **byte-identical to some acknowledged
//!   prefix** of the session (the oracle records the database dump
//!   after every acknowledged mutation), or
//! * fail with a **typed** [`StoreError`], in which case `fsck` must
//!   scrub the directory, and — when a snapshot still loads — repair
//!   it back to a servable store whose state is again an acknowledged
//!   prefix.
//!
//! Any panic, any untyped error, and any recovered state that never
//! existed fails the sweep. A floor on fully-recovered sessions keeps
//! the suite honest (a pass where nothing ever recovers would test
//! nothing).

use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;

use metadata::fsck;
use metadata::{MetadataDb, PersistentStore, Store, StoreError};
use schedule::WorkDays;
use schema::examples;
use simtools::vfs::{FaultVfs, MemVfs, Vfs, VfsFaultPlan};

const SEEDS: u64 = 64;
const FAULT_RATE: f64 = 0.05;
const STEPS: usize = 40;

/// Everything one seeded session produced.
struct SessionOutcome {
    /// Dumps of every state the session acknowledged (including the
    /// initial one) — the oracle set.
    acknowledged: HashSet<String>,
    /// Faults actually injected by the plan.
    injected: u64,
}

/// Runs the scripted session over the faulty VFS. Every mutation's
/// `Ok` is an acknowledgement: its post-state joins the oracle set.
/// Errors must be typed `MetadataError`s — the type system guarantees
/// that; what the script adds is that *no call may panic*.
fn run_session(store: &mut PersistentStore, faulty: &FaultVfs) -> SessionOutcome {
    let mut acknowledged = HashSet::new();
    acknowledged.insert(store.db().dump());
    let ack = |store: &PersistentStore| store.db().dump();
    for step in 0..STEPS {
        let t = WorkDays::new(step as f64 * 0.25);
        match step % 8 {
            // Plan a unit of work (fresh handles every time — earlier
            // ones may be stale after a compact).
            0 | 3 => {
                let s = store.begin_planning(t);
                acknowledged.insert(ack(store));
                if let Ok(sc) = store.plan_activity(s, "Create", t, WorkDays::new(2.0)) {
                    acknowledged.insert(ack(store));
                    if store.assign(sc, "alice").is_ok() {
                        acknowledged.insert(ack(store));
                    }
                }
            }
            // Execute a run end to end.
            1 | 4 | 6 => {
                let data = store.store_data(&format!("v{step}.net"), vec![b'x'; 64]);
                acknowledged.insert(ack(store));
                if let Ok(run) = store.begin_run("Create", "alice", t) {
                    acknowledged.insert(ack(store));
                    if store
                        .finish_run(run, "netlist", data, t + WorkDays::new(0.5), &[])
                        .is_ok()
                    {
                        acknowledged.insert(ack(store));
                    }
                }
            }
            // Supply an external input.
            2 | 7 => {
                let data = store.store_data(&format!("in{step}.stim"), vec![b's'; 16]);
                acknowledged.insert(ack(store));
                if store.supply_input("stimuli", "bob", t, data).is_ok() {
                    acknowledged.insert(ack(store));
                }
            }
            // Periodic durability + maintenance. Both may fail under
            // faults; both must fail *typed*.
            5 => {
                let _ = store.checkpoint();
            }
            _ => {
                if store.compact().is_ok() {
                    acknowledged.insert(ack(store));
                }
            }
        }
    }
    SessionOutcome {
        acknowledged,
        injected: faulty.injected(),
    }
}

/// One seed's end-to-end story. Returns `(recovered, repaired,
/// injected)`; panics only on a contract violation.
fn run_seed(seed: u64) -> (bool, bool, u64) {
    let mem = MemVfs::new();
    let dir = Path::new("/proj");
    let db = MetadataDb::for_schema(&examples::circuit_design());
    // Create fault-free so every seed reaches the interesting part,
    // then run the session through the fault plan.
    drop(PersistentStore::create_on(mem.clone() as Arc<dyn Vfs>, dir, db).unwrap());
    let faulty = FaultVfs::new(mem.clone(), VfsFaultPlan::seeded(seed, FAULT_RATE));
    let outcome = match PersistentStore::open_on(faulty.clone() as Arc<dyn Vfs>, dir) {
        Ok(mut store) => {
            let outcome = run_session(&mut store, &faulty);
            drop(store);
            outcome
        }
        // Faulted reads during open are a typed failure; the store on
        // disk is still exactly the created state.
        Err(_) => SessionOutcome {
            acknowledged: {
                let mut s = HashSet::new();
                let reopened = PersistentStore::open_on(mem.clone() as Arc<dyn Vfs>, dir).unwrap();
                s.insert(reopened.db().dump());
                s
            },
            injected: faulty.injected(),
        },
    };
    // Half the seeds die by power cut (unsynced bytes vanish), half by
    // plain process exit (the page cache survives).
    if seed.is_multiple_of(2) {
        mem.crash();
    }
    // Recovery runs fault-free, as a restarted process would.
    let plain: Arc<dyn Vfs> = mem.clone();
    match PersistentStore::open_on(plain.clone(), dir) {
        Ok(store) => {
            let dump = store.db().dump();
            assert!(
                outcome.acknowledged.contains(&dump),
                "seed {seed}: recovered a state that was never acknowledged:\n{dump}"
            );
            store
                .db()
                .check_invariants()
                .unwrap_or_else(|e| panic!("seed {seed}: recovered state is inconsistent: {e:?}"));
            (true, false, outcome.injected)
        }
        Err(StoreError::Corruption(report)) => {
            // Typed refusal. fsck must be able to scrub it, and — when
            // a snapshot survives — repair back to a servable,
            // acknowledged state.
            let scrub = fsck::scrub(&*plain, dir)
                .unwrap_or_else(|e| panic!("seed {seed}: scrub failed on {report}: {e}"));
            assert!(!scrub.healthy, "seed {seed}: open refused a healthy store");
            if !scrub.repairable {
                return (false, false, outcome.injected);
            }
            match fsck::repair(&plain, dir) {
                Ok(_) => {}
                Err(e) => panic!("seed {seed}: repairable scrub but repair failed: {e}"),
            }
            let store = PersistentStore::open_on(plain, dir)
                .unwrap_or_else(|e| panic!("seed {seed}: repaired store does not open: {e}"));
            let dump = store.db().dump();
            assert!(
                outcome.acknowledged.contains(&dump),
                "seed {seed}: repair produced a state that was never acknowledged:\n{dump}"
            );
            store
                .db()
                .check_invariants()
                .unwrap_or_else(|e| panic!("seed {seed}: repaired state is inconsistent: {e:?}"));
            (true, true, outcome.injected)
        }
        Err(StoreError::Io { path, message }) => {
            panic!(
                "seed {seed}: recovery hit an untyped-looking I/O failure at {path:?}: {message}"
            )
        }
        Err(other) => panic!("seed {seed}: unexpected recovery error: {other}"),
    }
}

#[test]
fn sixty_four_fault_seeded_sessions_recover_or_report() {
    let mut recovered = 0u32;
    let mut repaired = 0u32;
    let mut injected_total = 0u64;
    for seed in 0..SEEDS {
        let (ok, fixed, injected) = run_seed(seed);
        recovered += u32::from(ok);
        repaired += u32::from(fixed);
        injected_total += injected;
    }
    println!(
        "fault sweep: {recovered}/{SEEDS} recovered ({repaired} via repair), \
         {injected_total} faults injected"
    );
    assert!(
        injected_total > SEEDS,
        "the plan must actually inject faults ({injected_total} across {SEEDS} seeds)"
    );
    assert!(
        recovered >= 40,
        "recovery floor: only {recovered}/{SEEDS} sessions ended servable"
    );
}

/// The same contract under a *hostile* rate: every other write fails.
/// Nothing may panic; every failure must be typed; recovery must still
/// never serve an unacknowledged state.
#[test]
fn hostile_fault_rate_never_panics_or_lies() {
    for seed in 100..116 {
        let mem = MemVfs::new();
        let dir = Path::new("/proj");
        let db = MetadataDb::for_schema(&examples::circuit_design());
        drop(PersistentStore::create_on(mem.clone() as Arc<dyn Vfs>, dir, db).unwrap());
        let faulty = FaultVfs::new(mem.clone(), VfsFaultPlan::seeded(seed, 0.5));
        let acknowledged = match PersistentStore::open_on(faulty.clone() as Arc<dyn Vfs>, dir) {
            Ok(mut store) => run_session(&mut store, &faulty).acknowledged,
            Err(_) => continue,
        };
        mem.crash();
        match PersistentStore::open_on(mem.clone() as Arc<dyn Vfs>, dir) {
            Ok(store) => assert!(
                acknowledged.contains(&store.db().dump()),
                "seed {seed}: unacknowledged state served"
            ),
            Err(StoreError::Corruption(_)) | Err(StoreError::Io { .. }) => {}
            Err(other) => panic!("seed {seed}: unexpected error class: {other}"),
        }
    }
}
