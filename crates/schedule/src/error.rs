use std::error::Error;
use std::fmt;

use crate::network::ActivityId;

/// Errors produced by schedule construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A duration was negative or not finite.
    InvalidDuration(f64),
    /// An activity id did not refer to an activity of this network.
    UnknownActivity(ActivityId),
    /// Adding the precedence would create a cycle.
    PrecedenceCycle {
        /// Predecessor of the rejected constraint.
        from: ActivityId,
        /// Successor of the rejected constraint.
        to: ActivityId,
    },
    /// Two activities share a name.
    DuplicateActivity(String),
    /// A resource demand exceeds the pool's total capacity, so no
    /// feasible schedule exists.
    InfeasibleDemand {
        /// The over-demanding activity.
        activity: ActivityId,
        /// The resource that cannot satisfy it.
        resource: String,
    },
    /// A resource name was not found in the pool.
    UnknownResource(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InvalidDuration(d) => {
                write!(f, "duration must be finite and non-negative, got {d}")
            }
            ScheduleError::UnknownActivity(id) => write!(f, "unknown activity {id}"),
            ScheduleError::PrecedenceCycle { from, to } => {
                write!(f, "precedence {from} -> {to} would create a cycle")
            }
            ScheduleError::DuplicateActivity(name) => {
                write!(f, "activity {name:?} already exists in the network")
            }
            ScheduleError::InfeasibleDemand { activity, resource } => write!(
                f,
                "activity {activity} demands more {resource:?} than the pool provides"
            ),
            ScheduleError::UnknownResource(name) => write!(f, "unknown resource {name:?}"),
        }
    }
}

impl Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = ScheduleError::InvalidDuration(-1.0);
        assert!(e.to_string().contains("-1"));
        let e = ScheduleError::UnknownResource("layout_team".into());
        assert!(e.to_string().contains("layout_team"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScheduleError>();
    }
}
