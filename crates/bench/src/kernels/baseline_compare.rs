//! B6 — integrated tracking vs the separate manual-PM baseline: the
//! tracking cost per event stream, plus (printed once) the staleness
//! and manual-entry comparison the paper's introduction argues from.
//!
//! Expected shape: integrated tracking has zero staleness and zero
//! manual entries at any meeting cadence; the manual baseline's mean
//! staleness is ~period/2 and its entry count equals the event count.

use baselines::{EventKind, FlowEvent, IntegratedTracker, ManualPm};
use harness::bench::Record;

use crate::asic_manager;

/// Event stream from actually executing the ASIC flow.
fn asic_events(seed: u64) -> Vec<FlowEvent> {
    let mut h = asic_manager(3, seed);
    h.plan("signoff_report").expect("plannable");
    let report = h.execute("signoff_report").expect("executable");
    let mut events = Vec::new();
    for exec in report.activities() {
        events.push(FlowEvent::new(
            exec.started.days(),
            exec.activity.clone(),
            EventKind::Started,
        ));
        events.push(FlowEvent::new(
            exec.finished.days(),
            exec.activity.clone(),
            EventKind::Finished,
        ));
    }
    events
}

/// Runs the kernel; `quick` selects the smoke-test plan and sizes.
pub fn run(quick: bool) -> Vec<Record> {
    let events = asic_events(5);

    // One-shot comparison table (captured by EXPERIMENTS.md); skipped
    // in quick mode to keep the smoke test's output terse.
    if !quick {
        println!("\ntracking comparison on a real ASIC-flow event stream:");
        println!("  {}", IntegratedTracker.track(&events));
        for period in [1.0, 5.0, 10.0] {
            println!(
                "  {} (meetings every {period}d)",
                ManualPm::new(period).track(&events)
            );
        }
    }

    let mut suite = super::suite("baseline_compare", quick);
    suite.iters_per_sample(16);
    let n = events.len() as u64;
    suite.bench(&format!("tracking_cost/integrated/{n}"), Some(n), || {
        IntegratedTracker.track(&events)
    });
    suite.bench(&format!("tracking_cost/manual_pm/{n}"), Some(n), || {
        ManualPm::new(5.0).track(&events)
    });
    suite.into_records()
}
