//! Plan-versus-actual variance analysis.
//!
//! Once schedule instances are linked to execution metadata, "if any
//! slip in the schedule occurs, the schedule plan updates automatically"
//! (§IV-C). This module quantifies those slips: per-activity variances
//! and an earned-value summary a project manager can read at any status
//! date.

use std::fmt;

use crate::network::WorkDays;

/// Planned versus actual dates for one activity at a status date.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityStatus {
    /// Activity label.
    pub name: String,
    /// Proposed start offset.
    pub planned_start: WorkDays,
    /// Proposed finish offset.
    pub planned_finish: WorkDays,
    /// Actual start, once work began.
    pub actual_start: Option<WorkDays>,
    /// Actual finish, once the designer declared completion.
    pub actual_finish: Option<WorkDays>,
}

impl ActivityStatus {
    /// Planned duration.
    pub fn planned_duration(&self) -> WorkDays {
        self.planned_finish.saturating_sub(self.planned_start)
    }

    /// Start variance in days (positive = started late). `None` until
    /// work begins.
    pub fn start_variance(&self) -> Option<f64> {
        self.actual_start
            .map(|s| s.days() - self.planned_start.days())
    }

    /// Finish variance in days (positive = finished late). `None` until
    /// complete.
    pub fn finish_variance(&self) -> Option<f64> {
        self.actual_finish
            .map(|f| f.days() - self.planned_finish.days())
    }

    /// Whether the activity finished later than planned.
    pub fn slipped(&self) -> bool {
        self.finish_variance().is_some_and(|v| v > 1e-9)
    }
}

/// Earned-value style summary over a set of activities at a status
/// date.
///
/// Values are duration-weighted (each activity is "worth" its planned
/// duration):
///
/// * **planned value (PV)** — planned duration of work scheduled to
///   have finished by the status date (pro-rated for in-window spans);
/// * **earned value (EV)** — planned duration of work actually
///   completed by the status date;
/// * **schedule variance (SV = EV − PV)** and the **schedule
///   performance index (SPI = EV / PV)**.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarianceSummary {
    /// Planned value at the status date, in days of work.
    pub planned_value: f64,
    /// Earned value at the status date, in days of work.
    pub earned_value: f64,
    /// `earned_value - planned_value` (negative = behind schedule).
    pub schedule_variance: f64,
    /// `earned_value / planned_value`; 1.0 when exactly on plan, `1.0`
    /// also when nothing was planned yet.
    pub spi: f64,
    /// Number of activities that finished later than planned.
    pub slipped_activities: usize,
    /// Largest finish variance observed, in days.
    pub worst_slip: f64,
}

impl fmt::Display for VarianceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PV {:.1}d, EV {:.1}d, SV {:+.1}d, SPI {:.2}, {} slipped (worst {:+.1}d)",
            self.planned_value,
            self.earned_value,
            self.schedule_variance,
            self.spi,
            self.slipped_activities,
            self.worst_slip
        )
    }
}

/// Computes the variance summary at `status_date`.
///
/// # Example
///
/// ```
/// use schedule::variance::{summarize, ActivityStatus};
/// use schedule::WorkDays;
///
/// let rows = vec![ActivityStatus {
///     name: "Create".into(),
///     planned_start: WorkDays::ZERO,
///     planned_finish: WorkDays::new(2.0),
///     actual_start: Some(WorkDays::ZERO),
///     actual_finish: Some(WorkDays::new(3.0)), // one day late
/// }];
/// let s = summarize(&rows, WorkDays::new(5.0));
/// assert_eq!(s.slipped_activities, 1);
/// assert_eq!(s.worst_slip, 1.0);
/// ```
pub fn summarize(rows: &[ActivityStatus], status_date: WorkDays) -> VarianceSummary {
    let now = status_date.days();
    let mut pv = 0.0;
    let mut ev = 0.0;
    let mut slipped = 0usize;
    let mut worst = 0.0f64;
    for row in rows {
        let planned = row.planned_duration().days();
        // PV: fraction of the planned span elapsed by the status date.
        let (ps, pf) = (row.planned_start.days(), row.planned_finish.days());
        if now >= pf {
            pv += planned;
        } else if now > ps && pf > ps {
            pv += planned * (now - ps) / (pf - ps);
        }
        // EV: completed work earns its full planned duration; work in
        // progress earns nothing until the designer declares completion
        // (completion is a designer decision in the paper's model, so
        // partial credit would be speculation).
        if row.actual_finish.is_some_and(|f| f.days() <= now) {
            ev += planned;
        }
        if row.slipped() {
            slipped += 1;
        }
        if let Some(v) = row.finish_variance() {
            worst = worst.max(v);
        }
    }
    VarianceSummary {
        planned_value: pv,
        earned_value: ev,
        schedule_variance: ev - pv,
        spi: if pv > 0.0 { ev / pv } else { 1.0 },
        slipped_activities: slipped,
        worst_slip: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, ps: f64, pf: f64, actual: Option<(f64, f64)>) -> ActivityStatus {
        ActivityStatus {
            name: name.into(),
            planned_start: WorkDays::new(ps),
            planned_finish: WorkDays::new(pf),
            actual_start: actual.map(|(s, _)| WorkDays::new(s)),
            actual_finish: actual.map(|(_, f)| WorkDays::new(f)),
        }
    }

    #[test]
    fn on_plan_project_has_spi_one() {
        let rows = vec![
            row("a", 0.0, 2.0, Some((0.0, 2.0))),
            row("b", 2.0, 5.0, Some((2.0, 5.0))),
        ];
        let s = summarize(&rows, WorkDays::new(5.0));
        assert_eq!(s.planned_value, 5.0);
        assert_eq!(s.earned_value, 5.0);
        assert_eq!(s.schedule_variance, 0.0);
        assert_eq!(s.spi, 1.0);
        assert_eq!(s.slipped_activities, 0);
    }

    #[test]
    fn late_work_lowers_spi() {
        let rows = vec![
            row("a", 0.0, 2.0, Some((0.0, 4.0))), // finished 2d late
            row("b", 2.0, 5.0, None),             // not even started
        ];
        let s = summarize(&rows, WorkDays::new(5.0));
        assert_eq!(s.planned_value, 5.0);
        assert_eq!(s.earned_value, 2.0);
        assert!(s.spi < 0.5);
        assert_eq!(s.slipped_activities, 1);
        assert_eq!(s.worst_slip, 2.0);
    }

    #[test]
    fn midway_status_prorates_pv() {
        let rows = vec![row("a", 0.0, 4.0, None)];
        let s = summarize(&rows, WorkDays::new(2.0));
        assert_eq!(s.planned_value, 2.0);
        assert_eq!(s.earned_value, 0.0);
    }

    #[test]
    fn before_start_nothing_planned() {
        let rows = vec![row("a", 3.0, 6.0, None)];
        let s = summarize(&rows, WorkDays::new(1.0));
        assert_eq!(s.planned_value, 0.0);
        assert_eq!(s.spi, 1.0);
    }

    #[test]
    fn completion_after_status_date_not_earned_yet() {
        let rows = vec![row("a", 0.0, 2.0, Some((0.0, 6.0)))];
        let s = summarize(&rows, WorkDays::new(4.0));
        assert_eq!(s.earned_value, 0.0);
        // Still counted as slipped: its recorded finish is late.
        assert_eq!(s.slipped_activities, 1);
    }

    #[test]
    fn status_accessors() {
        let r = row("a", 1.0, 3.0, Some((2.0, 5.0)));
        assert_eq!(r.planned_duration(), WorkDays::new(2.0));
        assert_eq!(r.start_variance(), Some(1.0));
        assert_eq!(r.finish_variance(), Some(2.0));
        assert!(r.slipped());
        let unstarted = row("b", 0.0, 1.0, None);
        assert_eq!(unstarted.start_variance(), None);
        assert!(!unstarted.slipped());
    }

    #[test]
    fn summary_display_mentions_spi() {
        let s = summarize(&[row("a", 0.0, 1.0, Some((0.0, 1.0)))], WorkDays::new(1.0));
        assert!(s.to_string().contains("SPI"));
    }
}
