//! PERT three-point estimation.
//!
//! PERT (the paper cites Stilian's 1962 text) models each activity
//! duration as a beta-distributed random variable summarised by three
//! designer estimates: optimistic `a`, most likely `m`, pessimistic
//! `b`. The classic approximations are
//!
//! ```text
//! mean     = (a + 4m + b) / 6
//! variance = ((b - a) / 6)^2
//! ```
//!
//! Summing means and variances along the critical path and applying the
//! central limit theorem gives the probability of finishing by a given
//! date.

use crate::cpm::CpmAnalysis;
use crate::error::ScheduleError;
use crate::network::{ActivityId, ScheduleNetwork, WorkDays};

/// A three-point (optimistic / most-likely / pessimistic) estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreePoint {
    /// Optimistic duration in days (`a`).
    pub optimistic: f64,
    /// Most likely duration in days (`m`).
    pub most_likely: f64,
    /// Pessimistic duration in days (`b`).
    pub pessimistic: f64,
}

impl ThreePoint {
    /// Creates an estimate.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InvalidDuration`] if any value is negative or
    /// non-finite, or if the ordering `a <= m <= b` is violated.
    pub fn new(optimistic: f64, most_likely: f64, pessimistic: f64) -> Result<Self, ScheduleError> {
        for v in [optimistic, most_likely, pessimistic] {
            if !v.is_finite() || v < 0.0 {
                return Err(ScheduleError::InvalidDuration(v));
            }
        }
        if optimistic > most_likely || most_likely > pessimistic {
            return Err(ScheduleError::InvalidDuration(most_likely));
        }
        Ok(ThreePoint {
            optimistic,
            most_likely,
            pessimistic,
        })
    }

    /// The PERT expected duration `(a + 4m + b) / 6`.
    pub fn mean(self) -> WorkDays {
        WorkDays::new((self.optimistic + 4.0 * self.most_likely + self.pessimistic) / 6.0)
    }

    /// The PERT variance `((b - a) / 6)^2`, in days squared.
    pub fn variance(self) -> f64 {
        let d = (self.pessimistic - self.optimistic) / 6.0;
        d * d
    }
}

/// Probability estimate for completing a PERT network by a deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionEstimate {
    /// Expected project duration (sum of critical-path means).
    pub expected: WorkDays,
    /// Standard deviation of the critical path, in days.
    pub std_dev: f64,
    /// Probability the project finishes by the queried deadline.
    pub probability: f64,
}

/// Builds a [`ScheduleNetwork`] whose durations are the PERT means of
/// `estimates`, then reports the probability of finishing within
/// `deadline` using the normal approximation along the critical path.
///
/// `estimates` pairs each activity id of `network` with its three-point
/// estimate; activities without an estimate keep their deterministic
/// duration and contribute zero variance.
///
/// # Errors
///
/// [`ScheduleError::UnknownActivity`] if an estimate names a foreign
/// activity.
///
/// # Example
///
/// ```
/// use schedule::{pert, ScheduleNetwork, WorkDays};
///
/// # fn main() -> Result<(), schedule::ScheduleError> {
/// let mut net = ScheduleNetwork::new();
/// let a = net.add_activity("layout", WorkDays::new(10.0))?;
/// let est = vec![(a, pert::ThreePoint::new(6.0, 10.0, 20.0)?)];
/// let report = pert::completion_probability(&net, &est, WorkDays::new(12.0))?;
/// assert!(report.probability > 0.5); // deadline above the ~11d mean
/// # Ok(())
/// # }
/// ```
pub fn completion_probability(
    network: &ScheduleNetwork,
    estimates: &[(ActivityId, ThreePoint)],
    deadline: WorkDays,
) -> Result<CompletionEstimate, ScheduleError> {
    let mut pert_net = network.clone();
    for (id, est) in estimates {
        pert_net.set_duration(*id, est.mean())?;
    }
    let cpm: CpmAnalysis = pert_net.analyze()?;
    let critical = cpm.critical_path();
    let variance: f64 = estimates
        .iter()
        .filter(|(id, _)| critical.contains(id))
        .map(|(_, est)| est.variance())
        .sum();
    let expected = cpm.project_duration();
    let std_dev = variance.sqrt();
    let probability = if std_dev == 0.0 {
        if deadline.days() >= expected.days() {
            1.0
        } else {
            0.0
        }
    } else {
        let z = (deadline.days() - expected.days()) / std_dev;
        normal_cdf(z)
    };
    Ok(CompletionEstimate {
        expected,
        std_dev,
        probability,
    })
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 `erf`
/// approximation (max absolute error ~1.5e-7, ample for planning).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_point_mean_and_variance() {
        let e = ThreePoint::new(2.0, 5.0, 14.0).unwrap();
        assert!((e.mean().days() - 6.0).abs() < 1e-9);
        assert!((e.variance() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn three_point_validation() {
        assert!(ThreePoint::new(-1.0, 2.0, 3.0).is_err());
        assert!(ThreePoint::new(3.0, 2.0, 4.0).is_err());
        assert!(ThreePoint::new(1.0, 2.0, f64::NAN).is_err());
        assert!(ThreePoint::new(2.0, 2.0, 2.0).is_ok());
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-4);
        assert!((normal_cdf(-1.0) - 0.158_655_3).abs() < 1e-4);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn deterministic_network_steps_at_deadline() {
        let mut net = ScheduleNetwork::new();
        net.add_activity("a", WorkDays::new(5.0)).unwrap();
        let r = completion_probability(&net, &[], WorkDays::new(4.0)).unwrap();
        assert_eq!(r.probability, 0.0);
        let r = completion_probability(&net, &[], WorkDays::new(5.0)).unwrap();
        assert_eq!(r.probability, 1.0);
        assert_eq!(r.std_dev, 0.0);
    }

    #[test]
    fn probability_at_mean_is_half() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(1.0)).unwrap();
        let est = vec![(a, ThreePoint::new(2.0, 5.0, 8.0).unwrap())];
        let r = completion_probability(&net, &est, WorkDays::new(5.0)).unwrap();
        assert_eq!(r.expected, WorkDays::new(5.0));
        assert!((r.probability - 0.5).abs() < 1e-6);
    }

    #[test]
    fn chain_variances_accumulate() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(1.0)).unwrap();
        let b = net.add_activity("b", WorkDays::new(1.0)).unwrap();
        net.add_precedence(a, b).unwrap();
        let est = vec![
            (a, ThreePoint::new(2.0, 5.0, 8.0).unwrap()),
            (b, ThreePoint::new(2.0, 5.0, 8.0).unwrap()),
        ];
        let r = completion_probability(&net, &est, WorkDays::new(10.0)).unwrap();
        assert_eq!(r.expected, WorkDays::new(10.0));
        assert!((r.std_dev - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn off_critical_variance_ignored() {
        let mut net = ScheduleNetwork::new();
        let long = net.add_activity("long", WorkDays::new(10.0)).unwrap();
        let short = net.add_activity("short", WorkDays::new(1.0)).unwrap();
        let est = vec![(short, ThreePoint::new(0.5, 1.0, 1.5).unwrap())];
        let r = completion_probability(&net, &est, WorkDays::new(10.0)).unwrap();
        let _ = long;
        // `short` is off the critical path, so variance stays zero.
        assert_eq!(r.std_dev, 0.0);
        assert_eq!(r.probability, 1.0);
    }

    #[test]
    fn unknown_activity_rejected() {
        let net = ScheduleNetwork::new();
        let mut other = ScheduleNetwork::new();
        let foreign = other.add_activity("x", WorkDays::new(1.0)).unwrap();
        let est = vec![(foreign, ThreePoint::new(1.0, 1.0, 1.0).unwrap())];
        assert!(completion_probability(&net, &est, WorkDays::new(1.0)).is_err());
    }
}
