//! Deterministic fault injection for the tool substrate.
//!
//! Real CAD flows are not fault-free: licenses drop, machines reboot
//! mid-run, batch tools hang on pathological inputs, and disks hand
//! back corrupted result files. A [`FaultPlan`] layers those failure
//! modes *deterministically* over any [`ToolModel`](crate::ToolModel):
//! the decision for a given `(plan seed, tool, invocation, attempt)`
//! tuple is a pure function, so a chaos run is bit-reproducible from
//! its seed — the property the chaos CI stage and `herc chaos --seed N`
//! rely on.
//!
//! Fault taxonomy:
//!
//! * **Transient** — the run dies partway through (crash, lost
//!   license). A retry of the same attempt may succeed.
//! * **Hang** — the run never finishes; the execution engine kills it
//!   at its timeout and charges the full timeout budget.
//! * **Corrupt** — the run "finishes" but its output bytes are
//!   garbage; the designer notices and must rerun.
//! * **Persistent** — the tool is broken for the whole project
//!   (installation rot); every attempt fails until the operator marks
//!   the activity blocked and replans around it.
//!
//! # Example
//!
//! ```
//! use simtools::{FaultPlan, ToolInvocation, ToolLibrary};
//!
//! let plan = FaultPlan::seeded(7);
//! let lib = ToolLibrary::standard();
//! let req = ToolInvocation { input_bytes: 0, iteration: 1, seed: 1 };
//! let a = lib.invoke_with_faults("simulator", &req, &plan, 1);
//! let b = lib.invoke_with_faults("simulator", &req, &plan, 1);
//! assert_eq!(a, b); // bit-reproducible per seed
//! ```

use crate::model::{ToolInvocation, ToolOutcome};
use crate::rng::{hash_str, mix, SplitMix64};

/// One injected failure mode observed by a single tool attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InjectedFault {
    /// The run crashed partway through; a retry may succeed.
    Transient,
    /// The run hung; the caller kills it at its timeout budget.
    Hang,
    /// The run produced corrupted output bytes.
    CorruptOutput,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InjectedFault::Transient => "transient",
            InjectedFault::Hang => "hang",
            InjectedFault::CorruptOutput => "corrupt-output",
        };
        write!(f, "{s}")
    }
}

/// A seeded, deterministic plan of which tool attempts fail and how.
///
/// Composable with any [`ToolModel`](crate::ToolModel): the plan only
/// decides *whether and how* an attempt fails; durations and
/// convergence still come from the model. [`FaultPlan::none`] injects
/// nothing, so fault-aware code paths cost nothing in the fault-free
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    hang_rate: f64,
    corrupt_rate: f64,
    persistent_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that never injects anything (the fault-free substrate).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transient_rate: 0.0,
            hang_rate: 0.0,
            corrupt_rate: 0.0,
            persistent_rate: 0.0,
        }
    }

    /// A plan with moderate default rates — the configuration the chaos
    /// suite drives: 10% transient, 3% hang, 4% corrupt per attempt,
    /// and a 5% chance that any given tool is persistently broken.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.10,
            hang_rate: 0.03,
            corrupt_rate: 0.04,
            persistent_rate: 0.05,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns `true` if the plan can never inject a fault.
    pub fn is_none(&self) -> bool {
        self.transient_rate == 0.0
            && self.hang_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.persistent_rate == 0.0
    }

    /// Per-attempt probability of a transient crash.
    #[must_use]
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Per-attempt probability of a hang.
    #[must_use]
    pub fn with_hang_rate(mut self, rate: f64) -> Self {
        self.hang_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Per-attempt probability of corrupted output.
    #[must_use]
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Per-tool probability that the tool is persistently broken.
    #[must_use]
    pub fn with_persistent_rate(mut self, rate: f64) -> Self {
        self.persistent_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Marks exactly the named tool as persistently broken (rate-free
    /// deterministic injection for targeted tests): implemented as a
    /// plan whose persistent decision is forced for `tool`.
    #[must_use]
    pub fn breaking_tool(tool: &str) -> BrokenToolPlan {
        BrokenToolPlan {
            inner: FaultPlan::none(),
            tool: tool.to_owned(),
        }
    }

    /// Whether `tool` is persistently broken under this plan — a pure
    /// function of `(plan seed, tool name)`, so the whole project
    /// agrees on the verdict across attempts and iterations.
    pub fn is_persistent(&self, tool: &str) -> bool {
        if self.persistent_rate <= 0.0 {
            return false;
        }
        let mut rng = SplitMix64::new(mix(&[self.seed, 0xBADD_B007, hash_str(tool)]));
        rng.next_f64() < self.persistent_rate
    }

    /// The fault (if any) injected into one attempt of one invocation.
    ///
    /// Persistently broken tools always fail: the first attempts
    /// surface as [`InjectedFault::Transient`] (indistinguishable from
    /// bad luck, as in real flows) until the caller's retry budget
    /// classifies the tool as broken.
    pub fn decide(&self, tool: &str, req: &ToolInvocation, attempt: u32) -> Option<InjectedFault> {
        let mut rng = SplitMix64::new(mix(&[
            self.seed,
            hash_str(tool),
            req.seed,
            u64::from(req.iteration),
            u64::from(attempt),
        ]));
        if self.is_persistent(tool) {
            // Broken tools alternate crash/hang deterministically.
            return Some(if rng.next_f64() < 0.5 {
                InjectedFault::Transient
            } else {
                InjectedFault::Hang
            });
        }
        let draw = rng.next_f64();
        if draw < self.transient_rate {
            Some(InjectedFault::Transient)
        } else if draw < self.transient_rate + self.hang_rate {
            Some(InjectedFault::Hang)
        } else if draw < self.transient_rate + self.hang_rate + self.corrupt_rate {
            Some(InjectedFault::CorruptOutput)
        } else {
            None
        }
    }

    /// Fraction of a run's nominal duration consumed before a transient
    /// crash is noticed — deterministic in the same tuple as
    /// [`decide`](FaultPlan::decide).
    pub fn crash_fraction(&self, tool: &str, req: &ToolInvocation, attempt: u32) -> f64 {
        let mut rng = SplitMix64::new(mix(&[
            self.seed,
            0xC4A5_4F4A,
            hash_str(tool),
            req.seed,
            u64::from(req.iteration),
            u64::from(attempt),
        ]));
        // Between 10% and 90% of the run elapses before the crash.
        0.1 + 0.8 * rng.next_f64()
    }
}

/// A [`FaultPlan`]-shaped plan that persistently breaks exactly one
/// named tool and injects nothing else — see
/// [`FaultPlan::breaking_tool`].
#[derive(Debug, Clone, PartialEq)]
pub struct BrokenToolPlan {
    inner: FaultPlan,
    tool: String,
}

impl BrokenToolPlan {
    /// Converts to a trait object-free decision: same surface as
    /// [`FaultPlan::decide`].
    pub fn decide(&self, tool: &str, req: &ToolInvocation, attempt: u32) -> Option<InjectedFault> {
        if tool == self.tool {
            // Deterministic alternation keeps replays stable.
            Some(
                if (u64::from(req.iteration) + u64::from(attempt)) % 2 == 0 {
                    InjectedFault::Hang
                } else {
                    InjectedFault::Transient
                },
            )
        } else {
            self.inner.decide(tool, req, attempt)
        }
    }

    /// Whether `tool` is persistently broken.
    pub fn is_persistent(&self, tool: &str) -> bool {
        tool == self.tool
    }
}

impl From<BrokenToolPlan> for FaultInjector {
    fn from(p: BrokenToolPlan) -> Self {
        FaultInjector::Broken(p)
    }
}

impl From<FaultPlan> for FaultInjector {
    fn from(p: FaultPlan) -> Self {
        FaultInjector::Plan(p)
    }
}

impl From<&BrokenToolPlan> for FaultInjector {
    fn from(p: &BrokenToolPlan) -> Self {
        FaultInjector::Broken(p.clone())
    }
}

impl From<&FaultPlan> for FaultInjector {
    fn from(p: &FaultPlan) -> Self {
        FaultInjector::Plan(p.clone())
    }
}

impl From<&FaultInjector> for FaultInjector {
    fn from(p: &FaultInjector) -> Self {
        p.clone()
    }
}

/// Either fault source, so callers can hold "a fault policy" without
/// generics: a rate-driven [`FaultPlan`] or a targeted
/// [`BrokenToolPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultInjector {
    /// Rate-driven seeded plan.
    Plan(FaultPlan),
    /// Exactly one tool broken.
    Broken(BrokenToolPlan),
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::Plan(FaultPlan::none())
    }
}

impl FaultInjector {
    /// No faults at all.
    pub fn none() -> Self {
        FaultInjector::default()
    }

    /// See [`FaultPlan::decide`].
    pub fn decide(&self, tool: &str, req: &ToolInvocation, attempt: u32) -> Option<InjectedFault> {
        match self {
            FaultInjector::Plan(p) => p.decide(tool, req, attempt),
            FaultInjector::Broken(p) => p.decide(tool, req, attempt),
        }
    }

    /// See [`FaultPlan::is_persistent`].
    pub fn is_persistent(&self, tool: &str) -> bool {
        match self {
            FaultInjector::Plan(p) => p.is_persistent(tool),
            FaultInjector::Broken(p) => p.is_persistent(tool),
        }
    }

    /// See [`FaultPlan::crash_fraction`].
    pub fn crash_fraction(&self, tool: &str, req: &ToolInvocation, attempt: u32) -> f64 {
        match self {
            FaultInjector::Plan(p) => p.crash_fraction(tool, req, attempt),
            FaultInjector::Broken(p) => p.inner.crash_fraction(tool, req, attempt),
        }
    }

    /// Returns `true` if this injector can never fire.
    pub fn is_none(&self) -> bool {
        match self {
            FaultInjector::Plan(p) => p.is_none(),
            FaultInjector::Broken(_) => false,
        }
    }
}

/// The observable result of one *attempt* at a tool run under fault
/// injection: the model's outcome plus the fault verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedOutcome {
    /// The underlying model outcome. For a
    /// [`InjectedFault::CorruptOutput`] fault the output bytes have
    /// been deterministically scrambled; for `Transient`/`Hang` the
    /// outcome describes what the run *would* have produced.
    pub outcome: ToolOutcome,
    /// The fault injected into this attempt, if any.
    pub fault: Option<InjectedFault>,
}

impl FaultedOutcome {
    /// Whether the attempt produced a usable result.
    pub fn is_ok(&self) -> bool {
        self.fault.is_none()
    }
}

/// Deterministically scrambles output bytes for a corrupt-output fault:
/// XORs a keystream over the payload so the corruption is reproducible
/// and never accidentally equal to the clean bytes.
pub(crate) fn corrupt_bytes(bytes: &mut [u8], seed: u64) {
    let mut rng = SplitMix64::new(mix(&[seed, 0xC0_44_0B_7E]));
    for chunk in bytes.chunks_mut(8) {
        let key = rng.next_u64().to_le_bytes();
        for (b, k) in chunk.iter_mut().zip(key.iter()) {
            *b ^= k | 1; // |1 guarantees at least one flipped bit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(iteration: u32) -> ToolInvocation {
        ToolInvocation {
            input_bytes: 512,
            iteration,
            seed: 11,
        }
    }

    #[test]
    fn none_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for attempt in 1..50 {
            assert_eq!(plan.decide("simulator", &req(1), attempt), None);
        }
        assert!(!plan.is_persistent("simulator"));
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::seeded(9);
        let b = FaultPlan::seeded(9);
        for attempt in 1..20 {
            for iter in 1..5 {
                assert_eq!(
                    a.decide("router", &req(iter), attempt),
                    b.decide("router", &req(iter), attempt)
                );
            }
        }
        assert_eq!(a.is_persistent("router"), b.is_persistent("router"));
    }

    #[test]
    fn seeds_change_decisions() {
        // Across many seeds the fault pattern must vary.
        let patterns: std::collections::BTreeSet<Vec<Option<InjectedFault>>> = (0..20)
            .map(|seed| {
                let plan = FaultPlan::seeded(seed);
                (1..10).map(|a| plan.decide("placer", &req(1), a)).collect()
            })
            .collect();
        assert!(patterns.len() > 1);
    }

    #[test]
    fn rates_roughly_respected() {
        let plan = FaultPlan::none().with_transient_rate(0.5);
        let n = 2000;
        let faults = (0..n)
            .filter(|&s| {
                plan.decide(
                    "t",
                    &ToolInvocation {
                        input_bytes: 0,
                        iteration: 1,
                        seed: s,
                    },
                    1,
                )
                .is_some()
            })
            .count();
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn persistent_rate_marks_some_tools() {
        let plan = FaultPlan::none().with_persistent_rate(0.5);
        let broken = (0..100)
            .filter(|i| plan.is_persistent(&format!("tool{i}")))
            .count();
        assert!((20..80).contains(&broken), "broken {broken}");
    }

    #[test]
    fn persistent_tool_always_fails() {
        let plan = FaultPlan::seeded(3).with_persistent_rate(1.0);
        for attempt in 1..32 {
            assert!(plan.decide("synthesizer", &req(1), attempt).is_some());
        }
    }

    #[test]
    fn broken_tool_plan_targets_one_tool() {
        let plan = FaultPlan::breaking_tool("rtl_editor");
        assert!(plan.is_persistent("rtl_editor"));
        assert!(!plan.is_persistent("simulator"));
        assert!(plan.decide("rtl_editor", &req(1), 1).is_some());
        assert_eq!(plan.decide("simulator", &req(1), 1), None);
    }

    #[test]
    fn crash_fraction_in_range_and_stable() {
        let plan = FaultPlan::seeded(4);
        let f1 = plan.crash_fraction("simulator", &req(1), 2);
        let f2 = plan.crash_fraction("simulator", &req(1), 2);
        assert_eq!(f1, f2);
        assert!((0.1..=0.9).contains(&f1));
    }

    #[test]
    fn corruption_changes_bytes_deterministically() {
        let original = vec![0u8; 64];
        let mut a = original.clone();
        let mut b = original.clone();
        corrupt_bytes(&mut a, 7);
        corrupt_bytes(&mut b, 7);
        assert_eq!(a, b);
        assert_ne!(a, original);
        let mut c = original.clone();
        corrupt_bytes(&mut c, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn injector_dispatches() {
        let inj: FaultInjector = FaultPlan::breaking_tool("x").into();
        assert!(inj.is_persistent("x"));
        assert!(!inj.is_none());
        let inj: FaultInjector = FaultPlan::none().into();
        assert!(inj.is_none());
        assert!((0.1..=0.9).contains(&inj.crash_fraction("x", &req(1), 1)));
    }
}
