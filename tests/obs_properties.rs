//! Property tests for the `obs` tracing subsystem, driven by the
//! in-repo `harness` framework (obs itself sits below harness in the
//! workspace layering, so its randomized tests live here).
//!
//! Properties:
//!
//! * **Well-formedness** — every `Enter` has a matching `Exit`, spans
//!   nest properly per thread, and [`obs::Trace::validate`] accepts
//!   the result for arbitrary seeded span forests on arbitrary worker
//!   counts.
//! * **Deterministic merge** — the merged trace is a pure function of
//!   the seeded workload and its lane assignment: re-running the same
//!   workload yields the same shape and byte-identical logical Chrome
//!   JSON, regardless of OS scheduling.
//! * **Lane ordering** — threads appear in the merged trace in lane
//!   order, not completion order.
//!
//! Tests in this binary serialize on the collector's session lock.

use harness::prelude::*;
use obs::export::{to_chrome, Timebase};
use obs::{Arg, Collector, SpanGuard, Trace};

/// Fixed names per nesting level (span names are `&'static str`).
const NAMES: [&str; 4] = ["depth0", "depth1", "depth2", "depth3"];

/// A tiny deterministic generator for workload shaping.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Records a seeded forest of nested spans at `depth`, returning how
/// many spans it created.
fn forest(depth: usize, state: &mut u64) -> usize {
    if depth >= NAMES.len() {
        return 0;
    }
    let children = (next(state) % 3) as usize; // 0..=2 spans per level
    let mut created = 0;
    for c in 0..children {
        let mut span = SpanGuard::enter(NAMES[depth], vec![Arg::new("child", c)]);
        created += 1;
        if next(state).is_multiple_of(2) {
            Collector::event("tick", vec![Arg::new("depth", depth)]);
        }
        created += forest(depth + 1, state);
        span.record("created", created);
    }
    created
}

/// Runs the seeded workload on `threads` workers under an exclusive
/// session; returns the merged trace and the total span count.
fn run_workload(seed: u64, threads: usize) -> (Trace, usize) {
    let session = Collector::session();
    let counts: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    Collector::set_lane(1 + t as u64);
                    let mut state = seed ^ (t as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                    forest(0, &mut state)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (session.finish(), counts.iter().sum())
}

harness::props! {
    config(cases = 48);

    fn traces_are_well_formed(seed in 0u64..1_000_000, threads in 1usize..6) {
        let (trace, created) = run_workload(seed, threads);
        trace.validate().expect("well-formed");
        prop_assert_eq!(trace.span_count(), created);
        // Matched pairs: every span view has an end no earlier than
        // its start, and parents enclose children.
        for s in trace.spans() {
            prop_assert!(s.end_ns >= s.start_ns);
        }
    }

    fn merge_is_deterministic(seed in 0u64..1_000_000, threads in 1usize..6) {
        let (a, _) = run_workload(seed, threads);
        let (b, _) = run_workload(seed, threads);
        prop_assert_eq!(a.shape(), b.shape());
        prop_assert_eq!(
            to_chrome(&a, Timebase::Logical),
            to_chrome(&b, Timebase::Logical)
        );
    }

    fn threads_merge_in_lane_order(seed in 0u64..1_000_000, threads in 2usize..6) {
        let (trace, _) = run_workload(seed, threads);
        let lanes: Vec<u64> = trace.threads.iter().map(|t| t.lane).collect();
        let mut sorted = lanes.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&lanes, &sorted);
        // Only worker lanes appear: the orchestrator recorded nothing.
        prop_assert!(lanes.iter().all(|&l| l >= 1 && l <= threads as u64));
    }
}

/// The Monte Carlo engine's trace is a pure function of
/// `(samples, threads, seed)` — chunk spans land on chunk-derived
/// lanes, so OS scheduling cannot reorder the merged trace.
#[test]
fn montecarlo_trace_is_schedule_invariant() {
    use schedule::montecarlo::simulate_threaded;
    use schedule::pert::ThreePoint;
    use schedule::{ScheduleNetwork, WorkDays};

    let mut net = ScheduleNetwork::new();
    let a = net.add_activity("a", WorkDays::new(4.0)).unwrap();
    let b = net.add_activity("b", WorkDays::new(6.0)).unwrap();
    let est = vec![
        (a, ThreePoint::new(2.0, 4.0, 9.0).unwrap()),
        (b, ThreePoint::new(3.0, 6.0, 12.0).unwrap()),
    ];
    let run = |threads: usize| {
        let session = Collector::session();
        simulate_threaded(&net, &est, 512, 7, threads).unwrap();
        session.finish()
    };
    for threads in [1, 2, 4] {
        let t1 = run(threads);
        let t2 = run(threads);
        assert_eq!(t1.shape(), t2.shape(), "threads={threads}");
        assert_eq!(
            to_chrome(&t1, Timebase::Logical),
            to_chrome(&t2, Timebase::Logical),
            "threads={threads}"
        );
        t1.validate().unwrap();
        // One mc.chunk span per worker. Single-threaded runs execute
        // the chunk inline on the orchestrator (lane 0); fan-out puts
        // chunk k on lane 1 + k.
        let chunks: Vec<_> = t1
            .spans()
            .into_iter()
            .filter(|s| s.name == "mc.chunk")
            .collect();
        assert_eq!(chunks.len(), threads);
        let lanes: Vec<u64> = chunks.iter().map(|c| c.lane).collect();
        let expected: Vec<u64> = if threads == 1 {
            vec![0]
        } else {
            (1..=threads as u64).collect()
        };
        assert_eq!(lanes, expected);
    }
}
