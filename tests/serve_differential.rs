//! Differential conformance: the server is a **pure transport** over
//! the workspace kernel.
//!
//! For seeded scenario scripts we drive the *same* operation sequence
//! twice — through the HTTP client against a served workspace, and
//! through direct `Workspace` calls against a twin workspace with
//! identical seeds — and assert byte-identical response bodies
//! (status reports, plan renderings, run summaries, replan outcomes),
//! identical schedule-instance versions, and identical full database
//! dumps at the end. Any divergence means the server added semantics
//! of its own, which is exactly what it must never do.

use std::sync::Arc;

use hercules::{Project, Workspace};
use serve::{plan_body, replan_body, run_body, status_body, Client, Server, ServerConfig};
use simtools::{workload::Team, ToolLibrary};

/// Deterministic splitmix64 so scenario scripts are a pure function of
/// their seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One scripted operation against a named project.
#[derive(Debug, Clone, Copy)]
enum Op {
    Plan,
    Run,
    Replan,
    Status,
}

const PROJECTS: &[(&str, u64)] = &[("alu", 7), ("fpu", 11), ("cache", 23)];
const TARGETS: &[&str] = &["performance", "netlist"];

fn schema_source() -> String {
    format!(
        "schema circuit;\n{}",
        schema::examples::circuit_design().to_source()
    )
}

/// Builds the scripted op sequence for one seed: interleaved ops
/// across the three projects, hitting both targets.
fn script(seed: u64, len: usize) -> Vec<(usize, Op, &'static str)> {
    let mut rng = Rng(seed);
    (0..len)
        .map(|_| {
            let project = rng.below(PROJECTS.len() as u64) as usize;
            let op = match rng.below(10) {
                0..=2 => Op::Plan,
                3..=4 => Op::Run,
                5..=6 => Op::Replan,
                _ => Op::Status,
            };
            let target = TARGETS[rng.below(TARGETS.len() as u64) as usize];
            (project, op, target)
        })
        .collect()
}

/// Applies one op directly to the kernel and returns the rendered body
/// via the same pure render functions the server uses — plus whether
/// the kernel call failed (to line up with HTTP 422s).
fn apply_direct(
    project: &Arc<Project>,
    name: &str,
    op: Op,
    target: &str,
) -> Result<String, String> {
    match op {
        Op::Plan => project
            .update(|h| h.plan(target))
            .map(|plan| plan_body(name, target, &plan))
            .map_err(|e| e.to_string()),
        Op::Run => project
            .update(|h| {
                h.plan(target)?;
                let report = h.execute(target)?;
                Ok::<_, hercules::HerculesError>(run_body(name, &report, h))
            })
            .map_err(|e| e.to_string()),
        Op::Replan => project
            .update(|h| h.replan(target))
            .map(|outcome| replan_body(target, &outcome))
            .map_err(|e| e.to_string()),
        Op::Status => Ok(project.read(status_body)),
    }
}

/// Applies the same op over HTTP. 2xx ⇒ Ok(body), 422 ⇒ Err(kernel
/// message inside the error body).
fn apply_http(client: &Client, name: &str, op: Op, target: &str) -> Result<String, String> {
    let response = match op {
        Op::Plan => client
            .post(&format!("/projects/{name}/plan?target={target}"), b"")
            .expect("http plan"),
        Op::Run => client
            .post(&format!("/projects/{name}/run?target={target}"), b"")
            .expect("http run"),
        Op::Replan => client
            .post(&format!("/projects/{name}/replan?target={target}"), b"")
            .expect("http replan"),
        Op::Status => client
            .get(&format!("/projects/{name}/status"))
            .expect("http status"),
    };
    match response.status {
        200 => Ok(response.body),
        422 => Err(response
            .body
            .strip_prefix("error: ")
            .unwrap_or(&response.body)
            .trim_end()
            .to_owned()),
        other => panic!(
            "unexpected HTTP {other} for {op:?} {name}/{target}: {}",
            response.body
        ),
    }
}

fn run_scenario(seed: u64, ops: usize) {
    // Served side: in-memory workspace behind a real TCP server.
    let served_ws = Arc::new(Workspace::in_memory());
    let server = Server::start(Arc::clone(&served_ws), ServerConfig::default()).expect("bind");
    let client = Client::new(server.addr());

    // Twin side: direct kernel calls, same seeds.
    let direct_ws = Workspace::in_memory();
    let source = schema_source();
    let mut direct_projects = Vec::new();
    for (name, project_seed) in PROJECTS {
        let resp = client
            .post(
                &format!("/projects/{name}?team=2&seed={project_seed}"),
                source.as_bytes(),
            )
            .expect("create over http");
        assert_eq!(resp.status, 201, "{}", resp.body);
        let project = direct_ws
            .create_project(
                name,
                schema::examples::circuit_design(),
                ToolLibrary::standard(),
                Team::of_size(2),
                *project_seed,
            )
            .expect("create direct");
        direct_projects.push(project);
    }

    for (step, (idx, op, target)) in script(seed, ops).into_iter().enumerate() {
        let (name, _) = PROJECTS[idx];
        let via_http = apply_http(&client, name, op, target);
        let via_kernel = apply_direct(&direct_projects[idx], name, op, target);
        assert_eq!(
            via_http, via_kernel,
            "seed {seed} step {step}: {op:?} {name}/{target} diverged"
        );
    }

    // Endgame: the full database dumps — every run, plan version,
    // dependency link, and generation stamp — must match byte for
    // byte, and so must the final status reports.
    for (idx, (name, _)) in PROJECTS.iter().enumerate() {
        let export = client
            .get(&format!("/projects/{name}/export"))
            .expect("http export");
        assert_eq!(export.status, 200);
        let direct_dump = direct_projects[idx].read(|h| h.db().dump());
        assert_eq!(
            export.body, direct_dump,
            "seed {seed}: {name} database dumps diverged"
        );
        let status = client
            .get(&format!("/projects/{name}/status"))
            .expect("http status");
        let direct_status = direct_projects[idx].read(status_body);
        assert_eq!(status.body, direct_status);
        // Plan versions, explicitly: the versioned schedule instances
        // are the paper's core bookkeeping.
        fn plan_versions(h: &hercules::Hercules) -> Vec<(String, Option<u32>)> {
            let mut v: Vec<(String, Option<u32>)> = h
                .db()
                .activities()
                .map(|a| (a.to_owned(), h.db().current_plan(a).map(|p| p.version())))
                .collect();
            v.sort();
            v
        }
        let versions = direct_projects[idx].read(plan_versions);
        let served_versions = served_ws
            .project(name)
            .expect("served project registered")
            .read(plan_versions);
        assert_eq!(
            versions, served_versions,
            "seed {seed}: {name} plan versions diverged"
        );
    }

    server.shutdown();
}

#[test]
fn seeded_scripts_are_transport_invariant() {
    for seed in [1, 2, 3, 5, 8, 13] {
        run_scenario(seed, 24);
    }
}

#[test]
fn long_mixed_scenario_is_transport_invariant() {
    run_scenario(0xD1FF, 64);
}

#[test]
fn run_policy_and_workers_params_are_transport_invariant() {
    // `?policy=` / `?workers=` on the run endpoint must be pure
    // pass-throughs to `execute_with` — same bodies, same final dumps,
    // per policy, on both the implicit and an explicit substrate.
    use simtools::cluster::Cluster;

    let ws = Arc::new(Workspace::in_memory());
    let server = Server::start(Arc::clone(&ws), ServerConfig::default()).expect("bind");
    let client = Client::new(server.addr());
    let direct_ws = Workspace::in_memory();
    let source = schema_source();

    for (i, policy) in hercules::ExecutionPolicy::ALL.into_iter().enumerate() {
        for workers in [None, Some(3usize)] {
            let name = format!("p{i}w{}", workers.unwrap_or(0));
            let seed = 17 + i as u64;
            let resp = client
                .post(
                    &format!("/projects/{name}?team=2&seed={seed}"),
                    source.as_bytes(),
                )
                .expect("create over http");
            assert_eq!(resp.status, 201, "{}", resp.body);
            let direct = direct_ws
                .create_project(
                    &name,
                    schema::examples::circuit_design(),
                    ToolLibrary::standard(),
                    Team::of_size(2),
                    seed,
                )
                .expect("create direct");

            let mut url = format!("/projects/{name}/run?target=performance&policy={policy}");
            if let Some(n) = workers {
                url.push_str(&format!("&workers={n}"));
            }
            let resp = client.post(&url, b"").expect("http run");
            assert_eq!(resp.status, 200, "{}", resp.body);
            let cluster = workers.map(Cluster::uniform);
            let direct_body = direct
                .update(|h| {
                    h.plan("performance")?;
                    let report = h.execute_with("performance", policy, cluster.as_ref())?;
                    Ok::<_, hercules::HerculesError>(run_body(&name, &report, h))
                })
                .expect("direct run");
            assert_eq!(resp.body, direct_body, "{policy} run body diverged");

            let export = client
                .get(&format!("/projects/{name}/export"))
                .expect("http export");
            assert_eq!(
                export.body,
                direct.read(|h| h.db().dump()),
                "{policy} database dumps diverged"
            );
        }
    }

    // Bad parameters answer without touching the project.
    let resp = client
        .post("/projects/p0w0/run?target=performance&policy=random", b"")
        .expect("http run");
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("minslack"), "{}", resp.body);
    let resp = client
        .post("/projects/p0w0/run?target=performance&workers=0", b"")
        .expect("http run");
    assert_eq!(resp.status, 422, "{}", resp.body);
    server.shutdown();
}

#[test]
fn error_paths_are_transport_invariant_too() {
    // Unknown targets and replans-before-plans must produce the same
    // kernel error text over HTTP as in-process.
    let ws = Arc::new(Workspace::in_memory());
    let server = Server::start(Arc::clone(&ws), ServerConfig::default()).expect("bind");
    let client = Client::new(server.addr());
    let resp = client
        .post("/projects/solo?team=2&seed=3", schema_source().as_bytes())
        .expect("create");
    assert_eq!(resp.status, 201);

    let direct_ws = Workspace::in_memory();
    let direct = direct_ws
        .create_project(
            "solo",
            schema::examples::circuit_design(),
            ToolLibrary::standard(),
            Team::of_size(2),
            3,
        )
        .expect("create direct");

    for (op, target) in [
        (Op::Plan, "nonsense"),
        (Op::Run, "bogus"),
        (Op::Replan, "nope"),
    ] {
        let via_http = apply_http(&client, "solo", op, target);
        let via_kernel = apply_direct(&direct, "solo", op, target);
        assert_eq!(via_http, via_kernel, "{op:?} {target} error text diverged");
        assert!(via_http.is_err(), "{op:?} on a bad target must fail");
    }
    server.shutdown();
}
