//! Quickstart: schema → plan → execute → track, on the paper's
//! circuit-design example.
//!
//! Run with `cargo run --example quickstart`.

use hercules::{Hercules, HerculesError};
use schedule::gantt::GanttOptions;
use schema::parse_schema;
use simtools::{workload::Team, ToolLibrary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Define the design process as a task schema (Fig. 4).
    let schema = parse_schema(
        "schema circuit;
         data netlist, stimuli, performance;
         tool netlist_editor, simulator;
         activity Create:   netlist = netlist_editor();
         activity Simulate: performance = simulator(netlist, stimuli);",
    )?;

    // 2. One system owns flow AND schedule: the workflow manager.
    let mut hercules = Hercules::new(schema, ToolLibrary::standard(), Team::of_size(2), 42);

    // 3. Plan by simulating the execution of the flow.
    let plan = hercules.plan("performance")?;
    println!("proposed schedule (finish day {}):", plan.project_finish());
    for pa in plan.activities() {
        println!(
            "  {:<10} [{} .. {}] -> {}",
            pa.activity,
            pa.start,
            pa.start + pa.duration,
            pa.assignee
        );
    }

    // 4. Execute. Runs create metadata; convergence links the final
    //    result back to the plan — no manual status reporting.
    let report = hercules.execute("performance")?;
    println!(
        "\nexecuted {} activities in {} tool runs, finished day {}",
        report.activities().len(),
        report.total_runs(),
        report.finished_at()
    );

    // 5. Track: plan vs actual, automatically.
    let status = hercules.status();
    print!(
        "\n{}",
        status.gantt(&GanttOptions {
            ascii: true,
            ..GanttOptions::default()
        })
    );
    println!("\n{status}");
    println!("variance: {}", status.variance());

    // 6. History is now a resource: what did Simulate take last time?
    let last = hercules
        .db()
        .last_duration("Simulate")
        .ok_or_else(|| HerculesError::NotPlanned("Simulate".into()))?;
    println!("Simulate took {last} — the estimate for next time");
    Ok(())
}
