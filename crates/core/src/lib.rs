//! The Hercules workflow manager with integrated design schedule
//! management — the primary contribution of Johnson & Brockman,
//! *Incorporating Design Schedule Management into a Flow Management
//! System*, DAC 1995.
//!
//! The paper's thesis: schedule management and process (flow)
//! management belong in **one** system. The process decomposition built
//! for planning is the same task structure the flow manager executes;
//! the flow manager already knows the status of every activity, so the
//! project schedule updates itself; and the metadata of past designs is
//! sitting right there to predict future durations.
//!
//! The key mechanism is **planning as simulated execution** (§III):
//! Hercules plans a schedule by performing the *same post-order
//! traversal of the task tree* it uses to execute the flow — but
//! instead of running tools and creating entity instances, it creates
//! *schedule instances* (Level-3 schedule data mirroring the Level-3
//! execution data). Tracking then works by *linking*: when the designer
//! declares an activity done, its final entity instance is linked to
//! the schedule instance, and actual dates flow into the plan.
//!
//! # Walkthrough (the paper's §IV example)
//!
//! ```
//! use hercules::Hercules;
//! use schema::examples;
//! use simtools::{workload::Team, ToolLibrary};
//!
//! # fn main() -> Result<(), hercules::HerculesError> {
//! // 1. Define a task schema and initialise the task database.
//! let schema = examples::circuit_design();
//! let mut hercules = Hercules::new(schema, ToolLibrary::standard(), Team::of_size(2), 42);
//!
//! // 2. Extract the task tree covering the intended target.
//! let tree = hercules.extract_task_tree("performance")?;
//! assert_eq!(tree.activities(), ["Create", "Simulate"]);
//!
//! // 3. Plan: simulate the execution, creating schedule instances.
//! let plan = hercules.plan("performance")?;
//! assert_eq!(plan.len(), 2);
//!
//! // 4. Execute the flow; runs create entity instances, and on
//! //    convergence the final instance is linked to the plan.
//! let report = hercules.execute("performance")?;
//! assert!(report.all_converged());
//!
//! // 5. Examine status: every activity complete, plan vs actual known.
//! let status = hercules.status();
//! assert_eq!(status.complete_count(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod execute;
mod forecast;
mod manager;
mod optimize;
mod plan;
mod replan;
mod retry;
mod rollup;
mod status;
mod task;
mod workspace;

pub mod browse;
pub mod chaos;
pub mod fsck;
pub mod policy;
pub mod report;
pub mod trace;

pub use error::HerculesError;
pub use execute::{ActivityExecution, BlockedActivity, ExecutionReport};
pub use forecast::Forecast;
pub use manager::Hercules;
pub use optimize::{CrashAdvice, TeamPoint, TeamSweep};
pub use plan::{PlannedActivity, SchedulePlan};
pub use policy::{ExecutionPolicy, SchedulingPolicy};
pub use replan::ReplanOutcome;
pub use retry::RetryPolicy;
pub use rollup::{BlockStatus, Decomposition};
pub use status::{ActivityState, StatusReport};
pub use task::TaskTree;
pub use workspace::{Project, Workspace, WorkspaceError, PROJECT_CONF_MAGIC};
