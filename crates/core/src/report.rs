//! The consolidated project report — everything a weekly status
//! meeting used to assemble by hand, generated from the database in
//! one call: status rows, Gantt, earned value, designer workload, and
//! the completion forecast.

use std::fmt::Write as _;

use schedule::gantt::GanttOptions;

use crate::error::HerculesError;
use crate::manager::Hercules;

/// Options for [`Hercules::project_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReportOptions {
    /// The target whose scope the forecast covers.
    pub target: String,
    /// Gantt rendering options.
    pub gantt: GanttOptions,
    /// Include the per-designer workload table.
    pub workload: bool,
    /// Include the SPI trajectory (this many samples; 0 disables).
    pub spi_samples: usize,
}

impl ReportOptions {
    /// Defaults: ASCII Gantt, workload on, 5 SPI samples.
    pub fn for_target(target: impl Into<String>) -> Self {
        ReportOptions {
            target: target.into(),
            gantt: GanttOptions {
                ascii: true,
                ..GanttOptions::default()
            },
            workload: true,
            spi_samples: 5,
        }
    }
}

impl Hercules {
    /// Renders the full project report as text.
    ///
    /// # Errors
    ///
    /// [`HerculesError::UnknownTarget`] if the options name an unknown
    /// target.
    ///
    /// # Example
    ///
    /// ```
    /// use hercules::{report::ReportOptions, Hercules};
    /// use schema::examples;
    /// use simtools::{workload::Team, ToolLibrary};
    ///
    /// # fn main() -> Result<(), hercules::HerculesError> {
    /// let mut h = Hercules::new(
    ///     examples::circuit_design(),
    ///     ToolLibrary::standard(),
    ///     Team::of_size(2),
    ///     42,
    /// );
    /// h.plan("performance")?;
    /// h.execute("performance")?;
    /// let report = h.project_report(&ReportOptions::for_target("performance"))?;
    /// assert!(report.contains("forecast"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn project_report(&self, options: &ReportOptions) -> Result<String, HerculesError> {
        let status = self.status();
        let forecast = self.forecast(&options.target)?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "PROJECT REPORT — target {:?} at day {}",
            options.target,
            self.clock()
        );
        let _ = writeln!(
            out,
            "{} of {} activities complete, {} slipped",
            status.complete_count(),
            status.rows().len(),
            status.slipped_count()
        );
        let _ = writeln!(
            out,
            "forecast: finish day {} ({} open, {} remaining){}",
            forecast.finish,
            forecast.open,
            forecast.remaining(),
            if forecast.critical.is_empty() {
                String::new()
            } else {
                format!("; critical: {}", forecast.critical.join(" -> "))
            }
        );
        let _ = writeln!(out, "\n{status}");
        out.push_str(&status.gantt(&options.gantt));
        let _ = writeln!(out, "\nearned value: {}", status.variance());
        if options.spi_samples >= 2 {
            let _ = writeln!(out, "SPI trajectory:");
            for (t, v) in status.variance_series(options.spi_samples) {
                let _ = writeln!(out, "  day {:>8}  SPI {:.2}", t.to_string(), v.spi);
            }
        }
        if options.workload {
            let workload = self.db().workload_by_designer();
            if !workload.is_empty() {
                let _ = writeln!(out, "\ndesigner workload (measured run time):");
                for (designer, days) in workload {
                    let _ = writeln!(out, "  {designer:<14} {days}");
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;
    use simtools::{workload::Team, ToolLibrary};

    fn manager() -> Hercules {
        Hercules::new(
            examples::circuit_design(),
            ToolLibrary::standard(),
            Team::of_size(2),
            42,
        )
    }

    #[test]
    fn report_contains_every_section() {
        let mut h = manager();
        h.plan("performance").unwrap();
        h.execute("performance").unwrap();
        let text = h
            .project_report(&ReportOptions::for_target("performance"))
            .unwrap();
        assert!(text.contains("PROJECT REPORT"));
        assert!(text.contains("2 of 2 activities complete"));
        assert!(text.contains("forecast: finish day"));
        assert!(text.contains("earned value: PV"));
        assert!(text.contains("SPI trajectory:"));
        assert!(text.contains("designer workload"));
        assert!(text.contains("Create"));
    }

    #[test]
    fn sections_toggle_off() {
        let mut h = manager();
        h.plan("performance").unwrap();
        h.execute("performance").unwrap();
        let mut options = ReportOptions::for_target("performance");
        options.workload = false;
        options.spi_samples = 0;
        let text = h.project_report(&options).unwrap();
        assert!(!text.contains("designer workload"));
        assert!(!text.contains("SPI trajectory"));
    }

    #[test]
    fn report_before_any_work() {
        let h = manager();
        let text = h
            .project_report(&ReportOptions::for_target("performance"))
            .unwrap();
        assert!(text.contains("0 of 2 activities complete"));
        // No runs yet: workload section omitted.
        assert!(!text.contains("designer workload"));
    }

    #[test]
    fn unknown_target_rejected() {
        let h = manager();
        assert!(h.project_report(&ReportOptions::for_target("gds")).is_err());
    }
}
