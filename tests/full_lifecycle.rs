//! End-to-end integration: the paper's full procedure across every
//! crate — schema definition, database initialisation, planning,
//! execution, completion links, status, slip propagation, replan.

use hercules::{ActivityState, Hercules};
use schedule::WorkDays;
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

fn asic(seed: u64) -> Hercules {
    Hercules::new(
        examples::asic_flow(),
        ToolLibrary::standard(),
        Team::of_size(3),
        seed,
    )
}

#[test]
fn lifecycle_plan_execute_track() {
    let mut h = asic(5);
    let plan = h.plan("signoff_report").expect("plannable");
    assert_eq!(plan.len(), 9);

    // Every activity got a schedule instance, version 1, with an
    // assignee from the team.
    for pa in plan.activities() {
        let sc = h.db().schedule_instance(pa.schedule);
        assert_eq!(sc.version(), 1);
        assert_eq!(sc.assignees().len(), 1);
        assert!(sc.assignees()[0].starts_with("designer"));
    }

    let report = h.execute("signoff_report").expect("executable");
    assert!(report.all_converged());
    assert_eq!(report.activities().len(), 9);

    // Status: everything complete; actuals and slips known.
    let status = h.status();
    assert_eq!(status.complete_count(), 9);
    for row in status.rows() {
        assert_eq!(row.state, ActivityState::Complete);
        assert!(row.actual_start.is_some());
        assert!(row.actual_finish.is_some());
        assert!(row.slip.is_some());
    }
}

#[test]
fn execution_order_respects_data_dependencies() {
    let mut h = asic(7);
    h.plan("signoff_report").expect("plannable");
    let report = h.execute("signoff_report").expect("executable");
    let finish = |name: &str| report.activity(name).expect("executed").finished.days();
    let start = |name: &str| report.activity(name).expect("executed").started.days();
    assert!(start("WriteRtl") >= finish("CaptureSpec") - 1e-9);
    assert!(start("Synthesize") >= finish("WriteRtl") - 1e-9);
    assert!(start("Signoff") >= finish("Route") - 1e-9);
    assert!(start("Signoff") >= finish("VerifyRtl") - 1e-9);
}

#[test]
fn links_point_at_latest_versions() {
    let mut h = asic(11);
    h.plan("signoff_report").expect("plannable");
    h.execute("signoff_report").expect("executable");
    for activity in h.db().activities().map(str::to_owned).collect::<Vec<_>>() {
        let sc = h.db().current_plan(&activity).expect("planned");
        let entity = sc.linked_entity().expect("complete");
        let inst = h.db().entity_instance(entity);
        // The link targets the LAST version in the output container.
        let container = h
            .db()
            .entity_container(inst.class())
            .expect("container exists");
        assert_eq!(container.last(), Some(&entity));
        // And the producing run belongs to the right activity.
        let run = h.db().run(inst.produced_by().expect("produced by a run"));
        assert_eq!(run.activity(), activity);
    }
}

#[test]
fn designers_never_work_two_activities_at_once() {
    let mut h = asic(13);
    h.plan("signoff_report").expect("plannable");
    let report = h.execute("signoff_report").expect("executable");
    let mut by_designer: std::collections::HashMap<&str, Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    for exec in report.activities() {
        by_designer
            .entry(exec.assignee.as_str())
            .or_default()
            .push((exec.started.days(), exec.finished.days()));
    }
    for (designer, mut spans) in by_designer {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            assert!(w[1].0 >= w[0].1 - 1e-9, "{designer} overlaps: {w:?}");
        }
    }
}

#[test]
fn slip_propagation_touches_only_open_downstream() {
    let mut h = asic(5);
    h.plan("signoff_report").expect("plannable");
    h.execute("rtl").expect("executable");
    let slip = h.db().finish_slip("WriteRtl");
    let outcome = h.propagate_slip("WriteRtl").expect("planned");
    match slip {
        Some(s) if s > 1e-9 => {
            assert!(!outcome.is_empty());
            for (name, _) in &outcome.replanned {
                // Nothing upstream, nothing complete.
                assert_ne!(name, "CaptureSpec");
                assert_ne!(name, "WriteRtl");
                assert!(!h
                    .db()
                    .current_plan(name)
                    .expect("replanned implies planned")
                    .is_complete());
            }
        }
        _ => assert!(outcome.is_empty()),
    }
}

#[test]
fn replan_uses_measured_history() {
    let mut h = asic(5);
    h.plan("signoff_report").expect("plannable");
    h.execute("signoff_report").expect("executable");
    // Second project on the same manager: durations now come from
    // history, not tool models.
    let measured = h.db().last_duration("Synthesize").expect("ran");
    let estimate = h.duration_estimate("Synthesize").expect("known");
    assert_eq!(measured, estimate);
}

#[test]
fn clock_advances_with_execution() {
    let mut h = asic(5);
    assert_eq!(h.clock(), WorkDays::ZERO);
    h.plan("signoff_report").expect("plannable");
    let report = h.execute("signoff_report").expect("executable");
    assert_eq!(h.clock(), report.finished_at());
    assert!(h.clock().days() > 0.0);
}

#[test]
fn board_flow_second_domain() {
    // The model is not circuit-specific: the board schema runs the
    // same lifecycle.
    let mut h = Hercules::new(
        examples::board_flow(),
        ToolLibrary::standard(),
        Team::of_size(2),
        3,
    );
    let plan = h.plan("bringup_report").expect("plannable");
    assert_eq!(plan.len(), 6);
    let report = h.execute("bringup_report").expect("executable");
    assert!(report.all_converged());
    assert_eq!(h.status().complete_count(), 6);
}
