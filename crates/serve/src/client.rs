//! A tiny blocking HTTP/1.1 client, just enough to drive the server
//! from tests, benches, and the `herc serve --oneshot` CLI path.
//!
//! One TCP connection per request by default (`Connection: close`);
//! [`Client::pipelined`] reuses a single keep-alive connection for a
//! fixed request sequence. No external dependencies, same as the
//! server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Response headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body decoded as UTF-8 (lossy).
    pub body: String,
}

impl HttpResponse {
    /// First header value by (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Client configuration: target address plus optional bearer token.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    token: Option<String>,
    timeout: Duration,
    headers: Vec<(String, String)>,
}

impl Client {
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            token: None,
            timeout: Duration::from_secs(10),
            headers: Vec::new(),
        }
    }

    /// Authenticates every request with `Bearer <token>`.
    pub fn with_token(mut self, token: impl Into<String>) -> Client {
        self.token = Some(token.into());
        self
    }

    /// Overrides the socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Sends `name: value` on every request (e.g. `x-herc-trace` for
    /// request correlation).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Client {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// `GET path` (path may carry a query string).
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and malformed responses
    /// as `io::Error`.
    pub fn get(&self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, b"")
    }

    /// `POST path` with a body.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn post(&self, path: &str, body: &[u8]) -> std::io::Result<HttpResponse> {
        self.request("POST", path, body)
    }

    /// `DELETE path`.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn delete(&self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("DELETE", path, b"")
    }

    /// One request on a fresh connection (`Connection: close`).
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn request(&self, method: &str, path: &str, body: &[u8]) -> std::io::Result<HttpResponse> {
        let mut stream = self.connect()?;
        stream.write_all(&self.encode(method, path, body, true))?;
        let mut bytes = Vec::new();
        stream.read_to_end(&mut bytes)?;
        parse_response(&bytes).map(|(resp, _)| resp)
    }

    /// Like [`Client::request`] but retries (with a tiny backoff) while
    /// the server sheds load with 429 — for benches that want
    /// completed work, not rejection counts.
    ///
    /// # Errors
    ///
    /// See [`Client::get`]; additionally gives up after `attempts`
    /// consecutive 429s and returns the last response.
    pub fn request_retrying(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        attempts: usize,
    ) -> std::io::Result<HttpResponse> {
        let mut last = self.request(method, path, body)?;
        for backoff_ms in 0..attempts.saturating_sub(1) {
            if last.status != 429 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1 + backoff_ms as u64));
            last = self.request(method, path, body)?;
        }
        Ok(last)
    }

    /// Runs a fixed (method, path) sequence over ONE keep-alive
    /// connection and returns every response in order.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn pipelined(&self, requests: &[(&str, &str)]) -> std::io::Result<Vec<HttpResponse>> {
        let mut stream = self.connect()?;
        let mut responses = Vec::with_capacity(requests.len());
        let mut buffer = Vec::new();
        for (idx, (method, path)) in requests.iter().enumerate() {
            let close = idx + 1 == requests.len();
            stream.write_all(&self.encode(method, path, b"", close))?;
            // Read until this response is complete (headers + body).
            loop {
                if let Some((resp, consumed)) = try_parse_response(&buffer)? {
                    responses.push(resp);
                    buffer.drain(..consumed);
                    break;
                }
                let mut chunk = [0u8; 4096];
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ));
                }
                buffer.extend_from_slice(&chunk[..n]);
            }
        }
        Ok(responses)
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn encode(&self, method: &str, path: &str, body: &[u8], close: bool) -> Vec<u8> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.addr,
            body.len(),
            if close { "close" } else { "keep-alive" },
        );
        if let Some(token) = &self.token {
            head.push_str("Authorization: Bearer ");
            head.push_str(token);
            head.push_str("\r\n");
        }
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(body);
        out
    }
}

fn bad(reason: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, reason.to_owned())
}

/// Parses one response from `bytes`; errors if incomplete.
fn parse_response(bytes: &[u8]) -> std::io::Result<(HttpResponse, usize)> {
    try_parse_response(bytes)?.ok_or_else(|| bad("truncated response"))
}

/// `Ok(None)` ⇒ need more bytes.
fn try_parse_response(bytes: &[u8]) -> std::io::Result<Option<(HttpResponse, usize)>> {
    let Some(head_end) = find_head_end(bytes) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&bytes[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty head"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("not an HTTP/1.x response"));
    }
    let status: u16 = parts
        .next()
        .ok_or_else(|| bad("missing status code"))?
        .parse()
        .map_err(|_| bad("bad status code"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| bad("bad content-length"))?;
        }
        headers.push((name, value));
    }
    let body_start = head_end + 4;
    if bytes.len() < body_start + content_length {
        return Ok(None);
    }
    let body =
        String::from_utf8_lossy(&bytes[body_start..body_start + content_length]).into_owned();
    Ok(Some((
        HttpResponse {
            status,
            headers,
            body,
        },
        body_start + content_length,
    )))
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_closed_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 3\r\n\r\nok\n";
        let (resp, consumed) = parse_response(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok\n");
        assert_eq!(resp.header("content-type"), Some("text/plain"));
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn incomplete_responses_ask_for_more() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        assert!(try_parse_response(raw).unwrap().is_none());
        let raw = b"HTTP/1.1 200 OK\r\nContent-Len";
        assert!(try_parse_response(raw).unwrap().is_none());
    }

    #[test]
    fn garbage_responses_error() {
        assert!(parse_response(b"SMTP nonsense\r\n\r\n").is_err());
    }
}
