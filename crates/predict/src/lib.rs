//! Activity-duration prediction from metadata history.
//!
//! One of the paper's headline advantages for integrating schedule and
//! flow management is that "previous schedule data can be used to
//! predict the duration of future projects" (§I), and its §IV notes
//! that "instances of tools and data that are bound to tasks may serve
//! as inputs to such a prediction model" as future work. This crate is
//! that prediction model: estimators over the duration histories the
//! metadata database records, plus a rolling one-step-ahead evaluation
//! harness for comparing them (bench B7).
//!
//! # Example
//!
//! ```
//! use predict::{Ewma, MovingAverage, Predictor};
//!
//! let history = [2.0, 2.2, 1.9, 2.1];
//! let avg = MovingAverage::new(3).predict(&history).expect("enough data");
//! assert!((avg - (2.2 + 1.9 + 2.1) / 3.0).abs() < 1e-9);
//! let smoothed = Ewma::new(0.5).predict(&history).expect("enough data");
//! assert!(smoothed > 1.9 && smoothed < 2.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimators;
mod evaluate;
mod stats;

pub use estimators::{Ewma, Intuition, LastValue, LinearTrend, MeanOfAll, MovingAverage};
pub use evaluate::{evaluate, rolling_forecasts, EvalReport};
pub use stats::DurationStats;

/// A duration estimator: given the measured durations of past
/// executions of an activity (oldest first), predict the next one.
///
/// Implementations return `None` when the history is too short for the
/// method (e.g. a regression needs two points); callers fall back to
/// designer intuition exactly as Hercules does.
pub trait Predictor {
    /// Human-readable estimator name for reports.
    fn name(&self) -> &str;

    /// Predicts the next duration from `history` (oldest first), or
    /// `None` if the history is insufficient for this method.
    fn predict(&self, history: &[f64]) -> Option<f64>;
}
