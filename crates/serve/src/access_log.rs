//! Structured access log: one JSON object per request, appended to a
//! file the operator names with `--access-log`.
//!
//! The line format is deliberately flat — every value a dashboard or
//! `jq` query needs sits at the top level:
//!
//! ```json
//! {"ts_ms":1722945600123,"trace":"7f3a9c2b11d04e58","tenant":"alice",
//!  "endpoint":"replan","status":200,"latency_ms":3.21,"coalesced":false}
//! ```
//!
//! `tenant` is `null` for requests rejected before authentication, and
//! `coalesced` is true when a replan rode a concurrent leader's kernel
//! pass instead of running its own. The `trace` value matches the
//! `x-herc-trace` response header, so one grep correlates the log line
//! with the client's copy of the id and with
//! `GET /debug/flight?trace=<id>`.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One request's worth of access-log fields, filled by the router.
#[derive(Debug, Clone)]
pub struct AccessEntry {
    /// Request trace id (the `x-herc-trace` value), 0 = none assigned.
    pub trace_id: u64,
    /// Authenticated tenant, `None` before/without auth.
    pub tenant: Option<String>,
    /// Stable endpoint class (`plan`, `replan`, `status`, …).
    pub endpoint: &'static str,
    /// Response status code.
    pub status: u16,
    /// Wall-clock handling latency in milliseconds.
    pub latency_ms: f64,
    /// Whether a replan was answered from a concurrent leader's pass.
    pub coalesced: bool,
}

/// Append-only JSONL access log, shared by every worker thread. Each
/// request becomes exactly one `write_all` of one line, so concurrent
/// workers never interleave bytes within a line.
#[derive(Debug)]
pub struct AccessLog {
    file: Mutex<File>,
}

impl AccessLog {
    /// Opens (creating or appending to) the log at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `File::open` failure.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<AccessLog> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.as_ref())?;
        Ok(AccessLog {
            file: Mutex::new(file),
        })
    }

    /// Appends one request's line. Logging is best-effort: an I/O
    /// failure here must not fail the request that triggered it.
    pub fn record(&self, entry: &AccessEntry) {
        let line = render_line(entry);
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let _ = file.write_all(line.as_bytes());
    }
}

/// Renders one entry as a JSON line (trailing `\n` included).
fn render_line(entry: &AccessEntry) -> String {
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let mut out = String::with_capacity(128);
    let _ = write!(out, "{{\"ts_ms\":{ts_ms},\"trace\":");
    if entry.trace_id == 0 {
        out.push_str("null");
    } else {
        let _ = write!(out, "\"{:016x}\"", entry.trace_id);
    }
    out.push_str(",\"tenant\":");
    match &entry.tenant {
        Some(tenant) => {
            out.push('"');
            escape_into(tenant, &mut out);
            out.push('"');
        }
        None => out.push_str("null"),
    }
    let _ = writeln!(
        out,
        ",\"endpoint\":\"{}\",\"status\":{},\"latency_ms\":{:.3},\"coalesced\":{}}}",
        entry.endpoint, entry.status, entry.latency_ms, entry.coalesced
    );
    out
}

/// Minimal JSON string escaping (tenant names are operator-chosen, so
/// quotes and control characters must not break the line format).
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_valid_jsonl_and_carry_every_field() {
        let dir = std::env::temp_dir().join(format!(
            "schedflow-access-log-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let log = AccessLog::open(&path).unwrap();
        log.record(&AccessEntry {
            trace_id: 0x7f3a_9c2b_11d0_4e58,
            tenant: Some("ali\"ce".into()),
            endpoint: "replan",
            status: 200,
            latency_ms: 3.21,
            coalesced: true,
        });
        log.record(&AccessEntry {
            trace_id: 0,
            tenant: None,
            endpoint: "other",
            status: 401,
            latency_ms: 0.05,
            coalesced: false,
        });
        let text = std::fs::read_to_string(&path).unwrap();
        obs::export::validate_jsonl(&text).expect("every line must be valid JSON");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = obs::export::parse_json(lines[0]).unwrap();
        assert_eq!(
            first.get("trace").and_then(|v| v.as_str()),
            Some("7f3a9c2b11d04e58")
        );
        assert_eq!(
            first.get("tenant").and_then(|v| v.as_str()),
            Some("ali\"ce")
        );
        assert_eq!(
            first.get("endpoint").and_then(|v| v.as_str()),
            Some("replan")
        );
        assert_eq!(first.get("status").and_then(|v| v.as_f64()), Some(200.0));
        assert!(matches!(
            first.get("coalesced"),
            Some(obs::export::JsonValue::Bool(true))
        ));
        let second = obs::export::parse_json(lines[1]).unwrap();
        assert!(matches!(
            second.get("trace"),
            Some(obs::export::JsonValue::Null)
        ));
        assert!(matches!(
            second.get("tenant"),
            Some(obs::export::JsonValue::Null)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
