//! A multi-project **workspace**: a sharded registry of named projects,
//! each owning its storage engine, manager state (plan caches,
//! estimates, clock), and obs lane — so N sessions can plan, replan,
//! and execute concurrently without aliasing each other's state.
//!
//! The paper's flow manager is single-project; scaling the idea to a
//! design organisation means many concurrent projects over one store
//! root. The workspace keeps the sharing model trivial:
//!
//! * the **registry** (`name → project`) is behind one [`RwLock`] taken
//!   only to look up or register projects — never across planning work;
//! * each **project** is its own shard: an `Arc<Project>` holding a
//!   private [`RwLock<Hercules>`]. Sessions on different projects never
//!   contend; sessions on the *same* project serialize writes and share
//!   reads, which is exactly the aliasing discipline the storage engine
//!   needs (two writers on one persistent tail would tear it);
//! * each project carries a deterministic **obs lane** (1-based, in
//!   registration order), published to the trace collector on every
//!   [`update`](Project::update), so merged traces group by project no
//!   matter which OS thread did the work.
//!
//! Backends follow the store seam: an in-memory workspace puts every
//! project on an [`ArenaStore`]; a persistent workspace gives each
//! project a [`PersistentStore`] under `root/<name>/`, reopenable and
//! compactable (`herc gc`).
//!
//! # Example
//!
//! ```
//! use hercules::Workspace;
//! use schema::examples;
//! use simtools::{workload::Team, ToolLibrary};
//!
//! # fn main() -> Result<(), hercules::WorkspaceError> {
//! let ws = Workspace::in_memory();
//! for name in ["alu", "fpu"] {
//!     ws.create_project(
//!         name,
//!         examples::circuit_design(),
//!         ToolLibrary::standard(),
//!         Team::of_size(2),
//!         7,
//!     )?;
//! }
//! let alu = ws.project("alu").expect("registered");
//! let plan = alu.update(|h| h.plan("performance"))?;
//! assert_eq!(plan.len(), 2);
//! // The fpu project saw none of that.
//! let fpu = ws.project("fpu").expect("registered");
//! assert_eq!(fpu.read(|h| h.db().schedule_count()), 0);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use metadata::{ArenaStore, CompactionStats, MetadataDb, PersistentStore, Store, StoreError};
use schema::TaskSchema;
use simtools::workload::Team;
use simtools::ToolLibrary;

use crate::error::HerculesError;
use crate::manager::Hercules;

/// Errors from workspace registry operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkspaceError {
    /// A project with this name is already registered.
    DuplicateProject(String),
    /// No project with this name is registered.
    UnknownProject(String),
    /// The project name is unusable as a registry key / directory name.
    InvalidName(String),
    /// A persisted project has no saved session configuration
    /// (`project.conf`) — it predates config persistence or the file
    /// was corrupted; reopen it with an explicit schema via
    /// [`Workspace::open_project`].
    SessionConfig {
        /// The project whose config is missing or unreadable.
        project: String,
        /// What went wrong.
        message: String,
    },
    /// A storage-engine failure while creating or opening the
    /// project's store.
    Store(StoreError),
    /// A manager-level failure.
    Hercules(HerculesError),
}

impl fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkspaceError::DuplicateProject(n) => {
                write!(f, "project {n:?} already exists in the workspace")
            }
            WorkspaceError::UnknownProject(n) => {
                write!(f, "no project {n:?} in the workspace")
            }
            WorkspaceError::InvalidName(n) => write!(
                f,
                "invalid project name {n:?}: use non-empty names of letters, \
                 digits, '-', '_' or '.'"
            ),
            WorkspaceError::SessionConfig { project, message } => write!(
                f,
                "project {project:?} has no usable saved session config: {message} \
                 (reopen it with an explicit schema)"
            ),
            WorkspaceError::Store(e) => write!(f, "store: {e}"),
            WorkspaceError::Hercules(e) => write!(f, "manager: {e}"),
        }
    }
}

impl std::error::Error for WorkspaceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkspaceError::Store(e) => Some(e),
            WorkspaceError::Hercules(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for WorkspaceError {
    fn from(e: StoreError) -> Self {
        WorkspaceError::Store(e)
    }
}

impl From<HerculesError> for WorkspaceError {
    fn from(e: HerculesError) -> Self {
        WorkspaceError::Hercules(e)
    }
}

/// One project shard: a [`Hercules`] manager behind its own lock, plus
/// the project's identity (name, obs lane).
///
/// Obtained from [`Workspace::project`] /
/// [`Workspace::create_project`]; clone the `Arc` freely across
/// threads.
#[derive(Debug)]
pub struct Project {
    name: String,
    lane: u64,
    manager: RwLock<Hercules>,
}

impl Project {
    /// The project's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The project's deterministic obs lane (1-based, registration
    /// order). Lane 0 is the orchestrator by convention.
    pub fn lane(&self) -> u64 {
        self.lane
    }

    /// Runs `f` with shared read access to the manager. Concurrent
    /// readers on the same project proceed in parallel.
    pub fn read<R>(&self, f: impl FnOnce(&Hercules) -> R) -> R {
        let guard = self.manager.read().unwrap_or_else(|e| e.into_inner());
        f(&guard)
    }

    /// Runs `f` with exclusive write access to the manager, after
    /// publishing this project's obs lane for the current thread — so
    /// any spans the work records merge deterministically under this
    /// project regardless of which thread ran it.
    pub fn update<R>(&self, f: impl FnOnce(&mut Hercules) -> R) -> R {
        let mut guard = self.manager.write().unwrap_or_else(|e| e.into_inner());
        obs::Collector::set_lane(self.lane);
        f(&mut guard)
    }

    /// Compacts this project's store via [`Hercules::gc`] (takes the
    /// write lock).
    ///
    /// # Errors
    ///
    /// As [`Hercules::gc`].
    pub fn gc(&self) -> Result<CompactionStats, HerculesError> {
        self.update(Hercules::gc)
    }
}

/// The sharded multi-project registry. See the [module docs](self).
#[derive(Debug)]
pub struct Workspace {
    /// Project-store root for persistent workspaces; `None` keeps every
    /// project in memory.
    root: Option<PathBuf>,
    projects: RwLock<BTreeMap<String, Arc<Project>>>,
    next_lane: AtomicU64,
}

impl Workspace {
    /// A workspace whose projects all live on in-memory
    /// [`ArenaStore`]s — the default for tests and single-process
    /// sessions.
    pub fn in_memory() -> Workspace {
        Workspace {
            root: None,
            projects: RwLock::new(BTreeMap::new()),
            next_lane: AtomicU64::new(1),
        }
    }

    /// A workspace whose projects persist under `root/<name>/` as
    /// snapshot + journal-tail [`PersistentStore`]s.
    pub fn persistent(root: impl Into<PathBuf>) -> Workspace {
        Workspace {
            root: Some(root.into()),
            projects: RwLock::new(BTreeMap::new()),
            next_lane: AtomicU64::new(1),
        }
    }

    /// The persistent root, if this workspace has one.
    pub fn root(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// Creates and registers a new project initialised from `schema`.
    /// Persistent workspaces create `root/<name>/` with its first
    /// snapshot; the directory must not already hold a store.
    ///
    /// # Errors
    ///
    /// [`WorkspaceError::DuplicateProject`] if the name is taken,
    /// [`WorkspaceError::InvalidName`] for unusable names, or
    /// [`WorkspaceError::Store`] if the persistent store cannot be
    /// created.
    pub fn create_project(
        &self,
        name: &str,
        schema: TaskSchema,
        tools: ToolLibrary,
        team: Team,
        seed: u64,
    ) -> Result<Arc<Project>, WorkspaceError> {
        validate_name(name)?;
        let db = MetadataDb::for_schema(&schema);
        let store: Box<dyn Store> = match &self.root {
            None => {
                let mut arena = ArenaStore::new(db);
                arena.enable_journal();
                Box::new(arena)
            }
            Some(root) => {
                let dir = root.join(name);
                let store = PersistentStore::create(&dir, db)?;
                // Persist the session configuration beside the store so
                // the project can be reopened without re-supplying the
                // schema (`open_saved_project`, `herc serve`).
                write_project_conf(&dir, &schema, team.len(), seed)?;
                Box::new(store)
            }
        };
        self.register(name, Hercules::with_store(schema, tools, team, seed, store))
    }

    /// Reopens a persisted project from `root/<name>/` and registers
    /// it. The schema/tools/team/seed must match what the project was
    /// created with (they are session configuration, not store state).
    ///
    /// # Errors
    ///
    /// [`WorkspaceError::DuplicateProject`] if already registered,
    /// [`WorkspaceError::UnknownProject`] for in-memory workspaces, or
    /// [`WorkspaceError::Store`] if the store fails to open.
    pub fn open_project(
        &self,
        name: &str,
        schema: TaskSchema,
        tools: ToolLibrary,
        team: Team,
        seed: u64,
    ) -> Result<Arc<Project>, WorkspaceError> {
        validate_name(name)?;
        let Some(root) = &self.root else {
            return Err(WorkspaceError::UnknownProject(name.to_owned()));
        };
        let dir = root.join(name);
        // A missing store directory is a *name* error, not an I/O
        // accident: report it as the typed `UnknownProject` so callers
        // (CLI, server) can map it to a clean not-found.
        if !dir.join("CURRENT").is_file() {
            return Err(WorkspaceError::UnknownProject(name.to_owned()));
        }
        let store = PersistentStore::open(dir)?;
        self.register(
            name,
            Hercules::with_store(schema, tools, team, seed, Box::new(store)),
        )
    }

    /// Reopens a persisted project using the session configuration
    /// saved at create time (`root/<name>/project.conf`: schema source,
    /// team size, seed) — no schema file needed. This is how the
    /// workspace server re-serves projects across process restarts.
    ///
    /// # Errors
    ///
    /// [`WorkspaceError::UnknownProject`] if the project is not on
    /// disk (or the workspace is in-memory),
    /// [`WorkspaceError::DuplicateProject`] if already registered,
    /// [`WorkspaceError::SessionConfig`] if the saved config is
    /// missing or unreadable, or [`WorkspaceError::Store`] if the
    /// store fails to open.
    pub fn open_saved_project(&self, name: &str) -> Result<Arc<Project>, WorkspaceError> {
        validate_name(name)?;
        let Some(root) = &self.root else {
            return Err(WorkspaceError::UnknownProject(name.to_owned()));
        };
        let dir = root.join(name);
        if !dir.join("CURRENT").is_file() {
            return Err(WorkspaceError::UnknownProject(name.to_owned()));
        }
        let (schema, team_size, seed) = read_project_conf(&dir, name)?;
        let store = PersistentStore::open(dir)?;
        self.register(
            name,
            Hercules::with_store(
                schema,
                ToolLibrary::standard(),
                Team::of_size(team_size),
                seed,
                Box::new(store),
            ),
        )
    }

    /// Unregisters `name` and, for persistent workspaces, deletes its
    /// store directory — the D in the workspace's CRUD surface. The
    /// project may be registered, on disk, or both.
    ///
    /// # Errors
    ///
    /// [`WorkspaceError::UnknownProject`] if the name is neither
    /// registered nor on disk; [`WorkspaceError::Store`] if the
    /// directory exists but cannot be removed.
    pub fn remove_project(&self, name: &str) -> Result<(), WorkspaceError> {
        validate_name(name)?;
        let registered = {
            let mut projects = self.projects.write().unwrap_or_else(|e| e.into_inner());
            projects.remove(name).is_some()
        };
        let mut on_disk = false;
        if let Some(root) = &self.root {
            let dir = root.join(name);
            if dir.is_dir() {
                on_disk = true;
                fs::remove_dir_all(&dir).map_err(|e| {
                    WorkspaceError::Store(StoreError::Io {
                        path: dir,
                        message: e.to_string(),
                    })
                })?;
            }
        }
        if registered || on_disk {
            Ok(())
        } else {
            Err(WorkspaceError::UnknownProject(name.to_owned()))
        }
    }

    fn register(&self, name: &str, manager: Hercules) -> Result<Arc<Project>, WorkspaceError> {
        let mut projects = self.projects.write().unwrap_or_else(|e| e.into_inner());
        if projects.contains_key(name) {
            return Err(WorkspaceError::DuplicateProject(name.to_owned()));
        }
        let project = Arc::new(Project {
            name: name.to_owned(),
            lane: self.next_lane.fetch_add(1, Ordering::Relaxed),
            manager: RwLock::new(manager),
        });
        projects.insert(name.to_owned(), Arc::clone(&project));
        Ok(project)
    }

    /// The registered project named `name`, if any.
    pub fn project(&self, name: &str) -> Option<Arc<Project>> {
        let projects = self.projects.read().unwrap_or_else(|e| e.into_inner());
        projects.get(name).cloned()
    }

    /// Registered project names, sorted.
    pub fn names(&self) -> Vec<String> {
        let projects = self.projects.read().unwrap_or_else(|e| e.into_inner());
        projects.keys().cloned().collect()
    }

    /// Number of registered projects.
    pub fn len(&self) -> usize {
        let projects = self.projects.read().unwrap_or_else(|e| e.into_inner());
        projects.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Names of registered projects whose store has wedged itself
    /// after a failed durability operation, sorted. Healthy stores and
    /// in-memory arenas never appear here.
    pub fn wedged_projects(&self) -> Vec<String> {
        let handles: Vec<Arc<Project>> = {
            let projects = self.projects.read().unwrap_or_else(|e| e.into_inner());
            projects.values().cloned().collect()
        };
        handles
            .iter()
            .filter(|p| p.read(|h| h.store().wedged_reason().is_some()))
            .map(|p| p.name().to_owned())
            .collect()
    }

    /// Compacts every registered project in name order, returning
    /// per-project stats. Stops at the first failure.
    ///
    /// # Errors
    ///
    /// The failing project's [`HerculesError`], wrapped.
    pub fn gc_all(&self) -> Result<Vec<(String, CompactionStats)>, WorkspaceError> {
        let handles: Vec<Arc<Project>> = {
            let projects = self.projects.read().unwrap_or_else(|e| e.into_inner());
            projects.values().cloned().collect()
        };
        let mut out = Vec::with_capacity(handles.len());
        for project in handles {
            let stats = project.gc()?;
            out.push((project.name().to_owned(), stats));
        }
        Ok(out)
    }

    /// Project directories found on disk under `root` (subdirectories
    /// holding a store `CURRENT` file), sorted — the discovery half of
    /// [`open_project`](Workspace::open_project), usable before any
    /// project is registered.
    pub fn on_disk_projects(root: impl AsRef<Path>) -> Vec<String> {
        let mut names = Vec::new();
        let Ok(entries) = fs::read_dir(root.as_ref()) else {
            return names;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() && path.join("CURRENT").is_file() {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        names
    }
}

/// File name of the saved session configuration inside a persisted
/// project's directory.
const PROJECT_CONF: &str = "project.conf";

/// Magic first line of the saved session config. Public so operator
/// surfaces (`/healthz`) can report the on-disk schema version they
/// would accept.
pub const PROJECT_CONF_MAGIC: &str = "schedflow-project/v1";

/// Persists the session configuration (schema source, team size,
/// seed) beside a project's store, atomically.
fn write_project_conf(
    dir: &Path,
    schema: &TaskSchema,
    team_size: usize,
    seed: u64,
) -> Result<(), WorkspaceError> {
    // `to_source()` omits the `schema NAME;` declaration — prepend it
    // so the reopened project keeps its schema name.
    let text = format!(
        "{PROJECT_CONF_MAGIC}\nteam {team_size}\nseed {seed}\nschema:\nschema {};\n{}",
        schema.name(),
        schema.to_source()
    );
    let path = dir.join(PROJECT_CONF);
    obs::export::write_atomic(&path, &text).map_err(|e| {
        WorkspaceError::Store(StoreError::Io {
            path,
            message: e.to_string(),
        })
    })
}

/// Reads a saved session configuration back. The schema is re-parsed
/// from its [`TaskSchema::to_source`] form (pinned round-trippable by
/// the schema crate's parser property suite).
pub(crate) fn read_project_conf(
    dir: &Path,
    name: &str,
) -> Result<(TaskSchema, usize, u64), WorkspaceError> {
    let conf_err = |message: String| WorkspaceError::SessionConfig {
        project: name.to_owned(),
        message,
    };
    let path = dir.join(PROJECT_CONF);
    let text = fs::read_to_string(&path)
        .map_err(|e| conf_err(format!("cannot read {}: {e}", path.display())))?;
    let mut lines = text.splitn(5, '\n');
    if lines.next() != Some(PROJECT_CONF_MAGIC) {
        return Err(conf_err(format!("missing {PROJECT_CONF_MAGIC:?} header")));
    }
    let team_size: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("team "))
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| conf_err("bad or missing 'team N' line".to_owned()))?;
    let seed: u64 = lines
        .next()
        .and_then(|l| l.strip_prefix("seed "))
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| conf_err("bad or missing 'seed N' line".to_owned()))?;
    if lines.next() != Some("schema:") {
        return Err(conf_err("missing 'schema:' marker".to_owned()));
    }
    let source = lines.next().unwrap_or_default();
    let schema =
        schema::parse_schema(source).map_err(|e| conf_err(format!("schema re-parse: {e}")))?;
    Ok((schema, team_size.max(1), seed))
}

fn validate_name(name: &str) -> Result<(), WorkspaceError> {
    let ok = !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if ok {
        Ok(())
    } else {
        Err(WorkspaceError::InvalidName(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedule::WorkDays;
    use schema::examples;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("schedflow-workspace-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn add(ws: &Workspace, name: &str) -> Arc<Project> {
        ws.create_project(
            name,
            examples::circuit_design(),
            ToolLibrary::standard(),
            Team::of_size(2),
            7,
        )
        .unwrap()
    }

    #[test]
    fn projects_are_isolated() {
        let ws = Workspace::in_memory();
        let alu = add(&ws, "alu");
        let fpu = add(&ws, "fpu");
        alu.update(|h| h.plan("performance")).unwrap();
        assert!(alu.read(|h| h.db().schedule_count()) > 0);
        assert_eq!(fpu.read(|h| h.db().schedule_count()), 0);
        assert_eq!(ws.names(), ["alu", "fpu"]);
        assert_eq!(ws.len(), 2);
    }

    #[test]
    fn registry_rejects_duplicates_and_bad_names() {
        let ws = Workspace::in_memory();
        add(&ws, "alu");
        assert!(matches!(
            ws.create_project(
                "alu",
                examples::circuit_design(),
                ToolLibrary::standard(),
                Team::of_size(1),
                1,
            ),
            Err(WorkspaceError::DuplicateProject(_))
        ));
        for bad in ["", "..", "a/b", ".hidden"] {
            assert!(matches!(
                ws.create_project(
                    bad,
                    examples::circuit_design(),
                    ToolLibrary::standard(),
                    Team::of_size(1),
                    1,
                ),
                Err(WorkspaceError::InvalidName(_))
            ));
        }
        assert!(ws.project("ghost").is_none());
    }

    #[test]
    fn lanes_are_unique_and_ordered() {
        let ws = Workspace::in_memory();
        let a = add(&ws, "a");
        let b = add(&ws, "b");
        let c = add(&ws, "c");
        assert_eq!((a.lane(), b.lane(), c.lane()), (1, 2, 3));
    }

    #[test]
    fn persistent_workspace_roundtrips_and_discovers() {
        let root = scratch("roundtrip");
        {
            let ws = Workspace::persistent(&root);
            let alu = ws
                .create_project(
                    "alu",
                    examples::circuit_design(),
                    ToolLibrary::standard(),
                    Team::of_size(2),
                    7,
                )
                .unwrap();
            alu.update(|h| {
                h.plan("performance")?;
                h.execute("performance")
            })
            .unwrap();
        }
        assert_eq!(Workspace::on_disk_projects(&root), ["alu"]);
        let ws = Workspace::persistent(&root);
        let alu = ws
            .open_project(
                "alu",
                examples::circuit_design(),
                ToolLibrary::standard(),
                Team::of_size(2),
                7,
            )
            .unwrap();
        assert!(alu.read(|h| h.db().current_plan("Create").unwrap().is_complete()));
        assert!(alu.read(|h| h.clock()) > WorkDays::ZERO);
        // gc over the workspace compacts the reopened store.
        let stats = ws.gc_all().unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.tail_ops_after, 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn open_missing_project_is_typed_unknown() {
        let root = scratch("unknown");
        fs::create_dir_all(&root).unwrap();
        let ws = Workspace::persistent(&root);
        // Registered root, unregistered name: typed UnknownProject,
        // not a raw store I/O error.
        assert!(matches!(
            ws.open_project(
                "ghost",
                examples::circuit_design(),
                ToolLibrary::standard(),
                Team::of_size(1),
                1,
            ),
            Err(WorkspaceError::UnknownProject(n)) if n == "ghost"
        ));
        assert!(matches!(
            ws.open_saved_project("ghost"),
            Err(WorkspaceError::UnknownProject(_))
        ));
        // Missing root entirely: same typed error.
        let ws = Workspace::persistent(root.join("nope"));
        assert!(matches!(
            ws.open_saved_project("ghost"),
            Err(WorkspaceError::UnknownProject(_))
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn saved_session_config_roundtrips() {
        let root = scratch("conf");
        {
            let ws = Workspace::persistent(&root);
            let alu = ws
                .create_project(
                    "alu",
                    examples::circuit_design(),
                    ToolLibrary::standard(),
                    Team::of_size(3),
                    11,
                )
                .unwrap();
            alu.update(|h| {
                h.plan("performance")?;
                h.execute("performance")
            })
            .unwrap();
        }
        // Reopen with *no* schema in hand: the saved config supplies
        // schema, team size, and seed.
        let ws = Workspace::persistent(&root);
        let alu = ws.open_saved_project("alu").unwrap();
        alu.read(|h| {
            assert_eq!(h.schema().name(), "circuit");
            assert_eq!(h.team().len(), 3);
            assert!(h.db().current_plan("Create").unwrap().is_complete());
        });
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn session_config_corruption_is_typed() {
        let root = scratch("confbad");
        {
            let ws = Workspace::persistent(&root);
            add(&ws, "alu");
        }
        fs::write(root.join("alu").join(super::PROJECT_CONF), "garbage\n").unwrap();
        let ws = Workspace::persistent(&root);
        assert!(matches!(
            ws.open_saved_project("alu"),
            Err(WorkspaceError::SessionConfig { project, .. }) if project == "alu"
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn remove_project_unregisters_and_deletes() {
        // In-memory: registry removal only.
        let ws = Workspace::in_memory();
        add(&ws, "alu");
        ws.remove_project("alu").unwrap();
        assert!(ws.project("alu").is_none());
        assert!(matches!(
            ws.remove_project("alu"),
            Err(WorkspaceError::UnknownProject(_))
        ));
        // Persistent: the store directory goes too, even when the
        // project was never registered in this process.
        let root = scratch("remove");
        {
            let ws = Workspace::persistent(&root);
            add(&ws, "alu");
        }
        let ws = Workspace::persistent(&root);
        ws.remove_project("alu").unwrap();
        assert_eq!(Workspace::on_disk_projects(&root), Vec::<String>::new());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn open_project_requires_persistence() {
        let ws = Workspace::in_memory();
        assert!(matches!(
            ws.open_project(
                "alu",
                examples::circuit_design(),
                ToolLibrary::standard(),
                Team::of_size(1),
                1,
            ),
            Err(WorkspaceError::UnknownProject(_))
        ));
    }

    #[test]
    fn concurrent_sessions_do_not_alias() {
        // Four threads, one project each, full plan/execute/replan
        // cycles — then every store passes its own invariants and the
        // per-project state is exactly what a serial run produces.
        let ws = Arc::new(Workspace::in_memory());
        let names = ["p0", "p1", "p2", "p3"];
        for name in names {
            add(&ws, name);
        }
        std::thread::scope(|scope| {
            for name in names {
                let ws = Arc::clone(&ws);
                scope.spawn(move || {
                    let project = ws.project(name).unwrap();
                    project
                        .update(|h| {
                            h.plan("performance")?;
                            h.execute("performance")?;
                            h.replan("performance")
                        })
                        .unwrap();
                });
            }
        });
        let serial = {
            let mut h = Hercules::new(
                examples::circuit_design(),
                ToolLibrary::standard(),
                Team::of_size(2),
                7,
            );
            h.enable_journal();
            h.plan("performance").unwrap();
            h.execute("performance").unwrap();
            h.replan("performance").unwrap();
            h.db().dump()
        };
        for name in names {
            let project = ws.project(name).unwrap();
            project.read(|h| {
                h.db().check_invariants().unwrap();
                assert_eq!(h.db().dump(), serial, "{name} diverged from serial run");
            });
        }
    }
}
