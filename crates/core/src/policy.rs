//! Pluggable scheduling policies over the executor's ready queue.
//!
//! [`Hercules::execute`](crate::Hercules::execute) runs an event-driven
//! engine: activities enter a *ready queue* when every input entity has
//! been published, and a [`SchedulingPolicy`] decides which ready
//! activity dispatches next — and, on an explicit
//! [`Cluster`](simtools::cluster::Cluster), onto which worker. The
//! engine owns every invariant (dependency order, fault handling,
//! blocked-never-abort, degradation); the policy only chooses among
//! moves the engine has already proven legal.
//!
//! Four built-in policies ship with the crate, selectable by name
//! through [`ExecutionPolicy`]:
//!
//! * [`Fifo`] — dependency-order dispatch, the default. On an implicit
//!   per-designer cluster it reproduces the classic serial topo walk
//!   byte-for-byte.
//! * [`MinSlack`] — critical-path-first: dispatch the ready activity
//!   with the least total slack in the scope's CPM analysis.
//! * [`Heft`] — HEFT-style: dispatch the ready activity with the
//!   highest upward rank onto the worker with the earliest estimated
//!   finish (speed- and transfer-aware).
//! * [`WorkStealing`] — locality-aware: the earliest-free worker pulls
//!   the ready activity with the most input bytes already local to it,
//!   stealing remote work only when nothing local is queued.

use std::fmt;

use schedule::WorkDays;

/// One dispatchable activity in the executor's ready queue: every
/// input entity is published, so dispatching it is legal under the
/// precedence constraints.
#[derive(Debug, Clone)]
pub struct ReadyTask<'a> {
    /// The activity's name (borrowed from the execution scope).
    pub activity: &'a str,
    /// Position in the task tree's dependency order — [`Fifo`]'s key
    /// and every policy's deterministic tie-break.
    pub topo_index: usize,
    /// The manager's current duration estimate (history first, then
    /// intuition, then the tool model).
    pub estimate: WorkDays,
    /// Total slack from CPM over the execution scope at dispatch-time
    /// estimates; zero on the critical path.
    pub slack: WorkDays,
    /// Upward rank: estimated critical-path length from this activity
    /// (inclusive) to the scope's sink — HEFT's priority key.
    pub rank: WorkDays,
    /// When the inputs are all available, before any transfer delay.
    pub ready_at: WorkDays,
    /// Total input bytes the activity will read.
    pub input_bytes: u64,
    /// Per input entity: the worker that produced it (`None` = shared
    /// storage) and its size in bytes — the locality signal.
    pub inputs: Vec<(Option<usize>, u64)>,
    /// The worker this activity is bound to, when the engine runs on
    /// an implicit per-designer cluster (the assignee's slot). `None`
    /// on explicit clusters, where placement belongs to the policy.
    pub home_worker: Option<usize>,
}

/// One worker's state at a dispatch decision.
#[derive(Debug, Clone, Copy)]
pub struct WorkerSnapshot {
    /// When the worker finishes its last dispatched activity.
    pub free_at: WorkDays,
    /// The worker's speed factor (nominal duration / speed = actual).
    pub speed: f64,
}

/// A policy's decision: which ready task to dispatch, and on which
/// worker. For tasks with a [`home_worker`](ReadyTask::home_worker)
/// binding the engine overrides `worker` with the bound slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Index into [`DispatchContext::ready`].
    pub task: usize,
    /// Worker index to run it on.
    pub worker: usize,
}

/// Everything a policy may consult when choosing the next dispatch.
pub struct DispatchContext<'a> {
    /// The ready queue: activities whose inputs are all published.
    /// Never empty when [`SchedulingPolicy::select`] is called.
    pub ready: &'a [ReadyTask<'a>],
    /// Worker availability and speeds.
    pub workers: &'a [WorkerSnapshot],
    /// The project clock the engine started from.
    pub now: WorkDays,
    transfer: &'a dyn Fn(Option<usize>, usize, u64) -> f64,
}

impl fmt::Debug for DispatchContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DispatchContext")
            .field("ready", &self.ready)
            .field("workers", &self.workers)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl<'a> DispatchContext<'a> {
    pub(crate) fn new(
        ready: &'a [ReadyTask<'a>],
        workers: &'a [WorkerSnapshot],
        now: WorkDays,
        transfer: &'a dyn Fn(Option<usize>, usize, u64) -> f64,
    ) -> Self {
        DispatchContext {
            ready,
            workers,
            now,
            transfer,
        }
    }

    /// Simulated days to move `bytes` produced on `from` to worker
    /// `to` (zero for local or shared-storage data).
    pub fn transfer_delay(&self, from: Option<usize>, to: usize, bytes: u64) -> f64 {
        (self.transfer)(from, to, bytes)
    }

    /// When `task`'s inputs are all staged on worker `w`, transfer
    /// delays included.
    pub fn ready_at_on(&self, task: &ReadyTask<'_>, w: usize) -> WorkDays {
        let mut at = task.ready_at;
        for &(from, bytes) in &task.inputs {
            let delay = self.transfer_delay(from, w, bytes);
            if delay > 0.0 {
                at = at.max(task.ready_at + WorkDays::new(delay));
            }
        }
        at
    }

    /// The estimated finish of `task` on worker `w`: wait for the
    /// worker and the staged inputs, then run the estimate at the
    /// worker's speed.
    pub fn estimated_finish(&self, task: &ReadyTask<'_>, w: usize) -> WorkDays {
        let start = self.ready_at_on(task, w).max(self.workers[w].free_at);
        start + WorkDays::new(task.estimate.days() / self.workers[w].speed)
    }

    /// The earliest-free worker (lowest index on ties).
    pub fn earliest_free_worker(&self) -> usize {
        let mut best = 0;
        for (w, snap) in self.workers.iter().enumerate().skip(1) {
            if snap.free_at.days() < self.workers[best].free_at.days() {
                best = w;
            }
        }
        best
    }

    /// The worker minimizing `task`'s estimated finish (lowest index
    /// on ties), honoring a home binding when present.
    pub fn best_finish_worker(&self, task: &ReadyTask<'_>) -> usize {
        if let Some(home) = task.home_worker {
            return home;
        }
        let mut best = 0;
        let mut best_finish = self.estimated_finish(task, 0);
        for w in 1..self.workers.len() {
            let finish = self.estimated_finish(task, w);
            if finish.days() < best_finish.days() {
                best = w;
                best_finish = finish;
            }
        }
        best
    }

    /// Input bytes of `task` already resident on worker `w`.
    pub fn local_bytes(&self, task: &ReadyTask<'_>, w: usize) -> u64 {
        task.inputs
            .iter()
            .filter(|(from, _)| *from == Some(w))
            .map(|&(_, bytes)| bytes)
            .sum()
    }
}

/// A scheduling policy over the executor's ready queue.
///
/// The engine calls [`select`](SchedulingPolicy::select) whenever the
/// ready queue is non-empty; the policy returns which task to dispatch
/// and where. Implementations must be deterministic — the whole
/// simulation stack guarantees same-seed reproducibility, and the
/// chaos suite holds every policy to the PR-3 invariants (faults
/// never abort, blocked activities never complete, journal replay
/// reproduces the live database).
pub trait SchedulingPolicy: fmt::Debug {
    /// The policy's name, as accepted by [`ExecutionPolicy::parse`]
    /// (or any label for custom implementations).
    fn name(&self) -> &str;

    /// Chooses the next dispatch. `ctx.ready` is never empty; the
    /// returned [`Dispatch::task`] must index into it and
    /// [`Dispatch::worker`] into `ctx.workers`.
    fn select(&mut self, ctx: &DispatchContext<'_>) -> Dispatch;

    /// Whether the policy reads the schedule-derived metrics on
    /// [`ReadyTask`] (`estimate`, `slack`, `rank`). The engine skips
    /// the CPM pass that computes them for policies answering `false`
    /// — those fields are then zero. Defaults to `true`; override only
    /// in policies that decide purely from topology, queue state, and
    /// data locality.
    fn needs_schedule_metrics(&self) -> bool {
        true
    }
}

/// Dependency-order dispatch: always the ready task with the lowest
/// topo index, placed on its home worker or the earliest-free one.
/// The default policy — on an implicit per-designer cluster it is
/// exactly the classic serial topo-order walk.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedulingPolicy for Fifo {
    fn name(&self) -> &str {
        "fifo"
    }

    fn select(&mut self, ctx: &DispatchContext<'_>) -> Dispatch {
        let task = argmin_by(ctx.ready, |t| (t.topo_index, 0.0));
        let worker = ctx.ready[task]
            .home_worker
            .unwrap_or_else(|| ctx.earliest_free_worker());
        Dispatch { task, worker }
    }

    fn needs_schedule_metrics(&self) -> bool {
        false
    }
}

/// Critical-path-first dispatch: the ready task with the least total
/// slack (ties to dependency order), placed on the worker with the
/// earliest estimated finish. Fed by the `schedule` crate's CPM slack
/// arrays over the execution scope.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinSlack;

impl SchedulingPolicy for MinSlack {
    fn name(&self) -> &str {
        "minslack"
    }

    fn select(&mut self, ctx: &DispatchContext<'_>) -> Dispatch {
        let task = argmin_by(ctx.ready, |t| (t.topo_index, t.slack.days()));
        let worker = ctx.best_finish_worker(&ctx.ready[task]);
        Dispatch { task, worker }
    }
}

/// HEFT-style dispatch (heterogeneous earliest finish time): the ready
/// task with the highest upward rank, placed on the worker minimizing
/// its estimated finish — speed factors and transfer delays included.
#[derive(Debug, Clone, Copy, Default)]
pub struct Heft;

impl SchedulingPolicy for Heft {
    fn name(&self) -> &str {
        "heft"
    }

    fn select(&mut self, ctx: &DispatchContext<'_>) -> Dispatch {
        let task = argmin_by(ctx.ready, |t| (t.topo_index, -t.rank.days()));
        let worker = ctx.best_finish_worker(&ctx.ready[task]);
        Dispatch { task, worker }
    }
}

/// Locality-aware work-stealing: the earliest-free worker pulls the
/// ready task with the most input bytes already local to it, stealing
/// the oldest remote-fed task when nothing local is queued. On an
/// implicit per-designer cluster (hard bindings) it degenerates to
/// each designer draining their own queue in dependency order.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkStealing;

impl SchedulingPolicy for WorkStealing {
    fn name(&self) -> &str {
        "worksteal"
    }

    fn select(&mut self, ctx: &DispatchContext<'_>) -> Dispatch {
        if ctx.ready.iter().all(|t| t.home_worker.is_some()) {
            // Hard bindings: the bound worker closest to idle pulls its
            // oldest queued task.
            let task = argmin_by(ctx.ready, |t| {
                let home = t.home_worker.expect("all bound");
                (t.topo_index, ctx.workers[home].free_at.days())
            });
            let worker = ctx.ready[task].home_worker.expect("all bound");
            return Dispatch { task, worker };
        }
        let thief = ctx.earliest_free_worker();
        // Most local bytes first; a worker with no local work steals
        // the oldest ready task outright.
        let task = argmin_by(ctx.ready, |t| {
            (t.topo_index, -(ctx.local_bytes(t, thief) as f64))
        });
        Dispatch {
            task,
            worker: thief,
        }
    }

    fn needs_schedule_metrics(&self) -> bool {
        false
    }
}

/// Returns the index minimizing `(key, tie topo_index)` — keys compare
/// on the `f64` first, then the topo index, so every policy breaks
/// ties identically and deterministically.
fn argmin_by<F>(ready: &[ReadyTask<'_>], key: F) -> usize
where
    F: Fn(&ReadyTask<'_>) -> (usize, f64),
{
    let mut best = 0;
    let (mut best_topo, mut best_key) = key(&ready[0]);
    for (i, t) in ready.iter().enumerate().skip(1) {
        let (topo, k) = key(t);
        if k < best_key || (k == best_key && topo < best_topo) {
            best = i;
            best_topo = topo;
            best_key = k;
        }
    }
    best
}

/// The built-in policies, selectable by name — the form the CLI
/// (`herc ws run --policy`), the serve `run` endpoint (`?policy=`),
/// and [`Hercules::set_execution_policy`](crate::Hercules::set_execution_policy)
/// traffic in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionPolicy {
    /// Dependency-order dispatch ([`Fifo`]) — the default.
    #[default]
    Fifo,
    /// Critical-path-first ([`MinSlack`]).
    MinSlack,
    /// HEFT-style earliest estimated finish ([`Heft`]).
    Heft,
    /// Locality-aware work-stealing ([`WorkStealing`]).
    WorkStealing,
}

impl ExecutionPolicy {
    /// Every built-in policy, in documentation order.
    pub const ALL: [ExecutionPolicy; 4] = [
        ExecutionPolicy::Fifo,
        ExecutionPolicy::MinSlack,
        ExecutionPolicy::Heft,
        ExecutionPolicy::WorkStealing,
    ];

    /// The policy's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionPolicy::Fifo => "fifo",
            ExecutionPolicy::MinSlack => "minslack",
            ExecutionPolicy::Heft => "heft",
            ExecutionPolicy::WorkStealing => "worksteal",
        }
    }

    /// Parses a policy name, accepting the canonical names plus common
    /// spellings (`min-slack`, `work-stealing`, …). Case-insensitive.
    pub fn parse(s: &str) -> Option<Self> {
        let folded: String = s
            .chars()
            .filter(|c| *c != '-' && *c != '_')
            .map(|c| c.to_ascii_lowercase())
            .collect();
        match folded.as_str() {
            "fifo" | "topo" => Some(ExecutionPolicy::Fifo),
            "minslack" | "slack" | "criticalpath" | "cp" => Some(ExecutionPolicy::MinSlack),
            "heft" | "earliestfinish" | "eft" => Some(ExecutionPolicy::Heft),
            "worksteal" | "workstealing" | "steal" => Some(ExecutionPolicy::WorkStealing),
            _ => None,
        }
    }

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn SchedulingPolicy + Send> {
        match self {
            ExecutionPolicy::Fifo => Box::new(Fifo),
            ExecutionPolicy::MinSlack => Box::new(MinSlack),
            ExecutionPolicy::Heft => Box::new(Heft),
            ExecutionPolicy::WorkStealing => Box::new(WorkStealing),
        }
    }
}

impl fmt::Display for ExecutionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ExecutionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExecutionPolicy::parse(s).ok_or_else(|| {
            format!(
                "unknown execution policy {s:?} (expected one of: {})",
                ExecutionPolicy::ALL.map(|p| p.name()).join(", ")
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(topo: usize, slack: f64, rank: f64, home: Option<usize>) -> ReadyTask<'static> {
        ReadyTask {
            activity: "a",
            topo_index: topo,
            estimate: WorkDays::new(1.0),
            slack: WorkDays::new(slack),
            rank: WorkDays::new(rank),
            ready_at: WorkDays::ZERO,
            input_bytes: 0,
            inputs: Vec::new(),
            home_worker: home,
        }
    }

    fn workers(frees: &[f64]) -> Vec<WorkerSnapshot> {
        frees
            .iter()
            .map(|&f| WorkerSnapshot {
                free_at: WorkDays::new(f),
                speed: 1.0,
            })
            .collect()
    }

    #[test]
    fn fifo_takes_lowest_topo_index() {
        let ready = vec![task(4, 0.0, 9.0, None), task(1, 5.0, 1.0, None)];
        let ws = workers(&[3.0, 0.0]);
        let zero = |_: Option<usize>, _: usize, _: u64| 0.0;
        let ctx = DispatchContext::new(&ready, &ws, WorkDays::ZERO, &zero);
        let d = Fifo.select(&ctx);
        assert_eq!(d.task, 1);
        assert_eq!(d.worker, 1, "earliest-free worker");
    }

    #[test]
    fn minslack_prefers_critical_work() {
        let ready = vec![task(0, 5.0, 2.0, None), task(3, 0.0, 9.0, None)];
        let ws = workers(&[0.0]);
        let zero = |_: Option<usize>, _: usize, _: u64| 0.0;
        let ctx = DispatchContext::new(&ready, &ws, WorkDays::ZERO, &zero);
        assert_eq!(MinSlack.select(&ctx).task, 1);
    }

    #[test]
    fn heft_prefers_highest_rank_and_fastest_finish() {
        let ready = vec![task(0, 0.0, 2.0, None), task(1, 0.0, 9.0, None)];
        let mut ws = workers(&[0.0, 0.0]);
        ws[1].speed = 4.0;
        let zero = |_: Option<usize>, _: usize, _: u64| 0.0;
        let ctx = DispatchContext::new(&ready, &ws, WorkDays::ZERO, &zero);
        let d = Heft.select(&ctx);
        assert_eq!(d.task, 1, "highest upward rank first");
        assert_eq!(d.worker, 1, "4x speed wins the estimated finish");
    }

    #[test]
    fn worksteal_prefers_local_bytes() {
        let mut near = task(0, 0.0, 1.0, None);
        near.inputs = vec![(Some(1), 4096)];
        let mut far = task(1, 0.0, 1.0, None);
        far.inputs = vec![(Some(0), 4096)];
        let ready = vec![far.clone(), near.clone()];
        let ws = workers(&[5.0, 0.0]); // worker 1 is idle first
        let zero = |_: Option<usize>, _: usize, _: u64| 0.0;
        let ctx = DispatchContext::new(&ready, &ws, WorkDays::ZERO, &zero);
        let d = WorkStealing.select(&ctx);
        assert_eq!(d.worker, 1);
        assert_eq!(d.task, 1, "the idle worker pulls its local task");
    }

    #[test]
    fn home_bindings_are_honored() {
        let ready = vec![task(2, 0.0, 1.0, Some(0)), task(5, 0.0, 9.0, Some(1))];
        let ws = workers(&[9.0, 0.0]);
        let zero = |_: Option<usize>, _: usize, _: u64| 0.0;
        let ctx = DispatchContext::new(&ready, &ws, WorkDays::ZERO, &zero);
        // Work-stealing under hard bindings: the freer bound worker
        // drains its own queue.
        let d = WorkStealing.select(&ctx);
        assert_eq!((d.task, d.worker), (1, 1));
        // Best-finish placement returns the binding untouched.
        assert_eq!(ctx.best_finish_worker(&ready[0]), 0);
    }

    #[test]
    fn names_parse_round_trip() {
        for p in ExecutionPolicy::ALL {
            assert_eq!(ExecutionPolicy::parse(p.name()), Some(p));
            assert_eq!(p.name().parse::<ExecutionPolicy>().unwrap(), p);
            assert_eq!(p.build().name(), p.name());
        }
        assert_eq!(
            ExecutionPolicy::parse("Min-Slack"),
            Some(ExecutionPolicy::MinSlack)
        );
        assert_eq!(
            ExecutionPolicy::parse("work_stealing"),
            Some(ExecutionPolicy::WorkStealing)
        );
        assert_eq!(ExecutionPolicy::parse("lottery"), None);
        assert!("lottery".parse::<ExecutionPolicy>().is_err());
        assert_eq!(ExecutionPolicy::default(), ExecutionPolicy::Fifo);
        assert_eq!(ExecutionPolicy::Heft.to_string(), "heft");
    }
}
