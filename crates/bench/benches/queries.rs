//! B4 — metadata query latency: last-duration, plan-evolution chains,
//! and status rollups on a populated database.
//!
//! Expected shape: microseconds — queries into schedule data are cheap
//! enough to run on every UI refresh, which is what makes the Gantt
//! view and browser interactive.

use std::time::Duration;

use bench::pipeline_manager;
use criterion::{criterion_group, criterion_main, Criterion};
use hercules::Hercules;

fn populated(stages: usize) -> Hercules {
    let mut h = pipeline_manager(stages, 4, 1);
    let target = format!("d{stages}");
    // Several plan/execute cycles to grow history and versions.
    h.plan(&target).expect("plannable");
    h.execute(&target).expect("executable");
    h.plan(&target).expect("plannable");
    h.plan(&target).expect("plannable");
    h
}

fn bench_queries(c: &mut Criterion) {
    let h = populated(50);
    let current = h.db().current_plan("Stage25").expect("planned").id();

    c.bench_function("query_last_duration", |b| {
        b.iter(|| h.db().last_duration(std::hint::black_box("Stage25")))
    });
    c.bench_function("query_plan_evolution", |b| {
        b.iter(|| h.db().plan_evolution(std::hint::black_box(current)))
    });
    c.bench_function("query_status_report", |b| b.iter(|| h.status()));
    c.bench_function("query_completed_rollup", |b| {
        b.iter(|| h.db().completed_activities())
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_queries
}
criterion_main!(benches);
