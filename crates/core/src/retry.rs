//! Retry and timeout policy for fault-tolerant execution.
//!
//! When the tool substrate injects failures (see
//! [`simtools::FaultPlan`]), the execution engine does what a real
//! design team does: retry transient crashes with backoff, kill hung
//! runs at a timeout, and — when an activity keeps failing — mark it
//! *blocked* and replan around it rather than abort the session.
//!
//! All budgets are expressed in simulated [`WorkDays`], the same unit
//! as tool durations, so fault handling shows up in the schedule like
//! any other work: a transient crash costs the fraction of the run
//! that elapsed before the crash plus the backoff; a hang costs the
//! full [`timeout`](RetryPolicy::timeout).

use schedule::WorkDays;

/// How the execution engine responds to injected tool failures: capped
/// exponential backoff between retries, a kill timeout for hangs, and
/// two exhaustion criteria (attempt count, burned time) after which the
/// activity is declared blocked.
///
/// The default policy retries up to [`max_attempts`] times with
/// backoff 0.25 → 0.5 → 1.0 → 2.0 days (capped at
/// [`max_backoff`]), kills hangs after 1 working day, and blocks an
/// activity once faults have burned more than 10 working days.
///
/// [`max_attempts`]: RetryPolicy::max_attempts
/// [`max_backoff`]: RetryPolicy::max_backoff
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum failed attempts (transient or hang) per activity before
    /// it is declared blocked. Successful runs and corrupt-output runs
    /// do not count against this budget — they are *iterations*, not
    /// attempts.
    pub max_attempts: u32,
    /// Backoff after the first failed attempt.
    pub base_backoff: WorkDays,
    /// Multiplier applied to the backoff after each further failure.
    pub backoff_factor: f64,
    /// Upper bound on any single backoff interval.
    pub max_backoff: WorkDays,
    /// Wall-clock budget charged for a hung run before it is killed.
    pub timeout: WorkDays,
    /// Total simulated time an activity may burn on faults (crash
    /// fractions, timeouts, backoffs) before it is declared blocked,
    /// regardless of the attempt count.
    pub activity_budget: WorkDays,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: WorkDays::new(0.25),
            backoff_factor: 2.0,
            max_backoff: WorkDays::new(2.0),
            timeout: WorkDays::new(1.0),
            activity_budget: WorkDays::new(10.0),
        }
    }
}

impl RetryPolicy {
    /// The backoff interval after the `attempt`-th failed attempt
    /// (1-based): `base * factor^(attempt-1)`, capped at
    /// [`max_backoff`](RetryPolicy::max_backoff). Attempt 0 returns
    /// zero.
    pub fn backoff(&self, attempt: u32) -> WorkDays {
        if attempt == 0 {
            return WorkDays::ZERO;
        }
        let exp = (attempt - 1).min(63) as i32;
        let raw = self.base_backoff.days() * self.backoff_factor.powi(exp);
        WorkDays::new(raw.min(self.max_backoff.days()))
    }

    /// Total backoff time if all `attempts` failed — an upper bound the
    /// chaos suite uses to sanity-check burned fault time.
    pub fn total_backoff(&self, attempts: u32) -> WorkDays {
        (1..=attempts)
            .map(|a| self.backoff(a))
            .fold(WorkDays::ZERO, |acc, b| acc + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), WorkDays::ZERO);
        assert_eq!(p.backoff(1), WorkDays::new(0.25));
        assert_eq!(p.backoff(2), WorkDays::new(0.5));
        assert_eq!(p.backoff(3), WorkDays::new(1.0));
        assert_eq!(p.backoff(4), WorkDays::new(2.0));
        // Capped from here on.
        assert_eq!(p.backoff(5), WorkDays::new(2.0));
        assert_eq!(p.backoff(40), WorkDays::new(2.0));
    }

    #[test]
    fn total_backoff_sums_intervals() {
        let p = RetryPolicy::default();
        assert_eq!(p.total_backoff(3), WorkDays::new(0.25 + 0.5 + 1.0));
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(u32::MAX), p.max_backoff);
    }
}
