//! End-to-end live telemetry: one request's trace id must correlate
//! every observability surface the server exposes — the echoed
//! `x-herc-trace` header, the JSONL access log, the flight recorder
//! (`GET /debug/flight?trace=`), and the labeled metrics that
//! `herc top` renders. All over real TCP against a served workspace,
//! so header plumbing, worker threads, and the per-thread trace slots
//! are all in the loop.

use std::sync::Arc;

use hercules::Workspace;
use obs::export::{parse_json, validate_jsonl, validate_prometheus, JsonValue};
use schema::examples;
use serve::{Client, Server, ServerConfig};

const TRACE_ID: &str = "00000000feedf00d";

fn schema_source() -> String {
    format!(
        "schema circuit;\n{}",
        examples::circuit_design().to_source()
    )
}

#[test]
fn one_trace_id_correlates_header_log_flight_and_metrics() {
    let dir = std::env::temp_dir().join(format!(
        "schedflow-telemetry-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("access.jsonl");

    let server = Server::start(
        Arc::new(Workspace::in_memory()),
        ServerConfig {
            workers: 2,
            access_log: Some(log_path.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let plain = Client::new(server.addr());
    let traced = Client::new(server.addr()).with_header("x-herc-trace", TRACE_ID);

    // Seed a project, then issue the request under test with a client-
    // chosen trace id.
    let resp = plain
        .post("/projects/alu?team=2&seed=7", schema_source().as_bytes())
        .expect("create");
    assert_eq!(resp.status, 201, "{}", resp.body);
    let resp = traced
        .post("/projects/alu/plan?target=performance", b"")
        .expect("plan");
    assert_eq!(resp.status, 200, "{}", resp.body);

    // 1. The header echoes the id.
    assert_eq!(resp.header("x-herc-trace"), Some(TRACE_ID));

    // 2. The flight recorder kept the request's span, filterable by id.
    let resp = plain
        .get(&format!("/debug/flight?trace={TRACE_ID}"))
        .expect("flight");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let dump = parse_json(&resp.body).expect("flight dump is JSON");
    let total = dump
        .get("total_records")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    assert!(
        total >= 2.0,
        "want the request span pair, got: {}",
        resp.body
    );
    assert!(resp.body.contains("\"serve.request\""), "{}", resp.body);
    assert!(
        resp.body.contains("\"hercules.plan\""),
        "kernel spans must carry the request id across layers: {}",
        resp.body
    );

    // 3. Prometheus exposition validates and carries the labeled
    //    series for the traced endpoint.
    let resp = plain.get("/metrics?format=prom").expect("prom");
    assert_eq!(resp.status, 200);
    validate_prometheus(&resp.body).expect("exposition must validate");
    assert!(
        resp.body.contains("serve_requests{endpoint=\"plan\"}"),
        "{}",
        resp.body
    );
    assert!(
        resp.body
            .contains("serve_latency_bucket{endpoint=\"plan\",le=\"0.25\"}"),
        "{}",
        resp.body
    );

    // 4. The JSON metrics carry interpolated percentiles for the same
    //    histograms (`herc top`'s source).
    let resp = plain.get("/metrics").expect("metrics json");
    let metrics = parse_json(&resp.body).expect("metrics JSON");
    let plan_latency = metrics
        .get("serve.latency{endpoint=\"plan\"}")
        .expect("labeled plan histogram");
    for q in ["p50", "p95", "p99"] {
        assert!(
            plan_latency.get(q).and_then(|v| v.as_f64()).is_some(),
            "missing {q}: {}",
            resp.body
        );
    }

    server.shutdown();

    // 5. The access log has exactly one line with this trace id, on
    //    the right endpoint, with a 200.
    let text = std::fs::read_to_string(&log_path).unwrap();
    validate_jsonl(&text).expect("access log is JSONL");
    let lines: Vec<&str> = text.lines().filter(|l| l.contains(TRACE_ID)).collect();
    assert_eq!(lines.len(), 1, "one traced request, log:\n{text}");
    let entry = parse_json(lines[0]).unwrap();
    assert_eq!(entry.get("endpoint").and_then(|v| v.as_str()), Some("plan"));
    assert_eq!(entry.get("status").and_then(|v| v.as_f64()), Some(200.0));
    assert_eq!(
        entry.get("tenant").and_then(|v| v.as_str()),
        Some("anonymous"),
        "open-mode requests log the anonymous tenant"
    );
    assert!(matches!(
        entry.get("coalesced"),
        Some(JsonValue::Bool(false))
    ));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generated_trace_ids_are_unique_per_request_and_logged() {
    let server =
        Server::start(Arc::new(Workspace::in_memory()), ServerConfig::default()).expect("bind");
    let client = Client::new(server.addr());
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..8 {
        let resp = client.get("/projects").expect("list");
        let id = resp
            .header("x-herc-trace")
            .expect("every response echoes an id")
            .to_owned();
        assert_eq!(id.len(), 16, "{id}");
        assert_ne!(id, "0000000000000000");
        assert!(seen.insert(id.clone()), "trace id {id} repeated");
    }
    server.shutdown();
}
