//! Offline micro-benchmark harness: warmup + fixed-iteration sampling,
//! median/p95/min wall-times, and machine-readable JSON emission.
//!
//! Replaces Criterion for this workspace: no network, no plotting, no
//! adaptive sampling — a fixed, deterministic amount of work per bench
//! so runs are comparable across commits. Results accumulate into a
//! single report (`BENCH_schedflow.json` at the workspace root) giving
//! the repo a perf trajectory.
//!
//! Set `BENCH_QUICK=1` (or construct the suite with
//! [`Suite::quick`]) for a smoke-test-sized run.

use std::fmt;
use std::io;
use std::path::Path;
use std::time::Instant;

pub use std::hint::black_box;

/// Sampling plan for one suite.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Untimed iterations executed before sampling starts.
    pub warmup_iters: u32,
    /// Number of timed samples collected.
    pub samples: u32,
    /// Iterations aggregated into one sample (reported times are
    /// per-iteration).
    pub iters_per_sample: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup_iters: 3,
            samples: 15,
            iters_per_sample: 1,
        }
    }
}

impl BenchConfig {
    /// The smoke-test plan: just enough to prove the kernel runs.
    pub fn quick() -> Self {
        BenchConfig {
            warmup_iters: 1,
            samples: 3,
            iters_per_sample: 1,
        }
    }
}

/// Wall-time statistics over a bench's samples, in nanoseconds per
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Median per-iteration time.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time.
    pub p95_ns: f64,
    /// Fastest per-iteration time.
    pub min_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
}

impl Stats {
    fn from_samples(mut ns_per_iter: Vec<f64>) -> Stats {
        assert!(!ns_per_iter.is_empty(), "no samples collected");
        ns_per_iter.sort_by(f64::total_cmp);
        let n = ns_per_iter.len();
        let median = if n % 2 == 1 {
            ns_per_iter[n / 2]
        } else {
            (ns_per_iter[n / 2 - 1] + ns_per_iter[n / 2]) / 2.0
        };
        // Nearest-rank p95 (clamped to the last sample).
        let rank = ((0.95 * n as f64).ceil() as usize).clamp(1, n);
        Stats {
            median_ns: median,
            p95_ns: ns_per_iter[rank - 1],
            min_ns: ns_per_iter[0],
            mean_ns: ns_per_iter.iter().sum::<f64>() / n as f64,
        }
    }
}

/// One benchmark's identity and measurements.
#[derive(Debug, Clone)]
pub struct Record {
    /// Kernel group (e.g. `cpm`, `planning`).
    pub kernel: String,
    /// Full bench id within the kernel (e.g. `cpm_analyze/1000`).
    pub bench: String,
    /// Optional problem size (elements processed per iteration).
    pub elements: Option<u64>,
    /// Samples collected.
    pub samples: u32,
    /// Iterations per sample.
    pub iters_per_sample: u32,
    /// Wall-time statistics.
    pub stats: Stats,
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{kernel:<18} {bench:<34} median {median:>12.0} ns  p95 {p95:>12.0} ns  min {min:>12.0} ns",
            kernel = self.kernel,
            bench = self.bench,
            median = self.stats.median_ns,
            p95 = self.stats.p95_ns,
            min = self.stats.min_ns,
        )
    }
}

/// Collects [`Record`]s for one kernel group.
pub struct Suite {
    kernel: String,
    config: BenchConfig,
    records: Vec<Record>,
}

impl Suite {
    /// A suite using the default (full) sampling plan, or the quick
    /// plan when `BENCH_QUICK=1` is set in the environment.
    pub fn new(kernel: &str) -> Self {
        let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1");
        Suite {
            kernel: kernel.to_owned(),
            config: if quick {
                BenchConfig::quick()
            } else {
                BenchConfig::default()
            },
            records: Vec::new(),
        }
    }

    /// A suite forced onto the smoke-test plan.
    pub fn quick(kernel: &str) -> Self {
        Suite {
            kernel: kernel.to_owned(),
            config: BenchConfig::quick(),
            records: Vec::new(),
        }
    }

    /// Overrides the sampling plan for subsequent benches.
    pub fn with_config(mut self, config: BenchConfig) -> Self {
        self.config = config;
        self
    }

    /// Raises `iters_per_sample` for subsequent (cheap) benches so each
    /// sample aggregates enough work to be timeable.
    pub fn iters_per_sample(&mut self, iters: u32) -> &mut Self {
        self.config.iters_per_sample = iters.max(1);
        self
    }

    /// Times `routine` under the current plan.
    pub fn bench<R>(&mut self, bench: &str, elements: Option<u64>, mut routine: impl FnMut() -> R) {
        let cfg = self.config;
        for _ in 0..cfg.warmup_iters {
            black_box(routine());
        }
        let mut ns = Vec::with_capacity(cfg.samples as usize);
        for _ in 0..cfg.samples {
            let t0 = Instant::now();
            for _ in 0..cfg.iters_per_sample {
                black_box(routine());
            }
            ns.push(t0.elapsed().as_nanos() as f64 / f64::from(cfg.iters_per_sample));
        }
        self.push(bench, elements, ns);
    }

    /// Times `routine` with a fresh untimed `setup` product per
    /// iteration (Criterion's `iter_batched`).
    pub fn bench_with_setup<S, R>(
        &mut self,
        bench: &str,
        elements: Option<u64>,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        let cfg = self.config;
        for _ in 0..cfg.warmup_iters {
            let input = setup();
            black_box(routine(input));
        }
        let mut ns = Vec::with_capacity(cfg.samples as usize);
        for _ in 0..cfg.samples {
            let mut elapsed = 0u128;
            for _ in 0..cfg.iters_per_sample {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                elapsed += t0.elapsed().as_nanos();
            }
            ns.push(elapsed as f64 / f64::from(cfg.iters_per_sample));
        }
        self.push(bench, elements, ns);
    }

    fn push(&mut self, bench: &str, elements: Option<u64>, ns: Vec<f64>) {
        let record = Record {
            kernel: self.kernel.clone(),
            bench: bench.to_owned(),
            elements,
            samples: self.config.samples,
            iters_per_sample: self.config.iters_per_sample,
            stats: Stats::from_samples(ns),
        };
        eprintln!("{record}");
        self.records.push(record);
    }

    /// Consumes the suite, yielding its records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_owned()
    }
}

/// Serializes records to the `schedflow-bench/v1` JSON schema (see
/// `crates/harness/README.md`).
pub fn to_json(records: &[Record]) -> String {
    let mut out = String::from("{\n  \"schema\": \"schedflow-bench/v1\",\n  \"kernels\": [\n");
    for (i, r) in records.iter().enumerate() {
        let elements = r
            .elements
            .map_or("null".to_owned(), |e| e.to_string());
        out.push_str(&format!(
            "    {{\"kernel\": \"{kernel}\", \"bench\": \"{bench}\", \"elements\": {elements}, \
             \"samples\": {samples}, \"iters_per_sample\": {iters}, \
             \"median_ns\": {median}, \"p95_ns\": {p95}, \"min_ns\": {min}, \"mean_ns\": {mean}}}{comma}\n",
            kernel = json_escape(&r.kernel),
            bench = json_escape(&r.bench),
            samples = r.samples,
            iters = r.iters_per_sample,
            median = json_f64(r.stats.median_ns),
            p95 = json_f64(r.stats.p95_ns),
            min = json_f64(r.stats.min_ns),
            mean = json_f64(r.stats.mean_ns),
            comma = if i + 1 == records.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the JSON report to `path`.
pub fn write_report(path: &Path, records: &[Record]) -> io::Result<()> {
    std::fs::write(path, to_json(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_order_invariants() {
        let s = Stats::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 3.0);
        assert_eq!(s.p95_ns, 5.0);
        assert!((s.mean_ns - 3.0).abs() < 1e-9);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns);
    }

    #[test]
    fn even_sample_median_interpolates() {
        let s = Stats::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median_ns, 2.5);
    }

    #[test]
    fn suite_collects_records() {
        let mut suite = Suite::quick("selftest");
        let mut acc = 0u64;
        suite.bench("add", Some(1), || {
            acc = acc.wrapping_add(1);
            acc
        });
        let records = suite.into_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kernel, "selftest");
        assert_eq!(records[0].bench, "add");
        assert!(records[0].stats.min_ns >= 0.0);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut suite = Suite::quick("k");
        suite.bench("b/10", Some(10), || 1 + 1);
        let json = to_json(&suite.into_records());
        for needle in [
            "\"schema\": \"schedflow-bench/v1\"",
            "\"kernel\": \"k\"",
            "\"bench\": \"b/10\"",
            "\"elements\": 10",
            "\"median_ns\":",
            "\"p95_ns\":",
            "\"min_ns\":",
            "\"mean_ns\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
