//! The schedule instance browser (§IV-C).
//!
//! "A schedule instance browser was developed to browse the schedule
//! instances located in the Hercules database ... the user can select,
//! delete, or display schedule instances." This module is the textual
//! equivalent: a filterable view over the schedule space with per-
//! instance detail rendering. Deletion is browser-local (instances are
//! hidden from the view); the database itself is append-only, matching
//! the versioned-plan model.

use metadata::{MetadataDb, ScheduleInstanceId};

/// A filterable, hideable view over the schedule instances of a
/// database.
///
/// # Example
///
/// ```
/// use hercules::{browse::ScheduleBrowser, Hercules};
/// use schema::examples;
/// use simtools::{workload::Team, ToolLibrary};
///
/// # fn main() -> Result<(), hercules::HerculesError> {
/// let mut h = Hercules::new(
///     examples::circuit_design(),
///     ToolLibrary::standard(),
///     Team::of_size(1),
///     1,
/// );
/// h.plan("performance")?;
/// h.plan("performance")?; // second version of each plan
/// let browser = ScheduleBrowser::new(h.db()).activity("Create");
/// assert_eq!(browser.rows().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScheduleBrowser<'db> {
    db: &'db MetadataDb,
    activity_filter: Option<String>,
    only_complete: Option<bool>,
    hidden: Vec<ScheduleInstanceId>,
}

impl<'db> ScheduleBrowser<'db> {
    /// Opens a browser over `db` showing everything.
    pub fn new(db: &'db MetadataDb) -> Self {
        ScheduleBrowser {
            db,
            activity_filter: None,
            only_complete: None,
            hidden: Vec::new(),
        }
    }

    /// Restricts the view to one activity.
    #[must_use]
    pub fn activity(mut self, name: &str) -> Self {
        self.activity_filter = Some(name.to_owned());
        self
    }

    /// Restricts the view to complete (`true`) or open (`false`)
    /// instances.
    #[must_use]
    pub fn complete(mut self, complete: bool) -> Self {
        self.only_complete = Some(complete);
        self
    }

    /// Hides one instance from the view (the browser's "delete").
    pub fn hide(&mut self, id: ScheduleInstanceId) {
        if !self.hidden.contains(&id) {
            self.hidden.push(id);
        }
    }

    /// The visible instances, oldest first.
    pub fn rows(&self) -> Vec<ScheduleInstanceId> {
        let mut out = Vec::new();
        let activities: Vec<&str> = match &self.activity_filter {
            Some(a) => vec![a.as_str()],
            None => self.db.activities().collect(),
        };
        for activity in activities {
            let Some(container) = self.db.schedule_container(activity) else {
                continue;
            };
            for &id in container {
                if self.hidden.contains(&id) {
                    continue;
                }
                let sc = self.db.schedule_instance(id);
                if let Some(want) = self.only_complete {
                    if sc.is_complete() != want {
                        continue;
                    }
                }
                out.push(id);
            }
        }
        out.sort();
        out
    }

    /// Renders one instance in detail: dates, assignees, provenance,
    /// and the completion link if present.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this database.
    pub fn display(&self, id: ScheduleInstanceId) -> String {
        let sc = self.db.schedule_instance(id);
        let mut out = format!(
            "{} {} v{}\n  proposed: {} .. {} ({})\n  assigned: {}\n",
            id,
            sc.activity(),
            sc.version(),
            sc.planned_start(),
            sc.planned_finish(),
            sc.planned_duration(),
            if sc.assignees().is_empty() {
                "(nobody)".to_owned()
            } else {
                sc.assignees().join(", ")
            },
        );
        let evolution = self.db.plan_evolution(id);
        if evolution.len() > 1 {
            let chain: Vec<String> = evolution.iter().map(|s| s.to_string()).collect();
            out.push_str(&format!("  evolution: {}\n", chain.join(" <- ")));
        }
        match sc.linked_entity() {
            Some(entity) => {
                let inst = self.db.entity_instance(entity);
                out.push_str(&format!(
                    "  complete: linked to {} ({} v{}, finished {})\n",
                    entity,
                    inst.class(),
                    inst.version(),
                    inst.created_at()
                ));
            }
            None => out.push_str("  open: no final result linked\n"),
        }
        out
    }

    /// Renders the whole visible view, one line per instance.
    pub fn list(&self) -> String {
        let mut out = String::new();
        for id in self.rows() {
            let sc = self.db.schedule_instance(id);
            out.push_str(&format!(
                "{} {:<16} v{} [{} .. {}] {}\n",
                id,
                sc.activity(),
                sc.version(),
                sc.planned_start(),
                sc.planned_finish(),
                if sc.is_complete() { "complete" } else { "open" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hercules;
    use schema::examples;
    use simtools::{workload::Team, ToolLibrary};

    fn manager() -> Hercules {
        Hercules::new(
            examples::circuit_design(),
            ToolLibrary::standard(),
            Team::of_size(1),
            42,
        )
    }

    #[test]
    fn rows_and_filters() {
        let mut h = manager();
        h.plan("performance").unwrap();
        h.plan("performance").unwrap();
        let b = ScheduleBrowser::new(h.db());
        assert_eq!(b.rows().len(), 4); // 2 activities × 2 versions
        assert_eq!(b.clone().activity("Create").rows().len(), 2);
        assert_eq!(b.clone().complete(true).rows().len(), 0);
        assert_eq!(b.clone().complete(false).rows().len(), 4);
    }

    #[test]
    fn completion_filter_after_execution() {
        let mut h = manager();
        h.plan("performance").unwrap();
        h.execute("performance").unwrap();
        let b = ScheduleBrowser::new(h.db());
        assert_eq!(b.clone().complete(true).rows().len(), 2);
        assert_eq!(b.clone().complete(false).rows().len(), 0);
    }

    #[test]
    fn hide_removes_from_view() {
        let mut h = manager();
        h.plan("performance").unwrap();
        let mut b = ScheduleBrowser::new(h.db());
        let first = b.rows()[0];
        b.hide(first);
        b.hide(first); // idempotent
        assert!(!b.rows().contains(&first));
        assert_eq!(b.rows().len(), 1);
    }

    #[test]
    fn display_shows_provenance_and_link() {
        let mut h = manager();
        h.plan("performance").unwrap();
        h.execute("performance").unwrap();
        h.plan("performance").unwrap(); // v2 derived from linked v1
        let b = ScheduleBrowser::new(h.db());
        let create_rows = b.clone().activity("Create").rows();
        let v1 = create_rows[0];
        let v2 = create_rows[1];
        let d1 = b.display(v1);
        assert!(d1.contains("complete: linked to"));
        let d2 = b.display(v2);
        assert!(d2.contains("evolution:"));
        assert!(d2.contains("open"));
    }

    #[test]
    fn list_is_one_line_per_instance() {
        let mut h = manager();
        h.plan("performance").unwrap();
        let b = ScheduleBrowser::new(h.db());
        assert_eq!(b.list().lines().count(), 2);
    }
}
