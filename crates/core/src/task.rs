use std::collections::HashMap;

use schema::{SchemaGraph, TaskSchema};

use crate::error::HerculesError;

/// A task tree extracted for a target: the activities in the target's
/// input cone, in dependency (post-order) order, with their data
/// wiring.
///
/// "A user prepares a task for execution by first extracting a task
/// tree that covers the scope of the intended task" (§IV-A). The same
/// tree serves both schedule planning and execution — that sharing is
/// the point of the integrated system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskTree {
    target: String,
    /// Activities in dependency order (inputs before outputs).
    activities: Vec<String>,
    /// Activity name -> position in `activities`.
    index_of: HashMap<String, usize>,
    /// Per activity (by position): the data classes it consumes.
    inputs: Vec<Vec<String>>,
    /// Per activity (by position): the data class it produces.
    outputs: Vec<String>,
    /// Per activity (by position): positions of the activities its
    /// output feeds directly, ascending. Precomputed so execution and
    /// planning never re-derive the adjacency by scanning.
    consumers: Vec<Vec<usize>>,
    /// Data classes with no producing activity — designer-supplied.
    primary_inputs: Vec<String>,
}

impl TaskTree {
    /// Extracts the tree covering `target` (a data class or activity
    /// name) from the schema.
    ///
    /// # Errors
    ///
    /// [`HerculesError::UnknownTarget`] if `target` names nothing.
    pub fn extract(schema: &TaskSchema, target: &str) -> Result<Self, HerculesError> {
        let graph = SchemaGraph::for_schema(schema);
        let activities = graph.activities_for_target(target);
        if activities.is_empty() {
            return Err(HerculesError::UnknownTarget(target.to_owned()));
        }
        let n = activities.len();
        let mut inputs = Vec::with_capacity(n);
        let mut outputs = Vec::with_capacity(n);
        let mut primary = Vec::new();
        for activity in &activities {
            let rule = schema
                .rule(activity)
                .expect("activities come from the schema");
            inputs.push(rule.inputs().to_vec());
            outputs.push(rule.output().to_owned());
            for input in rule.inputs() {
                if schema.producer_of(input).is_none() && !primary.contains(input) {
                    primary.push(input.clone());
                }
            }
        }
        let index_of: HashMap<String, usize> = activities
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), i))
            .collect();
        // Direct consumers by position: resolve each input class to its
        // in-scope producer once, while the edge list is in hand.
        let producer_of: HashMap<&str, usize> = outputs
            .iter()
            .enumerate()
            .map(|(i, o)| (o.as_str(), i))
            .collect();
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, ins) in inputs.iter().enumerate() {
            for class in ins {
                if let Some(&i) = producer_of.get(class.as_str()) {
                    if consumers[i].last() != Some(&j) {
                        consumers[i].push(j);
                    }
                }
            }
        }
        Ok(TaskTree {
            target: target.to_owned(),
            activities,
            index_of,
            inputs,
            outputs,
            consumers,
            primary_inputs: primary,
        })
    }

    /// The target this tree was extracted for.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Activities in dependency order — the order the post-order
    /// traversal visits them for both planning and execution.
    pub fn activities(&self) -> &[String] {
        &self.activities
    }

    /// Number of activities in scope.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// Returns `true` if the tree is empty (never: extraction fails on
    /// empty scopes).
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }

    /// The position of `activity` in dependency order, if in scope.
    pub fn index_of(&self, activity: &str) -> Option<usize> {
        self.index_of.get(activity).copied()
    }

    /// Data classes `activity` consumes.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is not in this tree.
    pub fn inputs_of(&self, activity: &str) -> &[String] {
        &self.inputs[self.index_of[activity]]
    }

    /// Data classes the activity at position `i` consumes.
    pub fn inputs_at(&self, i: usize) -> &[String] {
        &self.inputs[i]
    }

    /// The data class `activity` produces.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is not in this tree.
    pub fn output_of(&self, activity: &str) -> &str {
        &self.outputs[self.index_of[activity]]
    }

    /// The data class the activity at position `i` produces.
    pub fn output_at(&self, i: usize) -> &str {
        &self.outputs[i]
    }

    /// Whether `activity` is part of this tree.
    pub fn contains(&self, activity: &str) -> bool {
        self.index_of.contains_key(activity)
    }

    /// Designer-supplied data classes the tree needs (no producer in
    /// the schema), e.g. the paper's `stimuli`.
    pub fn primary_inputs(&self) -> &[String] {
        &self.primary_inputs
    }

    /// The activities of this tree that `activity`'s output feeds,
    /// directly.
    pub fn consumers_of_output(&self, activity: &str) -> Vec<&str> {
        let Some(i) = self.index_of(activity) else {
            return Vec::new();
        };
        self.consumers[i]
            .iter()
            .map(|&j| self.activities[j].as_str())
            .collect()
    }

    /// Positions of the activities fed directly by the output of the
    /// activity at position `i`, ascending.
    pub fn consumers_at(&self, i: usize) -> &[usize] {
        &self.consumers[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;

    #[test]
    fn extract_full_circuit_tree() {
        let schema = examples::circuit_design();
        let tree = TaskTree::extract(&schema, "performance").unwrap();
        assert_eq!(tree.target(), "performance");
        assert_eq!(tree.activities(), ["Create", "Simulate"]);
        assert_eq!(tree.inputs_of("Simulate"), ["netlist", "stimuli"]);
        assert_eq!(tree.output_of("Create"), "netlist");
        assert_eq!(tree.primary_inputs(), ["stimuli"]);
        assert_eq!(tree.len(), 2);
        assert!(!tree.is_empty());
    }

    #[test]
    fn extract_partial_scope() {
        let schema = examples::circuit_design();
        let tree = TaskTree::extract(&schema, "netlist").unwrap();
        assert_eq!(tree.activities(), ["Create"]);
        assert!(tree.primary_inputs().is_empty());
        assert!(!tree.contains("Simulate"));
    }

    #[test]
    fn extract_by_activity_name() {
        let schema = examples::asic_flow();
        let tree = TaskTree::extract(&schema, "Synthesize").unwrap();
        assert!(tree.contains("WriteRtl"));
        assert!(tree.contains("CaptureSpec"));
        assert!(!tree.contains("Route"));
    }

    #[test]
    fn unknown_target_rejected() {
        let schema = examples::circuit_design();
        assert!(matches!(
            TaskTree::extract(&schema, "gds"),
            Err(HerculesError::UnknownTarget(_))
        ));
    }

    #[test]
    fn consumers_of_output() {
        let schema = examples::asic_flow();
        let tree = TaskTree::extract(&schema, "signoff_report").unwrap();
        let consumers = tree.consumers_of_output("Synthesize");
        assert_eq!(consumers, vec!["Floorplan"]);
        assert!(tree.consumers_of_output("nonexistent").is_empty());
    }

    #[test]
    fn dependency_order_holds() {
        let schema = examples::asic_flow();
        let tree = TaskTree::extract(&schema, "signoff_report").unwrap();
        let pos = |a: &str| tree.activities().iter().position(|x| x == a).unwrap();
        assert!(pos("CaptureSpec") < pos("WriteRtl"));
        assert!(pos("WriteRtl") < pos("Synthesize"));
        assert!(pos("Route") < pos("Signoff"));
    }
}
