//! Property-based tests for the CPM engine and resource levelling (on
//! the in-repo `harness` framework — offline, seeded, shrinking).

use harness::prelude::*;
use schedule::{level_resources, Resource, ResourcePool, ScheduleNetwork, WorkDays};

/// Random acyclic network: forward edges over n activities with random
/// small durations.
fn arb_network() -> impl Strategy<Value = ScheduleNetwork> {
    (
        2usize..25,
        vec((any_u16(), any_u16()), 0..60),
        vec(0u32..20, 2..25),
    )
        .prop_map(|(n, pairs, durations)| {
            let mut net = ScheduleNetwork::new();
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    let d = durations.get(i).copied().unwrap_or(1) as f64 * 0.5;
                    net.add_activity(format!("t{i}"), WorkDays::new(d))
                        .expect("unique names")
                })
                .collect();
            for (a, b) in pairs {
                let i = (a as usize) % n;
                let j = (b as usize) % n;
                if i < j {
                    net.add_precedence(ids[i], ids[j]).expect("forward edges");
                }
            }
            net
        })
}

harness::props! {
    fn cpm_dates_are_consistent(net in arb_network()) {
        let cpm = net.analyze().expect("acyclic");
        for id in net.activities() {
            let t = cpm.times(id);
            // ES + duration = EF; LS + duration = LF.
            prop_assert!((t.early_finish.days()
                - t.early_start.days()
                - net.duration(id).days()).abs() < 1e-9);
            prop_assert!((t.late_finish.days()
                - t.late_start.days()
                - net.duration(id).days()).abs() < 1e-9);
            // Early never after late; slack non-negative.
            prop_assert!(t.early_start.days() <= t.late_start.days() + 1e-9);
            prop_assert!(t.total_slack.days() >= -1e-9);
            // Free slack never exceeds total slack.
            prop_assert!(t.free_slack.days() <= t.total_slack.days() + 1e-9);
            // Nothing finishes after the project.
            prop_assert!(t.early_finish.days() <= cpm.project_duration().days() + 1e-9);
            prop_assert!(t.late_finish.days() <= cpm.project_duration().days() + 1e-9);
        }
    }

    fn precedence_respected_by_earliest_dates(net in arb_network()) {
        let cpm = net.analyze().expect("acyclic");
        for id in net.activities() {
            for s in net.successors(id) {
                prop_assert!(
                    cpm.times(s).early_start.days() >= cpm.times(id).early_finish.days() - 1e-9
                );
            }
        }
    }

    fn critical_path_length_equals_project_duration(net in arb_network()) {
        let cpm = net.analyze().expect("acyclic");
        let path = cpm.critical_path();
        prop_assert!(!path.is_empty());
        let total: f64 = path.iter().map(|&id| net.duration(id).days()).sum();
        prop_assert!((total - cpm.project_duration().days()).abs() < 1e-9);
        // Path is a real precedence chain of critical activities.
        for pair in path.windows(2) {
            prop_assert!(net.successors(pair[0]).any(|s| s == pair[1]));
        }
        for &id in path {
            prop_assert!(cpm.is_critical(id));
        }
    }

    fn project_duration_is_max_over_paths(net in arb_network()) {
        // The project can never be shorter than any single activity.
        let cpm = net.analyze().expect("acyclic");
        for id in net.activities() {
            prop_assert!(cpm.project_duration().days() >= net.duration(id).days() - 1e-9);
        }
    }

    fn leveling_respects_precedence_and_cpm_lower_bound(net in arb_network()) {
        let mut net = net;
        let ids: Vec<_> = net.activities().collect();
        for &id in &ids {
            net.add_demand(id, "designer", 1).expect("activity exists");
        }
        let pool: ResourcePool = [Resource::new("designer", 2)].into_iter().collect();
        let cpm = net.analyze().expect("acyclic");
        let lev = level_resources(&net, &pool).expect("feasible");
        for &id in &ids {
            // Never earlier than CPM's earliest start.
            prop_assert!(lev.start(id).days() >= cpm.times(id).early_start.days() - 1e-9);
            for s in net.successors(id) {
                prop_assert!(lev.start(s).days() >= lev.finish(id).days() - 1e-9);
            }
        }
        // Capacity respected: at each start, count overlapping activities.
        for &id in &ids {
            if net.duration(id).days() == 0.0 {
                continue;
            }
            let t = lev.start(id).days() + 1e-6;
            let overlapping = ids
                .iter()
                .filter(|&&o| {
                    net.duration(o).days() > 0.0
                        && lev.start(o).days() < t
                        && lev.finish(o).days() > t
                })
                .count();
            prop_assert!(overlapping <= 2, "capacity 2 exceeded: {overlapping}");
        }
        // Makespan bounded below by CPM and above by serial execution.
        let serial: f64 = ids.iter().map(|&i| net.duration(i).days()).sum();
        prop_assert!(lev.makespan().days() >= cpm.project_duration().days() - 1e-9);
        prop_assert!(lev.makespan().days() <= serial + 1e-9);
    }
}
