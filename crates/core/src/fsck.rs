//! Workspace-level integrity checking: `herc fsck`'s engine.
//!
//! A workspace root is a directory of project directories, each
//! holding a persistent store (`CURRENT` + snapshot/tail generations,
//! scrubbed by [`metadata::fsck`]) and a saved session configuration
//! (`project.conf`). [`fsck_workspace`] walks every project under a
//! root, verifies all of it, and — in repair mode — rebuilds each
//! damaged store from its best recoverable state so the root serves
//! again.
//!
//! The split of labour: [`metadata::fsck`] knows store files;
//! this module knows what a *workspace* looks like (which
//! subdirectories are projects, what a `project.conf` must contain)
//! and aggregates per-project results into one report with a single
//! healthy/unhealthy answer for the CLI's exit code.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use metadata::fsck::{RepairOutcome, StoreScrub};
use simtools::vfs::RealVfs;

use crate::workspace::read_project_conf;
use crate::WorkspaceError;

/// The verdict on one project's saved session configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfVerdict {
    /// Parses and the schema re-parses.
    Ok,
    /// No `project.conf` — the project cannot be lazily reopened (by
    /// `herc serve` or `ws status` without a schema file), though an
    /// explicit-schema open still works.
    Missing,
    /// Present but unreadable or failing validation.
    Corrupt(String),
}

impl fmt::Display for ConfVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfVerdict::Ok => f.write_str("ok"),
            ConfVerdict::Missing => f.write_str("MISSING"),
            ConfVerdict::Corrupt(detail) => write!(f, "CORRUPT ({detail})"),
        }
    }
}

/// Everything `fsck` learned about one project directory.
#[derive(Debug)]
pub struct ProjectFsck {
    /// The project (directory) name.
    pub name: String,
    /// The project directory.
    pub dir: PathBuf,
    /// The store scrub, or why the directory holds no scrubbable store
    /// at all (e.g. `CURRENT` itself is missing).
    pub store: Result<StoreScrub, String>,
    /// The `project.conf` verdict.
    pub conf: ConfVerdict,
    /// What repair mode did, when it ran for this project.
    pub repaired: Option<RepairOutcome>,
}

impl ProjectFsck {
    /// Whether this project would open and serve: the store scrub is
    /// healthy (after any repair) and the session config is usable.
    pub fn healthy(&self) -> bool {
        let store_ok = match (&self.store, &self.repaired) {
            (_, Some(RepairOutcome::Repaired { .. })) => true,
            (Ok(scrub), _) => scrub.healthy,
            (Err(_), _) => false,
        };
        store_ok && self.conf == ConfVerdict::Ok
    }
}

/// The aggregate result of checking a workspace root.
#[derive(Debug)]
pub struct WorkspaceFsck {
    /// The root that was walked.
    pub root: PathBuf,
    /// Per-project results, sorted by name.
    pub projects: Vec<ProjectFsck>,
}

impl WorkspaceFsck {
    /// Whether every project under the root is servable.
    pub fn healthy(&self) -> bool {
        self.projects.iter().all(ProjectFsck::healthy)
    }

    /// Projects that are not servable.
    pub fn damaged(&self) -> impl Iterator<Item = &ProjectFsck> {
        self.projects.iter().filter(|p| !p.healthy())
    }
}

/// Whether a directory looks like (the remains of) a project: any
/// store file or a session config. Damaged projects must still be
/// *found* — requiring an intact `CURRENT` (as registry discovery
/// does) would make the worst corruption invisible to fsck.
fn looks_like_project(dir: &Path) -> bool {
    if dir.join("CURRENT").is_file() || dir.join("project.conf").is_file() {
        return true;
    }
    let Ok(entries) = fs::read_dir(dir) else {
        return false;
    };
    entries.flatten().any(|e| {
        let name = e.file_name();
        let name = name.to_string_lossy();
        (name.starts_with("snapshot-") && name.ends_with(".txt"))
            || (name.starts_with("tail-") && name.ends_with(".journal"))
    })
}

/// Scrubs every project under `root`; with `repair`, rebuilds each
/// damaged-but-repairable store from its best recoverable state
/// (quarantining the damaged files). See [`metadata::fsck`] for the
/// per-store policy.
///
/// # Errors
///
/// [`WorkspaceError::Store`] when `root` is not a directory at all —
/// the same typed refusal `herc ws` and `herc gc` give for a missing
/// root.
pub fn fsck_workspace(
    root: impl AsRef<Path>,
    repair: bool,
) -> Result<WorkspaceFsck, WorkspaceError> {
    let root = root.as_ref();
    if !root.is_dir() {
        return Err(WorkspaceError::Store(metadata::StoreError::Io {
            path: root.to_path_buf(),
            message: "no workspace here: not a directory".to_owned(),
        }));
    }
    let vfs = RealVfs::arc();
    let mut projects = Vec::new();
    let mut names: Vec<(String, PathBuf)> = Vec::new();
    let entries = fs::read_dir(root).map_err(|e| {
        WorkspaceError::Store(metadata::StoreError::Io {
            path: root.to_path_buf(),
            message: e.to_string(),
        })
    })?;
    for entry in entries.flatten() {
        let dir = entry.path();
        if !dir.is_dir() || !looks_like_project(&dir) {
            continue;
        }
        if let Some(name) = dir.file_name().and_then(|n| n.to_str()) {
            names.push((name.to_owned(), dir.clone()));
        }
    }
    names.sort();
    for (name, dir) in names {
        let store = metadata::fsck::scrub(&*vfs, &dir).map_err(|e| e.to_string());
        let conf = check_conf(&dir, &name);
        let mut project = ProjectFsck {
            name,
            dir: dir.clone(),
            store,
            conf,
            repaired: None,
        };
        if repair && !project.healthy() {
            // Repair what repair *can* fix: the store. (A lost
            // project.conf has no redundant copy to rebuild from; the
            // verdict tells the operator to re-open with an explicit
            // schema, which rewrites it.)
            let store_unhealthy = !matches!(&project.store, Ok(s) if s.healthy);
            if store_unhealthy {
                match metadata::fsck::repair(&vfs, &dir) {
                    Ok(outcome) => {
                        project.repaired = Some(outcome);
                        // Re-scrub so the report shows the post-repair
                        // state.
                        project.store =
                            metadata::fsck::scrub(&*vfs, &dir).map_err(|e| e.to_string());
                    }
                    Err(e) => {
                        project.store = Err(format!("unrepairable: {e}"));
                    }
                }
            }
        }
        projects.push(project);
    }
    Ok(WorkspaceFsck {
        root: root.to_path_buf(),
        projects,
    })
}

/// Validates one project's saved session config by actually parsing it
/// — the same code path `open_saved_project` trusts.
fn check_conf(dir: &Path, name: &str) -> ConfVerdict {
    if !dir.join("project.conf").is_file() {
        return ConfVerdict::Missing;
    }
    match read_project_conf(dir, name) {
        Ok(_) => ConfVerdict::Ok,
        Err(e) => ConfVerdict::Corrupt(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;
    use metadata::fsck::FileStatus;
    use schema::examples;
    use simtools::{workload::Team, ToolLibrary};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "schedflow-fsck-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_root(tag: &str) -> PathBuf {
        let root = scratch(tag);
        let ws = Workspace::persistent(&root);
        let project = ws
            .create_project(
                "alpha",
                examples::circuit_design(),
                ToolLibrary::standard(),
                Team::of_size(2),
                7,
            )
            .unwrap();
        project.update(|h| h.plan("performance")).unwrap();
        root
    }

    #[test]
    fn missing_root_is_a_typed_error() {
        let err = fsck_workspace(scratch("absent"), false).unwrap_err();
        assert!(matches!(err, WorkspaceError::Store(_)));
        assert!(err.to_string().contains("no workspace here"));
    }

    #[test]
    fn healthy_root_reports_healthy() {
        let root = seeded_root("healthy");
        let report = fsck_workspace(&root, false).unwrap();
        assert_eq!(report.projects.len(), 1);
        assert!(report.healthy(), "{report:?}");
        assert_eq!(report.projects[0].conf, ConfVerdict::Ok);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_store_is_found_and_repaired() {
        let root = seeded_root("repairme");
        // Damage an interior tail record (the snapshot still loads, so
        // the store is repairable from a prefix of the session).
        let tail = root.join("alpha/tail-0.journal");
        let text = fs::read_to_string(&tail).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        assert!(lines.len() > 3, "need interior records: {text}");
        lines[2] = lines[2].chars().rev().collect();
        fs::write(&tail, lines.join("\n") + "\n").unwrap();
        let report = fsck_workspace(&root, false).unwrap();
        assert!(!report.healthy());
        assert_eq!(report.damaged().count(), 1);
        // Repair mode rebuilds it...
        let report = fsck_workspace(&root, true).unwrap();
        assert!(report.healthy(), "{report:?}");
        assert!(matches!(
            report.projects[0].repaired,
            Some(RepairOutcome::Repaired { .. })
        ));
        // ...the damage is quarantined, and the workspace opens again.
        assert!(root.join("alpha/tail-0.journal.quarantine").exists());
        let ws = Workspace::persistent(&root);
        let project = ws.open_saved_project("alpha").unwrap();
        assert!(project.read(|h| h.db().check_invariants().is_ok()));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn project_without_current_is_still_discovered() {
        let root = seeded_root("headless");
        fs::remove_file(root.join("alpha/CURRENT")).unwrap();
        let report = fsck_workspace(&root, false).unwrap();
        assert_eq!(report.projects.len(), 1, "damaged projects must be found");
        assert!(!report.healthy());
        assert!(report.projects[0].store.is_err());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_conf_is_reported_but_store_can_be_healthy() {
        let root = seeded_root("noconf");
        fs::remove_file(root.join("alpha/project.conf")).unwrap();
        let report = fsck_workspace(&root, false).unwrap();
        assert!(!report.healthy());
        assert_eq!(report.projects[0].conf, ConfVerdict::Missing);
        assert!(matches!(&report.projects[0].store, Ok(s) if s.healthy));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn non_project_directories_are_ignored() {
        let root = seeded_root("mixed");
        fs::create_dir_all(root.join("not-a-project")).unwrap();
        fs::write(root.join("not-a-project/notes.txt"), "hi").unwrap();
        let report = fsck_workspace(&root, false).unwrap();
        assert_eq!(report.projects.len(), 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn file_status_is_used_in_reports() {
        // Silence the "unused import" trap and pin the re-export shape
        // the CLI prints from.
        let root = seeded_root("verdicts");
        let report = fsck_workspace(&root, false).unwrap();
        let scrub = report.projects[0].store.as_ref().unwrap();
        assert!(scrub.verdicts.iter().all(|v| v.status == FileStatus::Ok));
        fs::remove_dir_all(&root).unwrap();
    }
}
