//! Offline micro-benchmark harness: warmup + fixed-iteration sampling,
//! median/p95/min wall-times, and machine-readable JSON emission.
//!
//! Replaces Criterion for this workspace: no network, no plotting, no
//! adaptive sampling — a fixed, deterministic amount of work per bench
//! so runs are comparable across commits. Results accumulate into a
//! single report (`BENCH_schedflow.json` at the workspace root) giving
//! the repo a perf trajectory.
//!
//! Set `BENCH_QUICK=1` (or construct the suite with
//! [`Suite::quick`]) for a smoke-test-sized run.

use std::fmt;
use std::io;
use std::path::Path;
use std::time::Instant;

pub use std::hint::black_box;

/// Sampling plan for one suite.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Untimed iterations executed before sampling starts.
    pub warmup_iters: u32,
    /// Number of timed samples collected.
    pub samples: u32,
    /// Iterations aggregated into one sample (reported times are
    /// per-iteration).
    pub iters_per_sample: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup_iters: 3,
            samples: 15,
            iters_per_sample: 1,
        }
    }
}

impl BenchConfig {
    /// The smoke-test plan: just enough to prove the kernel runs.
    pub fn quick() -> Self {
        BenchConfig {
            warmup_iters: 1,
            samples: 3,
            iters_per_sample: 1,
        }
    }
}

/// Wall-time statistics over a bench's samples, in nanoseconds per
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Median per-iteration time.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time.
    pub p95_ns: f64,
    /// Fastest per-iteration time.
    pub min_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
}

impl Stats {
    fn from_samples(mut ns_per_iter: Vec<f64>) -> Stats {
        assert!(!ns_per_iter.is_empty(), "no samples collected");
        ns_per_iter.sort_by(f64::total_cmp);
        let n = ns_per_iter.len();
        let median = if n % 2 == 1 {
            ns_per_iter[n / 2]
        } else {
            (ns_per_iter[n / 2 - 1] + ns_per_iter[n / 2]) / 2.0
        };
        // Nearest-rank p95 (clamped to the last sample).
        let rank = ((0.95 * n as f64).ceil() as usize).clamp(1, n);
        Stats {
            median_ns: median,
            p95_ns: ns_per_iter[rank - 1],
            min_ns: ns_per_iter[0],
            mean_ns: ns_per_iter.iter().sum::<f64>() / n as f64,
        }
    }
}

/// One benchmark's identity and measurements.
#[derive(Debug, Clone)]
pub struct Record {
    /// Kernel group (e.g. `cpm`, `planning`).
    pub kernel: String,
    /// Full bench id within the kernel (e.g. `cpm_analyze/1000`).
    pub bench: String,
    /// Optional problem size (elements processed per iteration).
    pub elements: Option<u64>,
    /// Samples collected.
    pub samples: u32,
    /// Iterations per sample.
    pub iters_per_sample: u32,
    /// Wall-time statistics.
    pub stats: Stats,
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{kernel:<18} {bench:<34} median {median:>12.0} ns  p95 {p95:>12.0} ns  min {min:>12.0} ns",
            kernel = self.kernel,
            bench = self.bench,
            median = self.stats.median_ns,
            p95 = self.stats.p95_ns,
            min = self.stats.min_ns,
        )
    }
}

/// Collects [`Record`]s for one kernel group.
pub struct Suite {
    kernel: String,
    config: BenchConfig,
    records: Vec<Record>,
}

impl Suite {
    /// A suite using the default (full) sampling plan, or the quick
    /// plan when `BENCH_QUICK=1` is set in the environment.
    pub fn new(kernel: &str) -> Self {
        let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1");
        Suite {
            kernel: kernel.to_owned(),
            config: if quick {
                BenchConfig::quick()
            } else {
                BenchConfig::default()
            },
            records: Vec::new(),
        }
    }

    /// A suite forced onto the smoke-test plan.
    pub fn quick(kernel: &str) -> Self {
        Suite {
            kernel: kernel.to_owned(),
            config: BenchConfig::quick(),
            records: Vec::new(),
        }
    }

    /// Overrides the sampling plan for subsequent benches.
    pub fn with_config(mut self, config: BenchConfig) -> Self {
        self.config = config;
        self
    }

    /// Raises `iters_per_sample` for subsequent (cheap) benches so each
    /// sample aggregates enough work to be timeable.
    pub fn iters_per_sample(&mut self, iters: u32) -> &mut Self {
        self.config.iters_per_sample = iters.max(1);
        self
    }

    /// Times `routine` under the current plan.
    pub fn bench<R>(&mut self, bench: &str, elements: Option<u64>, mut routine: impl FnMut() -> R) {
        let cfg = self.config;
        for _ in 0..cfg.warmup_iters {
            black_box(routine());
        }
        let mut ns = Vec::with_capacity(cfg.samples as usize);
        for _ in 0..cfg.samples {
            let t0 = Instant::now();
            for _ in 0..cfg.iters_per_sample {
                black_box(routine());
            }
            ns.push(t0.elapsed().as_nanos() as f64 / f64::from(cfg.iters_per_sample));
        }
        self.push(bench, elements, ns);
    }

    /// Times `routine` with a fresh untimed `setup` product per
    /// iteration (Criterion's `iter_batched`).
    pub fn bench_with_setup<S, R>(
        &mut self,
        bench: &str,
        elements: Option<u64>,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        let cfg = self.config;
        for _ in 0..cfg.warmup_iters {
            let input = setup();
            black_box(routine(input));
        }
        let mut ns = Vec::with_capacity(cfg.samples as usize);
        for _ in 0..cfg.samples {
            let mut elapsed = 0u128;
            for _ in 0..cfg.iters_per_sample {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                elapsed += t0.elapsed().as_nanos();
            }
            ns.push(elapsed as f64 / f64::from(cfg.iters_per_sample));
        }
        self.push(bench, elements, ns);
    }

    fn push(&mut self, bench: &str, elements: Option<u64>, ns: Vec<f64>) {
        let record = Record {
            kernel: self.kernel.clone(),
            bench: bench.to_owned(),
            elements,
            samples: self.config.samples,
            iters_per_sample: self.config.iters_per_sample,
            stats: Stats::from_samples(ns),
        };
        eprintln!("{record}");
        self.records.push(record);
    }

    /// Consumes the suite, yielding its records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_owned()
    }
}

/// Serializes records to the `schedflow-bench/v1` JSON schema (see
/// `crates/harness/README.md`).
pub fn to_json(records: &[Record]) -> String {
    let mut out = String::from("{\n  \"schema\": \"schedflow-bench/v1\",\n  \"kernels\": [\n");
    for (i, r) in records.iter().enumerate() {
        let elements = r.elements.map_or("null".to_owned(), |e| e.to_string());
        out.push_str(&format!(
            "    {{\"kernel\": \"{kernel}\", \"bench\": \"{bench}\", \"elements\": {elements}, \
             \"samples\": {samples}, \"iters_per_sample\": {iters}, \
             \"median_ns\": {median}, \"p95_ns\": {p95}, \"min_ns\": {min}, \"mean_ns\": {mean}}}{comma}\n",
            kernel = json_escape(&r.kernel),
            bench = json_escape(&r.bench),
            samples = r.samples,
            iters = r.iters_per_sample,
            median = json_f64(r.stats.median_ns),
            p95 = json_f64(r.stats.p95_ns),
            min = json_f64(r.stats.min_ns),
            mean = json_f64(r.stats.mean_ns),
            comma = if i + 1 == records.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the JSON report to `path`, creating missing parent
/// directories and writing **atomically**: the report is staged in a
/// temporary file beside the target and renamed into place, so a
/// crashed or interrupted run can never leave a truncated report for
/// the CI comparison gate to choke on.
///
/// Delegates to the workspace-wide atomic write primitive
/// ([`obs::export::write_atomic`]), the same path the trace and
/// metrics exporters use.
pub fn write_report(path: &Path, records: &[Record]) -> io::Result<()> {
    obs::export::write_atomic(path, &to_json(records))
}

/// Parses a `schedflow-bench/v1` report back into [`Record`]s — the
/// inverse of [`to_json`], used by the `bench_compare` CI gate to read
/// the committed baseline and the fresh run.
///
/// The parser accepts any whitespace layout but requires the schema
/// marker and the flat record shape [`to_json`] emits.
///
/// # Errors
///
/// A human-readable description of the first malformed construct.
pub fn parse_report(json: &str) -> Result<Vec<Record>, String> {
    if !json.contains("schedflow-bench/v1") {
        return Err("not a schedflow-bench/v1 report (schema marker missing)".to_owned());
    }
    let kernels_at = json
        .find("\"kernels\"")
        .ok_or_else(|| "missing \"kernels\" array".to_owned())?;
    let body = &json[kernels_at..];
    let open = body
        .find('[')
        .ok_or_else(|| "missing [ after \"kernels\"".to_owned())?;
    let close = body
        .rfind(']')
        .ok_or_else(|| "missing ] closing \"kernels\"".to_owned())?;
    if close < open {
        return Err("malformed \"kernels\" array".to_owned());
    }
    let mut records = Vec::new();
    let mut rest = &body[open + 1..close];
    while let Some(start) = rest.find('{') {
        let end = rest[start..]
            .find('}')
            .ok_or_else(|| "unterminated record object".to_owned())?
            + start;
        records.push(parse_record(&rest[start + 1..end])?);
        rest = &rest[end + 1..];
    }
    Ok(records)
}

fn parse_record(obj: &str) -> Result<Record, String> {
    let elements = match raw_field(obj, "elements") {
        None | Some("null") => None,
        Some(raw) => Some(
            raw.parse::<u64>()
                .map_err(|_| format!("\"elements\" is not an integer: {raw}"))?,
        ),
    };
    Ok(Record {
        kernel: str_field(obj, "kernel")?,
        bench: str_field(obj, "bench")?,
        elements,
        samples: num_field(obj, "samples")? as u32,
        iters_per_sample: num_field(obj, "iters_per_sample")? as u32,
        stats: Stats {
            median_ns: num_field(obj, "median_ns")?,
            p95_ns: num_field(obj, "p95_ns")?,
            min_ns: num_field(obj, "min_ns")?,
            mean_ns: num_field(obj, "mean_ns")?,
        },
    })
}

/// The raw (untrimmed-of-quotes) text of `key`'s value inside a flat
/// JSON object body, cut at the next top-level comma.
fn raw_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)?;
    let after = &obj[at + pat.len()..];
    let colon = after.find(':')?;
    let val = after[colon + 1..].trim_start();
    if val.starts_with('"') {
        // String value: find the closing unescaped quote.
        let mut escaped = false;
        for (i, c) in val.char_indices().skip(1) {
            match c {
                '\\' if !escaped => escaped = true,
                '"' if !escaped => return Some(&val[..=i]),
                _ => escaped = false,
            }
        }
        None
    } else {
        let end = val.find([',', '}']).unwrap_or(val.len());
        Some(val[..end].trim())
    }
}

fn str_field(obj: &str, key: &str) -> Result<String, String> {
    let raw = raw_field(obj, key).ok_or_else(|| format!("missing field \"{key}\""))?;
    if raw.len() < 2 || !raw.starts_with('"') || !raw.ends_with('"') {
        return Err(format!("field \"{key}\" is not a string: {raw}"));
    }
    let mut out = String::new();
    let mut chars = raw[1..raw.len() - 1].chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let code: String = chars.by_ref().take(4).collect();
                let v = u32::from_str_radix(&code, 16)
                    .map_err(|_| format!("bad \\u escape in \"{key}\""))?;
                out.push(char::from_u32(v).ok_or_else(|| format!("bad codepoint in \"{key}\""))?);
            }
            other => return Err(format!("bad escape {other:?} in \"{key}\"")),
        }
    }
    Ok(out)
}

fn num_field(obj: &str, key: &str) -> Result<f64, String> {
    let raw = raw_field(obj, key).ok_or_else(|| format!("missing field \"{key}\""))?;
    if raw == "null" {
        return Ok(f64::NAN);
    }
    raw.parse::<f64>()
        .map_err(|_| format!("field \"{key}\" is not a number: {raw}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_order_invariants() {
        let s = Stats::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 3.0);
        assert_eq!(s.p95_ns, 5.0);
        assert!((s.mean_ns - 3.0).abs() < 1e-9);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns);
    }

    #[test]
    fn even_sample_median_interpolates() {
        let s = Stats::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median_ns, 2.5);
    }

    #[test]
    fn suite_collects_records() {
        let mut suite = Suite::quick("selftest");
        let mut acc = 0u64;
        suite.bench("add", Some(1), || {
            acc = acc.wrapping_add(1);
            acc
        });
        let records = suite.into_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kernel, "selftest");
        assert_eq!(records[0].bench, "add");
        assert!(records[0].stats.min_ns >= 0.0);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut suite = Suite::quick("k");
        suite.bench("b/10", Some(10), || 1 + 1);
        let json = to_json(&suite.into_records());
        for needle in [
            "\"schema\": \"schedflow-bench/v1\"",
            "\"kernel\": \"k\"",
            "\"bench\": \"b/10\"",
            "\"elements\": 10",
            "\"median_ns\":",
            "\"p95_ns\":",
            "\"min_ns\":",
            "\"mean_ns\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count(),);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record {
                kernel: "cpm".to_owned(),
                bench: "analyze/1000".to_owned(),
                elements: Some(1000),
                samples: 15,
                iters_per_sample: 2,
                stats: Stats {
                    median_ns: 123.0,
                    p95_ns: 456.5,
                    min_ns: 100.0,
                    mean_ns: 222.2,
                },
            },
            Record {
                kernel: "replan".to_owned(),
                bench: "weird \"name\"\nhere".to_owned(),
                elements: None,
                samples: 3,
                iters_per_sample: 1,
                stats: Stats {
                    median_ns: 1.0,
                    p95_ns: 2.0,
                    min_ns: 0.5,
                    mean_ns: 1.2,
                },
            },
        ]
    }

    #[test]
    fn parse_report_roundtrips_to_json() {
        let records = sample_records();
        let parsed = parse_report(&to_json(&records)).unwrap();
        assert_eq!(parsed.len(), records.len());
        for (a, b) in parsed.iter().zip(&records) {
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(a.bench, b.bench);
            assert_eq!(a.elements, b.elements);
            assert_eq!(a.samples, b.samples);
            assert_eq!(a.iters_per_sample, b.iters_per_sample);
            assert!((a.stats.median_ns - b.stats.median_ns).abs() < 0.05);
            assert!((a.stats.p95_ns - b.stats.p95_ns).abs() < 0.05);
            assert!((a.stats.min_ns - b.stats.min_ns).abs() < 0.05);
            assert!((a.stats.mean_ns - b.stats.mean_ns).abs() < 0.05);
        }
    }

    #[test]
    fn parse_report_rejects_garbage() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report("not json at all").is_err());
        assert!(
            parse_report("{\"schema\": \"schedflow-bench/v1\"}").is_err(),
            "kernels array required"
        );
        // Empty kernels array is a valid (empty) report.
        let empty = parse_report("{\"schema\": \"schedflow-bench/v1\", \"kernels\": []}").unwrap();
        assert!(empty.is_empty());
        // A record missing a stat field is malformed.
        assert!(parse_report(
            "{\"schema\": \"schedflow-bench/v1\", \"kernels\": [\
             {\"kernel\": \"k\", \"bench\": \"b\", \"elements\": null, \
              \"samples\": 3, \"iters_per_sample\": 1, \"median_ns\": 1.0}]}"
        )
        .is_err());
    }

    #[test]
    fn write_report_creates_parents_and_is_atomic() {
        let dir = std::env::temp_dir().join(format!(
            "schedflow-bench-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/report.json");
        // Parent directories do not exist yet: must be created.
        write_report(&path, &sample_records()).unwrap();
        let back = parse_report(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.len(), 2);
        // No stray temporary files left beside the report.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("report.json")]);
        // Overwriting in place also works (rename over existing file).
        write_report(&path, &sample_records()[..1]).unwrap();
        assert_eq!(
            parse_report(&std::fs::read_to_string(&path).unwrap())
                .unwrap()
                .len(),
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
