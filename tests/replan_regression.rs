//! Regression test for the versioned-update invariant the paper's §IV
//! hangs on: replanning (full or incremental) must never rewrite
//! history. Completed schedule instances stay linked to the entities
//! they produced and keep their actual dates; only open, downstream
//! work gets new versions.
//!
//! This locks in behaviour that previously only held by construction:
//! a future refactor that reversions completed nodes or shifts
//! upstream plans fails here, not in an experiment binary.

use hercules::Hercules;
use schedule::WorkDays;
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

fn asic(seed: u64) -> Hercules {
    Hercules::new(
        examples::asic_flow(),
        ToolLibrary::standard(),
        Team::of_size(3),
        seed,
    )
}

/// A manager planned to signoff with the RTL scope executed and
/// `WriteRtl` finished *late*, so there is a real slip to propagate.
/// Deterministic seed search, same pattern as the core crate's tests.
fn slipped_mid_project() -> Hercules {
    let mut seed = 0;
    loop {
        let mut h = asic(seed);
        h.plan("signoff_report").expect("plannable");
        h.execute("rtl").expect("executable");
        if h.db().finish_slip("WriteRtl").is_some_and(|s| s > 0.0) {
            return h;
        }
        seed += 1;
        assert!(seed < 200, "no slipping seed found");
    }
}

/// Snapshot of everything replanning must not touch.
struct Frozen {
    activity: String,
    plan_id: metadata::ScheduleInstanceId,
    actual_start: WorkDays,
    actual_finish: WorkDays,
    linked: metadata::EntityInstanceId,
}

fn freeze_completed(h: &Hercules) -> Vec<Frozen> {
    h.db()
        .activities()
        .filter_map(|a| {
            let plan = h.db().current_plan(a)?;
            if !plan.is_complete() {
                return None;
            }
            Some(Frozen {
                activity: a.to_owned(),
                plan_id: plan.id(),
                actual_start: h.db().actual_start(a).expect("complete has actual start"),
                actual_finish: h.db().actual_finish(a).expect("complete has actual finish"),
                linked: plan.linked_entity().expect("complete is linked"),
            })
        })
        .collect()
}

fn assert_history_intact(h: &Hercules, frozen: &[Frozen], context: &str) {
    assert!(!frozen.is_empty(), "{context}: nothing was completed");
    for f in frozen {
        let plan = h
            .db()
            .current_plan(&f.activity)
            .unwrap_or_else(|| panic!("{context}: {} lost its plan", f.activity));
        assert_eq!(
            plan.id(),
            f.plan_id,
            "{context}: {} was reversioned after completion",
            f.activity
        );
        assert_eq!(
            plan.linked_entity(),
            Some(f.linked),
            "{context}: {} lost its completion link",
            f.activity
        );
        let (start, finish) = (
            h.db().actual_start(&f.activity).expect("still has actuals"),
            h.db()
                .actual_finish(&f.activity)
                .expect("still has actuals"),
        );
        assert!(
            (start.days() - f.actual_start.days()).abs() < 1e-12
                && (finish.days() - f.actual_finish.days()).abs() < 1e-12,
            "{context}: {} actual dates moved: [{} .. {}] -> [{} .. {}]",
            f.activity,
            f.actual_start,
            f.actual_finish,
            start,
            finish
        );
    }
}

#[test]
fn slip_propagation_keeps_history_and_moves_only_downstream() {
    let mut h = slipped_mid_project();
    let frozen = freeze_completed(&h);
    let starts_before: Vec<(String, WorkDays)> = h
        .db()
        .activities()
        .map(|a| {
            (
                a.to_owned(),
                h.db().current_plan(a).expect("planned").planned_start(),
            )
        })
        .collect();

    let outcome = h.propagate_slip("WriteRtl").expect("planned");
    assert!(!outcome.is_empty(), "a real slip must shift something");
    assert!(outcome.slip_days.is_some_and(|s| s > 0.0));

    assert_history_intact(&h, &frozen, "propagate_slip");

    // No completed activity appears in the replanned set.
    for f in &frozen {
        assert!(
            outcome.replanned.iter().all(|(n, _)| n != &f.activity),
            "completed {} was replanned by slip propagation",
            f.activity
        );
    }
    // Everything *not* replanned keeps its planned start — only the
    // downstream cone moved, and it moved by exactly the slip.
    let slip = outcome.slip_days.unwrap();
    for (name, before) in &starts_before {
        let now = h.db().current_plan(name).expect("planned").planned_start();
        if outcome.replanned.iter().any(|(n, _)| n == name) {
            assert!(
                (now.days() - before.days() - slip).abs() < 1e-9,
                "{name} shifted by {} expected {slip}",
                now.days() - before.days()
            );
        } else {
            assert!(
                (now.days() - before.days()).abs() < 1e-12,
                "{name} moved without being in the downstream cone"
            );
        }
    }
    // Sanity: the schema's entry point is upstream and must not move.
    assert!(outcome.replanned.iter().all(|(n, _)| n != "CaptureSpec"));
}

#[test]
fn full_replan_keeps_history_and_reversions_only_open_work() {
    let mut h = slipped_mid_project();
    let frozen = freeze_completed(&h);

    let outcome = h.replan("signoff_report").expect("plannable");
    assert!(!outcome.is_empty(), "open work should be replanned");

    assert_history_intact(&h, &frozen, "replan");

    for f in &frozen {
        assert!(
            outcome.replanned.iter().all(|(n, _)| n != &f.activity),
            "completed {} was reversioned by full replan",
            f.activity
        );
    }
    // Every replanned instance is a fresh version starting no earlier
    // than the latest completed work — the future never overlaps the
    // recorded past.
    let latest_done = frozen
        .iter()
        .map(|f| f.actual_finish.days())
        .fold(0.0_f64, f64::max);
    for (name, sc) in &outcome.replanned {
        let inst = h.db().schedule_instance(*sc);
        assert!(inst.version() >= 2, "{name} replan did not version up");
        assert!(
            inst.planned_start().days() >= latest_done - 1e-9,
            "{name} replanned to start at {} before completed work ended at {latest_done}",
            inst.planned_start()
        );
    }
}
