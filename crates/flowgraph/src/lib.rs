//! Directed-acyclic-graph substrate for design flow management.
//!
//! Design flow management systems — the Roadmap Model, ELSIS, Hercules,
//! the Berkeley History Model, Hilda, VOV — all represent a design
//! process as a graph of activities and data linked by dependencies
//! (Level 2 of the four-level architecture surveyed in Johnson &
//! Brockman, DAC 1995). This crate provides the graph machinery those
//! levels are built from:
//!
//! * [`Dag`] — a stable-keyed directed graph with acyclicity enforced at
//!   edge-insertion time, so flow models are DAGs *by construction*.
//! * Traversals — Kahn topological order, the post-order walk Hercules
//!   uses for both schedule planning and task execution, DFS and BFS.
//! * Analyses — input/output cones (the "scope of the intended task"),
//!   longest paths (the backbone of critical-path scheduling), level
//!   assignment, transitive reduction, and graph statistics.
//! * [`builder::DagBuilder`] — ergonomic construction from string keys.
//!
//! # Example
//!
//! ```
//! use flowgraph::Dag;
//!
//! # fn main() -> Result<(), flowgraph::GraphError> {
//! let mut flow = Dag::new();
//! let netlist = flow.add_node("netlist");
//! let stimuli = flow.add_node("stimuli");
//! let performance = flow.add_node("performance");
//! flow.add_edge(netlist, performance, "simulate")?;
//! flow.add_edge(stimuli, performance, "simulate")?;
//!
//! // Planning and execution both run "from primary inputs to outputs".
//! let order = flow.topological_order()?;
//! assert_eq!(order.last(), Some(&performance));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod dag;
mod error;
mod traversal;

pub mod builder;

pub use analysis::{GraphStats, LongestPath};
pub use dag::{Dag, EdgeId, EdgeRef, NodeId, NodeRef};
pub use error::GraphError;
pub use traversal::{Bfs, Dfs, PostOrder, ReverseBfs};
