//! Property-based equivalence tests for the dirty-region incremental
//! CPM engine: after any sequence of slips, [`IncrementalCpm`] must
//! agree with a from-scratch [`ScheduleNetwork::analyze`] on every
//! date, slack, criticality flag, and the project duration.
//!
//! Durations are kept dyadic (multiples of 0.5 working days) so both
//! engines compute bit-identical floating-point values; the
//! [`IncrementalCpm::cross_check`] comparison is exact up to 1e-6.

use harness::prelude::*;
use schedule::{ActivityId, IncrementalCpm, ScheduleNetwork, WorkDays};

/// Random acyclic network: forward edges over n activities with random
/// dyadic durations (same shape as `cpm_properties.rs`).
fn arb_network() -> impl Strategy<Value = ScheduleNetwork> {
    (
        2usize..25,
        vec((any_u16(), any_u16()), 0..60),
        vec(0u32..20, 2..25),
    )
        .prop_map(|(n, pairs, durations)| {
            let mut net = ScheduleNetwork::new();
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    let d = durations.get(i).copied().unwrap_or(1) as f64 * 0.5;
                    net.add_activity(format!("t{i}"), WorkDays::new(d))
                        .expect("unique names")
                })
                .collect();
            for (a, b) in pairs {
                let i = (a as usize) % n;
                let j = (b as usize) % n;
                if i < j {
                    net.add_precedence(ids[i], ids[j]).expect("forward edges");
                }
            }
            net
        })
}

/// A pure pipeline (chain) network — the deepest dependency structure,
/// worst case for propagation distance.
fn arb_pipeline() -> impl Strategy<Value = ScheduleNetwork> {
    vec(1u32..16, 2..40).prop_map(|durations| {
        let mut net = ScheduleNetwork::new();
        let mut prev: Option<ActivityId> = None;
        for (i, d) in durations.iter().enumerate() {
            let id = net
                .add_activity(format!("s{i}"), WorkDays::new(f64::from(*d) * 0.5))
                .expect("unique names");
            if let Some(p) = prev {
                net.add_precedence(p, id).expect("chain edge");
            }
            prev = Some(id);
        }
        net
    })
}

/// Random slip steps: each step re-estimates up to 7 activities (by
/// index modulo n) to new dyadic durations. Steps may be empty and may
/// repeat activities.
fn arb_slips() -> impl Strategy<Value = Vec<Vec<(u16, u32)>>> {
    vec(vec((any_u16(), 0u32..20), 0..8), 1..5)
}

/// Applies one slip step to `net`, returning the (deduplicated) dirty
/// set actually passed to the incremental engine.
fn apply_step(
    net: &mut ScheduleNetwork,
    ids: &[ActivityId],
    step: &[(u16, u32)],
) -> Vec<ActivityId> {
    let mut dirty = Vec::new();
    for &(who, dur) in step {
        let id = ids[(who as usize) % ids.len()];
        net.set_duration(id, WorkDays::new(f64::from(dur) * 0.5))
            .expect("known activity");
        if !dirty.contains(&id) {
            dirty.push(id);
        }
    }
    dirty
}

harness::props! {
    fn incremental_tracks_full_cpm_on_random_dags(
        net in arb_network(),
        slips in arb_slips(),
    ) {
        let mut net = net;
        let ids: Vec<ActivityId> = net.activities().collect();
        let mut inc = net.analyze_incremental().expect("acyclic");
        prop_assert!(inc.cross_check(&net).is_ok(), "initial analysis diverged");
        for step in &slips {
            let dirty = apply_step(&mut net, &ids, step);
            let stats = inc.update(&net, &dirty).expect("valid dirty set");
            prop_assert!(!stats.full_rebuild, "no structural change occurred");
            prop_assert!(stats.dirty == dirty.len());
            if let Err(e) = inc.cross_check(&net) {
                panic!("incremental diverged after slips {dirty:?}: {e}");
            }
        }
    }

    fn incremental_tracks_full_cpm_on_pipelines(
        net in arb_pipeline(),
        slips in arb_slips(),
    ) {
        let mut net = net;
        let ids: Vec<ActivityId> = net.activities().collect();
        let mut inc = net.analyze_incremental().expect("acyclic");
        for step in &slips {
            let dirty = apply_step(&mut net, &ids, step);
            inc.update(&net, &dirty).expect("valid dirty set");
            if let Err(e) = inc.cross_check(&net) {
                panic!("pipeline incremental diverged after {dirty:?}: {e}");
            }
        }
    }

    fn empty_dirty_set_is_a_noop(net in arb_network()) {
        let mut inc = net.analyze_incremental().expect("acyclic");
        let before = inc.project_duration();
        let stats = inc.update(&net, &[]).expect("empty dirty set is legal");
        prop_assert_eq!(stats.dirty, 0);
        prop_assert_eq!(stats.forward_recomputed, 0);
        prop_assert_eq!(stats.backward_recomputed, 0);
        prop_assert_eq!(inc.project_duration(), before);
        prop_assert!(inc.cross_check(&net).is_ok());
    }

    fn whole_graph_dirty_matches_fresh_analysis(
        net in arb_network(),
        durations in vec(0u32..20, 2..40),
    ) {
        // Re-estimate EVERY activity, then declare the whole graph
        // dirty: the incremental result must equal a fresh analysis.
        let mut net = net;
        let ids: Vec<ActivityId> = net.activities().collect();
        let mut inc = net.analyze_incremental().expect("acyclic");
        for (i, &id) in ids.iter().enumerate() {
            let d = durations.get(i % durations.len()).copied().unwrap_or(1);
            net.set_duration(id, WorkDays::new(f64::from(d) * 0.5))
                .expect("known activity");
        }
        let stats = inc.update(&net, &ids).expect("whole graph dirty");
        prop_assert_eq!(stats.dirty, ids.len());
        prop_assert!(stats.forward_recomputed <= ids.len());
        prop_assert!(stats.backward_recomputed <= ids.len());
        if let Err(e) = inc.cross_check(&net) {
            panic!("whole-graph-dirty update diverged: {e}");
        }
        // And the derived CpmAnalysis agrees with a fresh one.
        let fresh = net.analyze().expect("acyclic");
        let derived = inc.analysis(&net);
        prop_assert_eq!(derived.project_duration(), fresh.project_duration());
        for &id in &ids {
            prop_assert_eq!(derived.is_critical(id), fresh.is_critical(id));
        }
    }

    fn updates_are_order_insensitive(net in arb_network(), slips in arb_slips()) {
        // Applying all slips in one batch must equal applying them
        // step by step (the engine's state depends only on the final
        // durations, not the update history).
        let mut stepwise_net = net.clone();
        let ids: Vec<ActivityId> = stepwise_net.activities().collect();
        let mut stepwise = stepwise_net.analyze_incremental().expect("acyclic");
        let mut all_dirty: Vec<ActivityId> = Vec::new();
        for step in &slips {
            let dirty = apply_step(&mut stepwise_net, &ids, step);
            stepwise.update(&stepwise_net, &dirty).expect("valid dirty set");
            for id in dirty {
                if !all_dirty.contains(&id) {
                    all_dirty.push(id);
                }
            }
        }
        let mut batch_net = net;
        let mut batch = batch_net.analyze_incremental().expect("acyclic");
        for step in &slips {
            apply_step(&mut batch_net, &ids, step);
        }
        batch.update(&batch_net, &all_dirty).expect("valid dirty set");
        prop_assert_eq!(stepwise.project_duration(), batch.project_duration());
        for &id in &ids {
            prop_assert_eq!(stepwise.early_start(id), batch.early_start(id));
            prop_assert_eq!(stepwise.late_start(id), batch.late_start(id));
        }
    }

    fn structural_changes_force_a_full_rebuild(
        net in arb_network(),
        dur in 0u32..20,
        attach in any_u16(),
    ) {
        // Growing the network after the snapshot must be detected via
        // the structure revision: the next update — even with an empty
        // dirty set — rebuilds from scratch onto the new topology and
        // tracks the full analysis again afterwards.
        let mut net = net;
        let mut inc = net.analyze_incremental().expect("acyclic");
        let ids: Vec<ActivityId> = net.activities().collect();
        let tail = net
            .add_activity("grown", WorkDays::new(f64::from(dur) * 0.5))
            .expect("fresh name");
        let parent = ids[(attach as usize) % ids.len()];
        net.add_precedence(parent, tail).expect("forward edge");
        let stats = inc.update(&net, &[]).expect("rebuild path");
        prop_assert!(stats.full_rebuild, "structural change must rebuild");
        if let Err(e) = inc.cross_check(&net) {
            panic!("post-rebuild state diverged: {e}");
        }
        // And the engine is reusable incrementally after the rebuild.
        net.set_duration(tail, WorkDays::new(f64::from(dur) * 0.5 + 1.0))
            .expect("known id");
        let stats = inc.update(&net, &[tail]).expect("valid dirty set");
        prop_assert!(!stats.full_rebuild, "duration slip is not structural");
        prop_assert!(inc.cross_check(&net).is_ok());
    }
}

#[test]
fn incremental_cpm_is_reusable_across_many_structured_updates() {
    // Deterministic long-run exercise: a 400-activity layered DAG
    // with 100 single-slip updates keeps tracking full CPM, and
    // single-slip work stays far below a full recompute on average.
    let mut net = ScheduleNetwork::new();
    let mut layers: Vec<Vec<ActivityId>> = Vec::new();
    for l in 0..40 {
        let mut this = Vec::new();
        for w in 0..10 {
            let id = net
                .add_activity(format!("l{l}w{w}"), WorkDays::new(1.0 + (w % 3) as f64))
                .expect("unique names");
            if let Some(prev) = layers.last() {
                net.add_precedence(prev[w], id).expect("edge");
                net.add_precedence(prev[(w + 1) % 10], id).expect("edge");
            }
            this.push(id);
        }
        layers.push(this);
    }
    let ids: Vec<ActivityId> = net.activities().collect();
    let mut inc: IncrementalCpm = net.analyze_incremental().expect("acyclic");
    let mut rng = SplitMix64::new(0xC0FFEE);
    let mut recomputed = 0usize;
    for _ in 0..100 {
        let id = ids[(rng.next_u64() as usize) % ids.len()];
        let d = 0.5 * ((rng.next_u64() % 12) as f64 + 1.0);
        net.set_duration(id, WorkDays::new(d)).expect("known id");
        let stats = inc.update(&net, &[id]).expect("single slip");
        recomputed += stats.total_recomputed();
        inc.cross_check(&net).expect("tracks full CPM");
    }
    // 100 single slips must cost well under 100 full recomputes
    // (2 * 400 nodes each); this is the entire point of the engine.
    assert!(
        recomputed < 100 * ids.len(),
        "incremental engine did {recomputed} node recomputes over 100 slips"
    );
}
