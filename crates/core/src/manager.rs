use std::collections::{BTreeSet, HashMap};

use metadata::{EntityInstanceId, Journal, MetadataDb};
use schedule::WorkDays;
use schema::TaskSchema;
use simtools::workload::{primary_input_data, Team};
use simtools::{FaultInjector, ToolLibrary};

use crate::error::HerculesError;
use crate::plan::{PlanCache, PlanStats};
use crate::retry::RetryPolicy;
use crate::task::TaskTree;

/// The integrated workflow manager: one object owning the task schema
/// (Level 1), the metadata database (Levels 3–4), the tool substrate,
/// and the design team — so that planning, executing, and tracking all
/// read and write the *same* state.
///
/// See the [crate-level docs](crate) for the full walkthrough; the
/// type's methods follow the paper's procedure:
///
/// 1. [`Hercules::new`] — define the schema, initialise the database.
/// 2. [`Hercules::extract_task_tree`] — scope a task.
/// 3. [`Hercules::plan`](crate::Hercules::plan) — simulate execution,
///    creating schedule instances.
/// 4. [`Hercules::execute`](crate::Hercules::execute) — run the flow,
///    creating entity instances and completion links.
/// 5. [`Hercules::status`](crate::Hercules::status) /
///    [`Hercules::replan`](crate::Hercules::replan) — track and adapt.
#[derive(Debug, Clone)]
pub struct Hercules {
    pub(crate) schema: TaskSchema,
    pub(crate) db: MetadataDb,
    pub(crate) tools: ToolLibrary,
    pub(crate) team: Team,
    pub(crate) seed: u64,
    pub(crate) clock: WorkDays,
    pub(crate) estimates: HashMap<String, WorkDays>,
    pub(crate) supplied: HashMap<String, EntityInstanceId>,
    /// Per-target planning caches driving the incremental replan
    /// engine: replanning an unchanged scope reuses the cached network
    /// and only recomputes the dirty cone.
    pub(crate) plan_cache: HashMap<String, PlanCache>,
    pub(crate) last_plan_stats: Option<PlanStats>,
    /// The fault policy layered over tool invocations during
    /// [`execute`](Hercules::execute). Defaults to no faults.
    pub(crate) fault_injector: FaultInjector,
    /// How execution reacts to injected faults: retries, backoff,
    /// timeouts, and the blocked-activity budget.
    pub(crate) retry_policy: RetryPolicy,
    /// Activities declared blocked after exhausting the retry policy.
    pub(crate) blocked: BTreeSet<String>,
}

impl Hercules {
    /// Creates a manager for `schema`: the task database is initialised
    /// with one entity container per class and one schedule container
    /// per activity.
    ///
    /// `seed` controls all synthetic tool behaviour, making every run
    /// of a project reproducible.
    pub fn new(schema: TaskSchema, tools: ToolLibrary, team: Team, seed: u64) -> Self {
        let db = MetadataDb::for_schema(&schema);
        Hercules {
            schema,
            db,
            tools,
            team,
            seed,
            clock: WorkDays::ZERO,
            estimates: HashMap::new(),
            supplied: HashMap::new(),
            plan_cache: HashMap::new(),
            last_plan_stats: None,
            fault_injector: FaultInjector::none(),
            retry_policy: RetryPolicy::default(),
            blocked: BTreeSet::new(),
        }
    }

    /// Installs a fault policy for subsequent
    /// [`execute`](Hercules::execute) calls. Accepts a
    /// [`simtools::FaultPlan`], a
    /// [`simtools::BrokenToolPlan`], or a prebuilt
    /// [`FaultInjector`].
    pub fn set_fault_plan(&mut self, faults: impl Into<FaultInjector>) {
        self.fault_injector = faults.into();
    }

    /// Builder-style variant of [`set_fault_plan`](Hercules::set_fault_plan).
    #[must_use]
    pub fn with_fault_plan(mut self, faults: impl Into<FaultInjector>) -> Self {
        self.set_fault_plan(faults);
        self
    }

    /// The installed fault policy.
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault_injector
    }

    /// Replaces the retry policy governing fault handling during
    /// execution.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry_policy = policy;
    }

    /// The retry policy governing fault handling during execution.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry_policy
    }

    /// Activities currently declared blocked (retry policy exhausted by
    /// injected faults), in sorted order.
    pub fn blocked_activities(&self) -> Vec<&str> {
        self.blocked.iter().map(String::as_str).collect()
    }

    /// Whether `activity` is currently blocked.
    pub fn is_blocked(&self, activity: &str) -> bool {
        self.blocked.contains(activity)
    }

    /// Clears the blocked set — e.g. after the operator repairs a
    /// broken tool and installs a new fault plan, so the next
    /// [`execute`](Hercules::execute) retries the activities.
    pub fn clear_blocked(&mut self) {
        self.blocked.clear();
    }

    /// Enables write-ahead journaling on the metadata database — see
    /// [`metadata::MetadataDb::enable_journal`]. Call before the first
    /// mutation (planning or execution) so recovery can replay the full
    /// history.
    pub fn enable_journal(&mut self) {
        self.db.enable_journal();
    }

    /// Detaches and returns the database journal, if journaling was
    /// enabled — see [`metadata::MetadataDb::take_journal`].
    pub fn take_journal(&mut self) -> Option<Journal> {
        self.db.take_journal()
    }

    /// Arms a simulated crash in the metadata database after `after`
    /// more journaled mutations — see
    /// [`metadata::MetadataDb::inject_crash_after`]. Used by the chaos
    /// suite to prove crash recovery.
    pub fn inject_db_crash_after(&mut self, after: u32) {
        self.db.inject_crash_after(after);
    }

    /// Instrumentation from the most recent
    /// [`plan`](Hercules::plan) / [`replan`](Hercules::replan) call:
    /// whether the cached network was reused and how many CPM node
    /// recomputations the incremental engine performed. `None` before
    /// the first planning pass.
    pub fn last_plan_stats(&self) -> Option<PlanStats> {
        self.last_plan_stats
    }

    /// The schema this manager was initialised from.
    pub fn schema(&self) -> &TaskSchema {
        &self.schema
    }

    /// Read access to the metadata database (both spaces).
    pub fn db(&self) -> &MetadataDb {
        &self.db
    }

    /// The design team.
    pub fn team(&self) -> &Team {
        &self.team
    }

    /// The current project clock (working days since project start).
    pub fn clock(&self) -> WorkDays {
        self.clock
    }

    /// Advances the project clock (e.g. idle calendar time between
    /// planning and execution). The clock never moves backwards.
    pub fn advance_clock(&mut self, to: WorkDays) {
        if to.days() > self.clock.days() {
            self.clock = to;
        }
    }

    /// Records the designer's intuition estimate for an activity's
    /// duration, used by planning when no measured history exists.
    ///
    /// # Errors
    ///
    /// [`HerculesError::UnknownActivity`] if the schema has no such
    /// activity.
    pub fn set_estimate(
        &mut self,
        activity: &str,
        duration: WorkDays,
    ) -> Result<(), HerculesError> {
        if self.schema.rule(activity).is_none() {
            return Err(HerculesError::UnknownActivity(activity.to_owned()));
        }
        self.estimates.insert(activity.to_owned(), duration);
        Ok(())
    }

    /// Extracts the task tree covering `target` — step 2 of the
    /// procedure, shared by planning and execution.
    ///
    /// # Errors
    ///
    /// [`HerculesError::UnknownTarget`] if `target` names nothing.
    pub fn extract_task_tree(&self, target: &str) -> Result<TaskTree, HerculesError> {
        TaskTree::extract(&self.schema, target)
    }

    /// The duration estimate planning uses for `activity`, in priority
    /// order: (1) measured history from the metadata database — "the
    /// duration of an activity can be based ... on the measured results
    /// of similar tasks"; (2) the designer's intuition estimate;
    /// (3) the tool model's expected activity duration.
    pub fn duration_estimate(&self, activity: &str) -> Result<WorkDays, HerculesError> {
        let rule = self
            .schema
            .rule(activity)
            .ok_or_else(|| HerculesError::UnknownActivity(activity.to_owned()))?;
        if let Some(measured) = self.db.last_duration(activity) {
            return Ok(measured);
        }
        if let Some(&intuition) = self.estimates.get(activity) {
            return Ok(intuition);
        }
        let input_bytes = self.planned_input_bytes(activity);
        let model = self.tools.resolve(rule.tool());
        Ok(WorkDays::new(model.expected_activity_duration(input_bytes)))
    }

    /// Estimated input size for `activity` before execution: the sum of
    /// its producers' nominal output sizes (1 KiB for designer-supplied
    /// primary inputs).
    pub(crate) fn planned_input_bytes(&self, activity: &str) -> u64 {
        let Some(rule) = self.schema.rule(activity) else {
            return 0;
        };
        rule.inputs()
            .iter()
            .map(|input| match self.schema.producer_of(input) {
                Some(producer) => self.tools.resolve(producer.tool()).output_bytes(),
                None => 1024,
            })
            .sum()
    }

    /// Replaces the manager's database with a restored one (loaded via
    /// [`metadata::MetadataDb::load`]), recomputing the clock (latest
    /// timestamp in the database) and the primary-input registry.
    ///
    /// The database must have been produced by a manager on the same
    /// schema; containers are not re-validated against it.
    pub fn restore_db(&mut self, db: MetadataDb) {
        let mut clock = WorkDays::ZERO;
        for run in db.runs() {
            if let Some(f) = run.finished_at() {
                clock = clock.max(f);
            } else {
                clock = clock.max(run.started_at());
            }
        }
        for session in db.planning_sessions() {
            clock = clock.max(session.created_at());
        }
        // Rebuild the supplied-primary-input registry from instances
        // with no producing run.
        self.supplied.clear();
        for class in db.entity_classes().map(str::to_owned).collect::<Vec<_>>() {
            if let Some(container) = db.entity_container(&class) {
                if let Some(&first_supplied) = container
                    .iter()
                    .find(|&&id| db.entity_instance(id).produced_by().is_none())
                {
                    self.supplied.insert(class, first_supplied);
                }
            }
        }
        self.db = db;
        self.clock = clock;
        // The restored history may change measured-duration estimates
        // arbitrarily; drop planning caches rather than trust them.
        self.plan_cache.clear();
        self.last_plan_stats = None;
        // Blocked state is session-local (it reflects this process's
        // retry bookkeeping, not database state): start fresh.
        self.blocked.clear();
    }

    /// Supplies a primary-input instance for `class` (synthetic content
    /// derived from the project seed), or returns the already-supplied
    /// instance — primary inputs are provided once, like the paper's
    /// `stimuli`.
    ///
    /// # Errors
    ///
    /// [`HerculesError::Metadata`] if `class` has no container.
    pub fn supply_primary_input(
        &mut self,
        class: &str,
        designer: &str,
    ) -> Result<EntityInstanceId, HerculesError> {
        if let Some(&id) = self.supplied.get(class) {
            return Ok(id);
        }
        let content = primary_input_data(class, self.seed);
        let data = self.db.store_data(format!("{class}.dat"), content);
        let id = self.db.supply_input(class, designer, self.clock, data)?;
        self.supplied.insert(class.to_owned(), id);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;

    fn manager() -> Hercules {
        Hercules::new(
            examples::circuit_design(),
            ToolLibrary::standard(),
            Team::of_size(2),
            7,
        )
    }

    #[test]
    fn construction_initialises_containers() {
        let h = manager();
        assert!(h.db().entity_container("netlist").is_some());
        assert!(h.db().schedule_container("Simulate").is_some());
        assert_eq!(h.clock(), WorkDays::ZERO);
        assert_eq!(h.team().len(), 2);
        assert_eq!(h.schema().name(), "circuit");
    }

    #[test]
    fn clock_is_monotonic() {
        let mut h = manager();
        h.advance_clock(WorkDays::new(5.0));
        h.advance_clock(WorkDays::new(3.0));
        assert_eq!(h.clock(), WorkDays::new(5.0));
    }

    #[test]
    fn estimate_requires_known_activity() {
        let mut h = manager();
        assert!(h.set_estimate("Create", WorkDays::new(3.0)).is_ok());
        assert!(matches!(
            h.set_estimate("Fabricate", WorkDays::new(1.0)),
            Err(HerculesError::UnknownActivity(_))
        ));
    }

    #[test]
    fn duration_estimate_priorities() {
        let mut h = manager();
        // No history, no intuition: tool-model estimate.
        let model_est = h.duration_estimate("Create").unwrap();
        assert!(model_est.days() > 0.0);
        // Intuition overrides the model.
        h.set_estimate("Create", WorkDays::new(9.0)).unwrap();
        assert_eq!(h.duration_estimate("Create").unwrap(), WorkDays::new(9.0));
        assert!(h.duration_estimate("Missing").is_err());
    }

    #[test]
    fn planned_input_bytes_uses_producer_models() {
        let h = manager();
        // Create has no inputs.
        assert_eq!(h.planned_input_bytes("Create"), 0);
        // Simulate consumes netlist (producer: netlist_editor, 8 KiB)
        // and stimuli (primary input, 1 KiB).
        assert_eq!(h.planned_input_bytes("Simulate"), 8 * 1024 + 1024);
    }

    #[test]
    fn restore_db_recovers_clock_and_supplied() {
        let mut h = manager();
        h.supply_primary_input("stimuli", "alice").unwrap();
        let run =
            h.db.begin_run("Create", "alice", WorkDays::new(1.0))
                .unwrap();
        let data = h.db.store_data("x", vec![]);
        h.db.finish_run(run, "netlist", data, WorkDays::new(4.0), &[])
            .unwrap();
        let dump = h.db().dump();

        let mut restored = manager();
        restored.restore_db(metadata::MetadataDb::load(&dump).unwrap());
        assert_eq!(restored.clock(), WorkDays::new(4.0));
        // The supplied registry is rebuilt: supplying again reuses the
        // restored instance.
        let again = restored.supply_primary_input("stimuli", "bob").unwrap();
        assert_eq!(restored.db().entity_container("stimuli").unwrap().len(), 1);
        assert_eq!(restored.db().entity_instance(again).creator(), "alice");
    }

    #[test]
    fn primary_inputs_supplied_once() {
        let mut h = manager();
        let a = h.supply_primary_input("stimuli", "alice").unwrap();
        let b = h.supply_primary_input("stimuli", "bob").unwrap();
        assert_eq!(a, b);
        assert_eq!(h.db().entity_container("stimuli").unwrap().len(), 1);
        assert!(h.supply_primary_input("ghost", "alice").is_err());
    }
}
