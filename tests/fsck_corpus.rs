//! Golden tests over the committed corruption corpus in
//! `artifacts/corrupt_roots/`: five copies of one small project, each
//! with a different kind of damage (none, torn tail, corrupt interior
//! record, rotted snapshot, missing `CURRENT`). The corpus pins the
//! scrub verdicts — exit code, per-file classification, detail text —
//! so a recovery-policy change shows up as a reviewable diff, and the
//! repair test proves `--repair` fixes exactly the repairable cases.
//!
//! Regenerate after an intentional verdict change:
//!
//! ```text
//! cargo run --release -p dac95-schedflow --bin herc -- \
//!     fsck artifacts/corrupt_roots > artifacts/corrupt_roots/expected.txt
//! ```

use std::fs;
use std::path::Path;
use std::process::Command;

/// Runs `herc` from the workspace root (the corpus verdicts embed
/// root-relative paths, so the cwd matters).
fn herc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_herc"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(args)
        .output()
        .expect("spawn herc")
}

#[test]
fn scrub_verdicts_match_the_committed_golden() {
    let out = herc(&["fsck", "artifacts/corrupt_roots"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a root with damaged projects must exit 1"
    );
    let expected = fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("artifacts/corrupt_roots/expected.txt"),
    )
    .expect("committed golden");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout, expected,
        "fsck verdicts drifted from artifacts/corrupt_roots/expected.txt; \
         if the change is intentional, regenerate the golden (see module docs)"
    );
}

/// Copies the corpus somewhere writable (repair quarantines and
/// rebuilds in place; the committed corpus must stay pristine).
fn scratch_corpus() -> std::path::PathBuf {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("artifacts/corrupt_roots");
    let dst = std::env::temp_dir().join(format!(
        "herc-fsck-corpus-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dst);
    for case in fs::read_dir(&src).expect("corpus exists") {
        let case = case.expect("read corpus entry").path();
        if !case.is_dir() {
            continue;
        }
        let out = dst.join(case.file_name().expect("named dir"));
        fs::create_dir_all(&out).expect("create case dir");
        for file in fs::read_dir(&case).expect("read case") {
            let file = file.expect("read case entry").path();
            fs::copy(&file, out.join(file.file_name().expect("named file"))).expect("copy");
        }
    }
    dst
}

#[test]
fn repair_fixes_exactly_the_repairable_cases() {
    let root = scratch_corpus();
    let root_str = root.to_str().expect("utf-8 path");
    // Repair: the interior rot is rebuilt from snapshot + valid tail
    // prefix; the rotted snapshot (no other generation) and the
    // missing CURRENT stay damaged, so the exit code is still 1.
    let out = herc(&["fsck", root_str, "--repair"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("repaired: rebuilt"), "{stdout}");
    // A second pass agrees: exactly the unrepairable two remain.
    let out = herc(&["fsck", root_str]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for line in [
        "project healthy: ok",
        "project interior_rot: ok",
        "project torn_tail: ok",
        "project headless: DAMAGED",
        "project snapshot_rot: DAMAGED",
    ] {
        assert!(stdout.contains(line), "missing {line:?} in:\n{stdout}");
    }
    // The damage was quarantined, not deleted.
    assert!(root.join("interior_rot/tail-0.journal.quarantine").exists());
    let _ = fs::remove_dir_all(&root);
}
