//! Chaos under load: the PR-3 failure-semantics invariants must
//! survive the network layer.
//!
//! Part A replays the 64-seed fault-injection scenarios *through the
//! server* with concurrent clients (status polls and replans racing
//! the faulted execution) plus a mid-load compaction, and then checks
//! the invariants directly on the kernel:
//!
//! 1. **no-abort** — injected tool faults never abort a session, so
//!    every `run` answers 200 (a 422/5xx would be an abort leaking
//!    through the transport);
//! 2. **blocked-never-complete** — no blocked activity is ever linked
//!    to a completed schedule instance;
//! 3. **replay ≡ live** — journal recovery reproduces the live
//!    database byte-for-byte;
//! 4. **generational-ID safety** — compacting mid-load (generation
//!    bump, stale-handle rejection) never corrupts state or breaks
//!    subsequent requests.
//!
//! Part B is the crash→recover→re-serve case from `scripts/ws_e2e.sh`,
//! network edition: serve a persistent root, run a project over HTTP,
//! kill the server, tear the journal tail (the half-line a process
//! killed mid-write leaves), re-serve the same root from a cold
//! workspace, and require the byte-identical status report.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hercules::chaos::ChaosScenario;
use hercules::Workspace;
use metadata::MetadataDb;
use serve::{Client, Server, ServerConfig};
use simtools::FaultPlan;

const SEEDS: u64 = 64;

fn schema_source_of(scenario: &ChaosScenario) -> String {
    format!(
        "schema {};\n{}",
        scenario.schema().name(),
        scenario.schema().to_source()
    )
}

/// Runs one seeded scenario through the server and checks every
/// invariant; returns violations instead of panicking so one sweep
/// reports all bad seeds.
fn run_scenario(seed: u64, client: &Client, ws: &Workspace) -> Vec<String> {
    let mut violations = Vec::new();
    let scenario = ChaosScenario::from_seed(seed);
    let name = format!("chaos{seed}");
    let target = scenario.target().to_owned();

    let resp = client
        .post(
            &format!(
                "/projects/{name}?team={}&seed={}",
                scenario.team_size(),
                scenario.project_seed()
            ),
            schema_source_of(&scenario).as_bytes(),
        )
        .expect("create project");
    if resp.status != 201 {
        return vec![format!(
            "seed {seed}: create -> {}: {}",
            resp.status, resp.body
        )];
    }
    let resp = client
        .post(&format!("/projects/{name}/plan?target={target}"), b"")
        .expect("plan");
    if resp.status != 200 {
        return vec![format!(
            "seed {seed}: plan -> {}: {}",
            resp.status, resp.body
        )];
    }

    // Arm the scenario's fault plan directly on the shared project
    // handle — the server and this test see the same kernel.
    let project = ws.project(&name).expect("registered via server");
    project.update(|h| {
        h.set_fault_plan(FaultPlan::seeded(scenario.fault_seed()).with_persistent_rate(0.25));
    });

    // Phase 1: faulted execution racing status polls and replans.
    let failed = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let run_client = client.clone();
        let run_name = name.clone();
        let run_target = target.clone();
        let failed_run = Arc::clone(&failed);
        scope.spawn(move || {
            let resp = run_client
                .post(
                    &format!("/projects/{run_name}/run?target={run_target}"),
                    b"",
                )
                .expect("run request");
            // Invariant 1: injected faults never abort the session.
            if resp.status != 200 {
                eprintln!("seed run aborted: {} {}", resp.status, resp.body);
                failed_run.store(true, Ordering::SeqCst);
            }
        });
        for _ in 0..2 {
            let poll_client = client.clone();
            let poll_name = name.clone();
            let failed_poll = Arc::clone(&failed);
            scope.spawn(move || {
                for _ in 0..4 {
                    let resp = poll_client
                        .get(&format!("/projects/{poll_name}/status"))
                        .expect("status poll");
                    if resp.status != 200 {
                        failed_poll.store(true, Ordering::SeqCst);
                    }
                }
            });
        }
        let replan_client = client.clone();
        let replan_name = name.clone();
        let replan_target = target.clone();
        let failed_replan = Arc::clone(&failed);
        scope.spawn(move || {
            for _ in 0..3 {
                let resp = replan_client
                    .post(
                        &format!("/projects/{replan_name}/replan?target={replan_target}"),
                        b"",
                    )
                    .expect("replan request");
                if resp.status != 200 {
                    eprintln!("seed replan failed: {} {}", resp.status, resp.body);
                    failed_replan.store(true, Ordering::SeqCst);
                }
            }
        });
    });
    if failed.load(Ordering::SeqCst) {
        violations.push(format!(
            "seed {seed}: a request aborted under injected faults"
        ));
    }

    // Invariants on the kernel the server mutated.
    project.read(|h| {
        // Invariant 2: blocked is never linked complete.
        for blocked in h.blocked_activities() {
            if h.db()
                .current_plan(blocked)
                .is_some_and(|p| p.is_complete())
            {
                violations.push(format!("seed {seed}: blocked {blocked} is linked complete"));
            }
        }
        if let Err(errors) = h.db().check_invariants() {
            for e in errors {
                violations.push(format!("seed {seed}: live invariant: {e}"));
            }
        }
        // Invariant 3: replay ≡ live, after all the network traffic.
        match h.db().journal() {
            Some(journal) => match MetadataDb::recover(journal) {
                Ok(replayed) => {
                    if replayed.dump() != h.db().dump() {
                        violations
                            .push(format!("seed {seed}: journal replay diverges from live db"));
                    }
                }
                Err(e) => violations.push(format!("seed {seed}: journal replay failed: {e}")),
            },
            None => violations.push(format!("seed {seed}: journal disappeared")),
        }
    });

    // Phase 2 (every 8th seed to bound runtime): compaction racing
    // live traffic — generational-ID safety under network concurrency.
    if seed.is_multiple_of(8) {
        let generation_before = project.read(|h| h.db().generation());
        let failed_gc = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let gc_project = Arc::clone(&project);
            scope.spawn(move || {
                gc_project.gc().expect("mid-load gc");
            });
            let poll_client = client.clone();
            let poll_name = name.clone();
            let poll_target = target.clone();
            let failed_poll = Arc::clone(&failed_gc);
            scope.spawn(move || {
                for _ in 0..3 {
                    let s = poll_client
                        .get(&format!("/projects/{poll_name}/status"))
                        .expect("status during gc");
                    let r = poll_client
                        .post(
                            &format!("/projects/{poll_name}/replan?target={poll_target}"),
                            b"",
                        )
                        .expect("replan during gc");
                    if s.status != 200 || r.status != 200 {
                        failed_poll.store(true, Ordering::SeqCst);
                    }
                }
            });
        });
        if failed_gc.load(Ordering::SeqCst) {
            violations.push(format!("seed {seed}: request failed during mid-load gc"));
        }
        project.read(|h| {
            if h.db().generation() <= generation_before {
                violations.push(format!("seed {seed}: gc did not bump the generation"));
            }
            if let Err(errors) = h.db().check_invariants() {
                for e in errors {
                    violations.push(format!("seed {seed}: post-gc invariant: {e}"));
                }
            }
        });
        // The restamped world still serves writes.
        let resp = client
            .post(&format!("/projects/{name}/replan?target={target}"), b"")
            .expect("post-gc replan");
        if resp.status != 200 {
            violations.push(format!(
                "seed {seed}: post-gc replan -> {}: {}",
                resp.status, resp.body
            ));
        }
    }
    violations
}

#[test]
fn chaos_seeds_hold_invariants_under_network_concurrency() {
    let ws = Arc::new(Workspace::in_memory());
    let server = Server::start(
        Arc::clone(&ws),
        ServerConfig {
            workers: 6,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let client = Client::new(server.addr());
    let mut violations = Vec::new();
    for seed in 0..SEEDS {
        violations.extend(run_scenario(seed, &client, &ws));
    }
    server.shutdown();
    assert!(
        violations.is_empty(),
        "{} violation(s) across {SEEDS} seeds:\n{}",
        violations.len(),
        violations.join("\n")
    );
}

#[test]
fn crash_recover_reserve_is_byte_identical() {
    let root = std::env::temp_dir().join(format!("serve-chaos-reserve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("mkdir root");

    let scenario = ChaosScenario::from_seed(3);
    let target = scenario.target().to_owned();
    let source = schema_source_of(&scenario);

    // Serve, create, run, snapshot the status — all over HTTP.
    let server = Server::start(
        Arc::new(Workspace::persistent(&root)),
        ServerConfig::default(),
    )
    .expect("bind first server");
    let client = Client::new(server.addr());
    let resp = client
        .post(
            &format!(
                "/projects/alpha?team={}&seed={}",
                scenario.team_size(),
                scenario.project_seed()
            ),
            source.as_bytes(),
        )
        .expect("create");
    assert_eq!(resp.status, 201, "{}", resp.body);
    let resp = client
        .post(&format!("/projects/alpha/run?target={target}"), b"")
        .expect("run");
    assert_eq!(resp.status, 200, "{}", resp.body);
    server.shutdown();

    // Reference snapshot from a clean reopen — the same cold-start
    // path the post-crash server takes, so the only variable left in
    // the comparison is the torn journal line.
    let server = Server::start(
        Arc::new(Workspace::persistent(&root)),
        ServerConfig::default(),
    )
    .expect("bind reference server");
    let client = Client::new(server.addr());
    let before = client.get("/projects/alpha/status").expect("status before");
    assert_eq!(before.status, 200, "{}", before.body);
    server.shutdown();

    // Crash: a torn half-line at the end of the journal tail, exactly
    // what a process killed mid-append leaves behind (same injection
    // as scripts/ws_e2e.sh).
    let tail = std::fs::read_dir(root.join("alpha"))
        .expect("project dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("tail-") && name.ends_with(".journal")
        })
        .expect("journal tail file");
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&tail)
            .expect("open tail");
        f.write_all(b"begin-run Create al").expect("tear tail");
    }

    // Re-serve the same root from a cold workspace: the saved
    // session config (project.conf) lets the server reopen the
    // project with no schema in hand, and recovery shrugs off the
    // torn line.
    let server = Server::start(
        Arc::new(Workspace::persistent(&root)),
        ServerConfig::default(),
    )
    .expect("bind second server");
    let client = Client::new(server.addr());
    let listing = client.get("/projects").expect("list");
    assert!(
        listing.body.lines().any(|l| l == "alpha"),
        "on-disk project must be listed after restart: {:?}",
        listing.body
    );
    let after = client.get("/projects/alpha/status").expect("status after");
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(
        before.body, after.body,
        "status must be byte-identical across crash -> recover -> re-serve"
    );
    // …and the recovered project is still writable over the wire.
    let resp = client
        .post(&format!("/projects/alpha/replan?target={target}"), b"")
        .expect("replan after recovery");
    assert_eq!(resp.status, 200, "{}", resp.body);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
