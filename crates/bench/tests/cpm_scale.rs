//! The B14 acceptance gate for the data-oriented CPM core.
//!
//! Host-independent assertions (ratios, not wall-clock floors, so a
//! slow single-core CI container passes on shape alone):
//!
//! * the full pass scales subquadratically from 10⁴ to 10⁵ activities
//!   (a 10× element growth must cost well under the ~100× a quadratic
//!   object-graph walk would);
//! * an incremental slack-absorbed leaf slip stays ≥100× faster than a
//!   full recompute at 10⁵ activities, with a dirty cone that never
//!   grows with the schedule;
//! * the level-parallel passes are thread-count invariant: one worker
//!   and four produce the identical analysis, bit for bit.

use bench::kernels::cpm_scale::scale_network;
use schedule::WorkDays;

/// Min wall-seconds of `f` over `tries` runs — min, not mean, to shrug
/// off scheduler noise on loaded CI hosts.
#[cfg(not(debug_assertions))]
fn best_secs<R>(tries: usize, mut f: impl FnMut() -> R) -> f64 {
    (0..tries)
        .map(|_| {
            let t0 = std::time::Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn threads_are_invisible_and_leaf_cone_is_constant() {
    let (mut net, last) = scale_network(100_000);
    // Identical analyses for any worker count, including the critical
    // path and every per-activity date.
    let serial = net.analyze_with_threads(1).expect("acyclic");
    let parallel = net.analyze_with_threads(4).expect("acyclic");
    assert_eq!(
        serial, parallel,
        "level-parallel CPM diverged from the serial sweep"
    );

    // Slack-absorbed leaf slip: heavy sibling sinks, 1 <-> 2.5 toggle.
    for &id in &last {
        net.set_duration(id, WorkDays::new(5.0)).expect("known id");
    }
    let leaf = last[last.len() / 2];
    net.set_duration(leaf, WorkDays::new(1.0))
        .expect("known id");
    let mut inc = net.analyze_incremental().expect("acyclic");
    net.set_duration(leaf, WorkDays::new(2.5))
        .expect("known id");
    let stats = inc.update(&net, &[leaf]).expect("known dirty set");
    assert!(!stats.full_rebuild);
    eprintln!(
        "cpm_scale: leaf slip at 100k activities recomputed {} (forward {} / backward {})",
        stats.total_recomputed(),
        stats.forward_recomputed,
        stats.backward_recomputed
    );
    assert!(
        stats.total_recomputed() <= 64,
        "slack-absorbed leaf slip recomputed {} activities on a 100k \
         graph; the dirty cone should be O(1), not O(n)",
        stats.total_recomputed()
    );
}

/// Timing gates only make sense on optimized builds (debug builds also
/// cross-check every incremental update against a full pass, which is
/// the very cost this gate measures).
#[cfg(not(debug_assertions))]
#[test]
fn full_pass_subquadratic_and_incremental_stays_micro() {
    const TRIES: usize = 5;

    let (net4, _) = scale_network(10_000);
    let (mut net5, last) = scale_network(100_000);
    // Warmup.
    net4.analyze().expect("acyclic");
    net5.analyze().expect("acyclic");

    let t4 = best_secs(TRIES, || net4.analyze().expect("acyclic"));
    let t5 = best_secs(TRIES, || net5.analyze().expect("acyclic"));
    let growth = t5 / t4;
    eprintln!(
        "cpm_scale: full CPM 10k {:.3} ms, 100k {:.3} ms, growth {growth:.1}x for 10x elements",
        t4 * 1e3,
        t5 * 1e3
    );
    assert!(
        growth <= 30.0,
        "full CPM grew {growth:.1}x for a 10x element increase \
         ({:.3} ms -> {:.3} ms); the flat pass has regressed toward \
         superlinear behavior",
        t4 * 1e3,
        t5 * 1e3
    );

    // Slack-absorbed leaf slip at 100k.
    for &id in &last {
        net5.set_duration(id, WorkDays::new(5.0)).expect("known id");
    }
    let leaf = last[last.len() / 2];
    net5.set_duration(leaf, WorkDays::new(1.0))
        .expect("known id");
    let mut inc = net5.analyze_incremental().expect("acyclic");
    let mut flip = false;
    let t_inc = best_secs(64, || {
        flip = !flip;
        let d = if flip { 2.5 } else { 1.0 };
        net5.set_duration(leaf, WorkDays::new(d)).expect("known id");
        inc.update(&net5, &[leaf]).expect("known dirty set")
    });
    let speedup = t5 / t_inc;
    eprintln!(
        "cpm_scale: incremental leaf slip {:.2} us, {speedup:.0}x faster than full",
        t_inc * 1e6
    );
    assert!(
        speedup >= 100.0,
        "incremental leaf slip ({:.2} us) is only {speedup:.0}x faster \
         than a full recompute ({:.3} ms) at 100k activities; the \
         dirty-region engine has regressed",
        t_inc * 1e6,
        t5 * 1e3
    );
}
