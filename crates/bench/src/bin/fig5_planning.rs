//! Regenerates **Fig. 5**: the Hercules database during the planning
//! phase. Two planning passes yield two versions of each schedule
//! instance (the paper's SC1/SC2 and CC1/CC2), linked by provenance.

use bench::{circuit_manager, render_db_state};

fn main() {
    let mut h = circuit_manager(2, 42);
    h.plan("performance").expect("plannable");
    println!("After first planning pass:\n");
    print!("{}", render_db_state(h.db()));

    // The schedule plan can be updated at any time: replan.
    h.plan("performance").expect("plannable");
    println!("\nAfter second planning pass (new versions, provenance kept):\n");
    print!("{}", render_db_state(h.db()));

    println!("\nPlan evolution (newest first):");
    for activity in ["Create", "Simulate"] {
        let current = h.db().current_plan(activity).expect("planned").id();
        let chain: Vec<String> = h
            .db()
            .plan_evolution(current)
            .iter()
            .map(|s| s.to_string())
            .collect();
        println!("  {activity}: {}", chain.join(" <- "));
    }
}
