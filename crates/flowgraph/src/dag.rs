use std::fmt;

use crate::error::GraphError;

/// Stable identifier of a node within a [`Dag`].
///
/// Ids are dense indices assigned in insertion order and remain valid
/// for the lifetime of the graph (nodes are never removed; flow models
/// grow monotonically, and retirement is expressed at the metadata
/// layer, not by graph surgery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// Mostly useful in tests; ids obtained from
    /// [`Dag::add_node`] are always valid for their graph.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Stable identifier of an edge within a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a raw index.
    pub fn from_index(index: usize) -> Self {
        EdgeId(index as u32)
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct NodeSlot<N> {
    weight: N,
    outgoing: Vec<EdgeId>,
    incoming: Vec<EdgeId>,
}

#[derive(Debug, Clone)]
struct EdgeSlot<E> {
    weight: E,
    from: NodeId,
    to: NodeId,
}

/// A borrowed view of a node: its id and weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef<'a, N> {
    /// Id of the node.
    pub id: NodeId,
    /// Weight stored on the node.
    pub weight: &'a N,
}

/// A borrowed view of an edge: its id, endpoints, and weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef<'a, E> {
    /// Id of the edge.
    pub id: EdgeId,
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Weight stored on the edge.
    pub weight: &'a E,
}

/// A directed graph that is acyclic by construction.
///
/// `Dag<N, E>` stores a weight of type `N` on every node and `E` on
/// every edge. [`add_edge`](Dag::add_edge) performs an incremental cycle
/// check and rejects any edge that would make the target reach the
/// source, so every value of this type is guaranteed to be a DAG.
///
/// This is the Level-2 backbone of a flow management system: nodes model
/// activities and data slots, edges model the dependencies between them.
///
/// # Example
///
/// ```
/// use flowgraph::Dag;
///
/// # fn main() -> Result<(), flowgraph::GraphError> {
/// let mut g: Dag<&str, ()> = Dag::new();
/// let a = g.add_node("edit");
/// let b = g.add_node("simulate");
/// g.add_edge(a, b, ())?;
/// assert!(g.add_edge(b, a, ()).is_err()); // would cycle
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dag<N, E> {
    nodes: Vec<NodeSlot<N>>,
    edges: Vec<EdgeSlot<E>>,
    /// Generation-stamped "visited" marks for the cycle check in
    /// [`add_edge`](Dag::add_edge), reused across calls so bulk graph
    /// construction does not pay an O(nodes) allocation per edge
    /// (million-node schedule networks are built edge by edge).
    visit_stamp: Vec<u32>,
    visit_gen: u32,
    visit_stack: Vec<NodeId>,
}

// Manual impl so `Dag<N, E>: Default` holds without requiring
// `N: Default` / `E: Default` (the derive would add those bounds).
impl<N, E> Default for Dag<N, E> {
    fn default() -> Self {
        Dag::new()
    }
}

impl<N, E> Dag<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Dag {
            nodes: Vec::new(),
            edges: Vec::new(),
            visit_stamp: Vec::new(),
            visit_gen: 0,
            visit_stack: Vec::new(),
        }
    }

    /// Creates an empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Dag {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            visit_stamp: Vec::with_capacity(nodes),
            visit_gen: 0,
            visit_stack: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node carrying `weight` and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot {
            weight,
            outgoing: Vec::new(),
            incoming: Vec::new(),
        });
        self.visit_stamp.push(0);
        id
    }

    /// Adds the directed edge `from -> to` carrying `weight`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownNode`] if either endpoint is not a node of
    ///   this graph.
    /// * [`GraphError::SelfLoop`] if `from == to`.
    /// * [`GraphError::WouldCycle`] if `to` can already reach `from`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: E) -> Result<EdgeId, GraphError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if self.reaches_scratch(to, from) {
            return Err(GraphError::WouldCycle { from, to });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeSlot { weight, from, to });
        self.nodes[from.index()].outgoing.push(id);
        self.nodes[to.index()].incoming.push(id);
        Ok(id)
    }

    /// Returns `true` if an edge `from -> to` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.nodes
            .get(from.index())
            .map(|slot| {
                slot.outgoing
                    .iter()
                    .any(|&e| self.edges[e.index()].to == to)
            })
            .unwrap_or(false)
    }

    /// Returns a reference to the weight of `node`, if it exists.
    pub fn node_weight(&self, node: NodeId) -> Option<&N> {
        self.nodes.get(node.index()).map(|slot| &slot.weight)
    }

    /// Returns a mutable reference to the weight of `node`, if it exists.
    pub fn node_weight_mut(&mut self, node: NodeId) -> Option<&mut N> {
        self.nodes
            .get_mut(node.index())
            .map(|slot| &mut slot.weight)
    }

    /// Returns a reference to the weight of `edge`, if it exists.
    pub fn edge_weight(&self, edge: EdgeId) -> Option<&E> {
        self.edges.get(edge.index()).map(|slot| &slot.weight)
    }

    /// Returns the `(from, to)` endpoints of `edge`, if it exists.
    pub fn edge_endpoints(&self, edge: EdgeId) -> Option<(NodeId, NodeId)> {
        self.edges
            .get(edge.index())
            .map(|slot| (slot.from, slot.to))
    }

    /// Returns `true` if `node` belongs to this graph.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.nodes.len()
    }

    /// Iterates over all nodes in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeRef<'_, N>> + '_ {
        self.nodes.iter().enumerate().map(|(i, slot)| NodeRef {
            id: NodeId(i as u32),
            weight: &slot.weight,
        })
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.edges.iter().enumerate().map(|(i, slot)| EdgeRef {
            id: EdgeId(i as u32),
            from: slot.from,
            to: slot.to,
            weight: &slot.weight,
        })
    }

    /// Iterates over the direct successors of `node` (edge targets).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this graph.
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[node.index()]
            .outgoing
            .iter()
            .map(move |&e| self.edges[e.index()].to)
    }

    /// Iterates over the direct predecessors of `node` (edge sources).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this graph.
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[node.index()]
            .incoming
            .iter()
            .map(move |&e| self.edges[e.index()].from)
    }

    /// Iterates over outgoing edges of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this graph.
    pub fn outgoing_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.nodes[node.index()].outgoing.iter().map(move |&e| {
            let slot = &self.edges[e.index()];
            EdgeRef {
                id: e,
                from: slot.from,
                to: slot.to,
                weight: &slot.weight,
            }
        })
    }

    /// Iterates over incoming edges of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this graph.
    pub fn incoming_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.nodes[node.index()].incoming.iter().map(move |&e| {
            let slot = &self.edges[e.index()];
            EdgeRef {
                id: e,
                from: slot.from,
                to: slot.to,
                weight: &slot.weight,
            }
        })
    }

    /// Out-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this graph.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.nodes[node.index()].outgoing.len()
    }

    /// In-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this graph.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.nodes[node.index()].incoming.len()
    }

    /// Nodes with no incoming edges — the flow's primary inputs.
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.in_degree(n) == 0)
            .collect()
    }

    /// Nodes with no outgoing edges — the flow's final outputs.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.out_degree(n) == 0)
            .collect()
    }

    /// Returns `true` if `to` is reachable from `from` (including
    /// `from == to`).
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        if !self.contains_node(from) || !self.contains_node(to) {
            return false;
        }
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(v) = stack.pop() {
            for succ in self.successors(v) {
                if succ == to {
                    return true;
                }
                if !seen[succ.index()] {
                    seen[succ.index()] = true;
                    stack.push(succ);
                }
            }
        }
        false
    }

    /// Allocation-free [`reaches`](Dag::reaches) for the hot
    /// [`add_edge`](Dag::add_edge) cycle check: marks visited nodes
    /// with a bumped generation stamp instead of a fresh `Vec<bool>`,
    /// so building an E-edge graph costs O(V + E) scratch total
    /// instead of O(V) fresh allocation per edge.
    fn reaches_scratch(&mut self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        self.visit_gen = self.visit_gen.wrapping_add(1);
        if self.visit_gen == 0 {
            // Generation counter wrapped: stale stamps could alias.
            self.visit_stamp.fill(0);
            self.visit_gen = 1;
        }
        let gen = self.visit_gen;
        let mut stack = std::mem::take(&mut self.visit_stack);
        stack.clear();
        stack.push(from);
        self.visit_stamp[from.index()] = gen;
        let mut found = false;
        'dfs: while let Some(v) = stack.pop() {
            for &e in &self.nodes[v.index()].outgoing {
                let succ = self.edges[e.index()].to;
                if succ == to {
                    found = true;
                    break 'dfs;
                }
                if self.visit_stamp[succ.index()] != gen {
                    self.visit_stamp[succ.index()] = gen;
                    stack.push(succ);
                }
            }
        }
        stack.clear();
        self.visit_stack = stack;
        found
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if self.contains_node(node) {
            Ok(())
        } else {
            Err(GraphError::UnknownNode(node))
        }
    }
}

impl<N: fmt::Display, E> fmt::Display for Dag<N, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dag {{ {} nodes, {} edges }}",
            self.node_count(),
            self.edge_count()
        )?;
        for edge in self.edges() {
            writeln!(
                f,
                "  {} -> {}",
                self.nodes[edge.from.index()].weight,
                self.nodes[edge.to.index()].weight
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dag<&'static str, u32>, [NodeId; 4]) {
        let mut g = Dag::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(a, c, 2).unwrap();
        g.add_edge(b, d, 3).unwrap();
        g.add_edge(c, d, 4).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn empty_graph() {
        let g: Dag<(), ()> = Dag::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.sources().is_empty());
        assert!(g.sinks().is_empty());
    }

    #[test]
    fn add_nodes_and_edges() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.node_weight(a), Some(&"a"));
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        let _ = c;
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Dag::new();
        let a = g.add_node(());
        assert_eq!(g.add_edge(a, a, ()), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let ghost = NodeId::from_index(7);
        assert_eq!(
            g.add_edge(a, ghost, ()),
            Err(GraphError::UnknownNode(ghost))
        );
    }

    #[test]
    fn rejects_cycle_two_nodes() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        assert_eq!(
            g.add_edge(b, a, ()),
            Err(GraphError::WouldCycle { from: b, to: a })
        );
    }

    #[test]
    fn rejects_cycle_long_path() {
        let mut g = Dag::new();
        let ids: Vec<_> = (0..10).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        assert!(g.add_edge(ids[9], ids[0], ()).is_err());
        // Forward shortcuts remain fine.
        assert!(g.add_edge(ids[0], ids[9], ()).is_ok());
    }

    #[test]
    fn parallel_edges_are_allowed() {
        // Two construction rules may connect the same pair (e.g. a tool
        // consuming the same datum through two ports).
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, "port1").unwrap();
        g.add_edge(a, b, "port2").unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(a).count(), 2);
    }

    #[test]
    fn reaches_is_reflexive_and_transitive() {
        let (g, [a, b, _c, d]) = diamond();
        assert!(g.reaches(a, a));
        assert!(g.reaches(a, d));
        assert!(g.reaches(b, d));
        assert!(!g.reaches(d, a));
        assert!(!g.reaches(b, _c));
    }

    #[test]
    fn neighbors_and_edge_views() {
        let (g, [a, b, c, d]) = diamond();
        let succ: Vec<_> = g.successors(a).collect();
        assert_eq!(succ, vec![b, c]);
        let pred: Vec<_> = g.predecessors(d).collect();
        assert_eq!(pred, vec![b, c]);
        let out: Vec<_> = g.outgoing_edges(a).map(|e| *e.weight).collect();
        assert_eq!(out, vec![1, 2]);
        let inc: Vec<_> = g.incoming_edges(d).map(|e| *e.weight).collect();
        assert_eq!(inc, vec![3, 4]);
    }

    #[test]
    fn edge_endpoints_roundtrip() {
        let (g, [a, b, ..]) = diamond();
        let e = g.edges().next().unwrap();
        assert_eq!(g.edge_endpoints(e.id), Some((a, b)));
        assert_eq!(g.edge_weight(e.id), Some(&1));
        assert_eq!(g.edge_endpoints(EdgeId::from_index(99)), None);
    }

    #[test]
    fn node_weight_mut_updates() {
        let mut g = Dag::<u32, ()>::new();
        let a = g.add_node(1);
        *g.node_weight_mut(a).unwrap() = 5;
        assert_eq!(g.node_weight(a), Some(&5));
        assert!(g.node_weight(NodeId::from_index(3)).is_none());
    }

    #[test]
    fn display_lists_edges() {
        let (g, _) = diamond();
        let s = g.to_string();
        assert!(s.contains("4 nodes"));
        assert!(s.contains("a -> b"));
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId::from_index(3).to_string(), "n3");
        assert_eq!(EdgeId::from_index(4).to_string(), "e4");
    }
}
