//! Tenant authentication and admission control.
//!
//! Tokens are configured as `tenant:token` lines (comments with `#`,
//! blank lines ignored). A request authenticates with
//! `Authorization: Bearer <token>`; the matching tenant name becomes
//! the admission-control identity. With no tokens configured the
//! server runs *open*: every request is admitted as the shared
//! `"anonymous"` tenant (useful for local benches and tests).
//!
//! Admission control is a per-tenant in-flight cap: each request holds
//! an [`AdmissionGuard`] for its lifetime, and when a tenant already
//! has `cap` requests in flight the next one is rejected with 429
//! before any kernel work happens.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Parsed token registry. Empty ⇒ open mode.
#[derive(Debug, Default)]
pub struct TokenRegistry {
    /// token → tenant
    by_token: HashMap<String, String>,
}

/// Why a request was not authenticated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// No `Authorization` header (and the server requires one).
    Missing,
    /// Header present but not `Bearer <known-token>`.
    Invalid,
}

impl TokenRegistry {
    /// Parses `tenant:token` lines. Returns `Err` with a line-numbered
    /// message on malformed input (missing `:`, empty tenant/token,
    /// duplicate token).
    pub fn parse(text: &str) -> Result<TokenRegistry, String> {
        let mut by_token = HashMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((tenant, token)) = line.split_once(':') else {
                return Err(format!(
                    "tokens line {}: expected tenant:token, got {line:?}",
                    idx + 1
                ));
            };
            let (tenant, token) = (tenant.trim(), token.trim());
            if tenant.is_empty() || token.is_empty() {
                return Err(format!("tokens line {}: empty tenant or token", idx + 1));
            }
            if by_token
                .insert(token.to_owned(), tenant.to_owned())
                .is_some()
            {
                return Err(format!("tokens line {}: duplicate token", idx + 1));
            }
        }
        Ok(TokenRegistry { by_token })
    }

    /// True when no tokens are configured (open mode).
    pub fn is_open(&self) -> bool {
        self.by_token.is_empty()
    }

    /// Resolves the `Authorization` header value to a tenant name.
    pub fn authenticate(&self, header: Option<&str>) -> Result<String, AuthError> {
        if self.is_open() {
            return Ok("anonymous".to_owned());
        }
        let Some(value) = header else {
            return Err(AuthError::Missing);
        };
        let token = value
            .strip_prefix("Bearer ")
            .or_else(|| value.strip_prefix("bearer "))
            .map(str::trim)
            .ok_or(AuthError::Invalid)?;
        self.by_token.get(token).cloned().ok_or(AuthError::Invalid)
    }
}

/// Per-tenant in-flight request caps.
#[derive(Debug)]
pub struct Admission {
    cap: usize,
    in_flight: Mutex<HashMap<String, Arc<AtomicUsize>>>,
}

/// RAII token for one admitted request; releases the tenant's slot on
/// drop.
#[derive(Debug)]
pub struct AdmissionGuard {
    count: Arc<AtomicUsize>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.count.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Admission {
    /// `cap` = max concurrent in-flight requests per tenant (0 is
    /// clamped to 1 — a cap of zero would reject everything).
    pub fn new(cap: usize) -> Admission {
        Admission {
            cap: cap.max(1),
            in_flight: Mutex::new(HashMap::new()),
        }
    }

    /// Tries to admit one request for `tenant`. `None` ⇒ the tenant is
    /// at its cap (caller answers 429).
    pub fn try_enter(&self, tenant: &str) -> Option<AdmissionGuard> {
        let count = {
            let mut map = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(
                map.entry(tenant.to_owned())
                    .or_insert_with(|| Arc::new(AtomicUsize::new(0))),
            )
        };
        // Optimistic increment; back out if we raced past the cap.
        let prev = count.fetch_add(1, Ordering::AcqRel);
        if prev >= self.cap {
            count.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(AdmissionGuard { count })
    }

    /// Current in-flight count for a tenant (for tests/metrics).
    pub fn in_flight(&self, tenant: &str) -> usize {
        let map = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        map.get(tenant).map_or(0, |c| c.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_lines_parse_with_comments() {
        let reg = TokenRegistry::parse("# staff\nalice:s3cret\n\n  bob : hunter2  \n").unwrap();
        assert!(!reg.is_open());
        assert_eq!(reg.authenticate(Some("Bearer s3cret")).unwrap(), "alice");
        assert_eq!(reg.authenticate(Some("Bearer hunter2")).unwrap(), "bob");
        assert_eq!(
            reg.authenticate(Some("Bearer nope")),
            Err(AuthError::Invalid)
        );
        assert_eq!(reg.authenticate(None), Err(AuthError::Missing));
        assert_eq!(
            reg.authenticate(Some("Basic s3cret")),
            Err(AuthError::Invalid)
        );
    }

    #[test]
    fn malformed_token_lines_are_rejected() {
        assert!(TokenRegistry::parse("no-colon-here").is_err());
        assert!(TokenRegistry::parse(":token").is_err());
        assert!(TokenRegistry::parse("tenant:").is_err());
        assert!(TokenRegistry::parse("a:t\nb:t").is_err());
    }

    #[test]
    fn open_mode_admits_everyone_as_anonymous() {
        let reg = TokenRegistry::parse("# only comments\n").unwrap();
        assert!(reg.is_open());
        assert_eq!(reg.authenticate(None).unwrap(), "anonymous");
        assert_eq!(reg.authenticate(Some("Bearer x")).unwrap(), "anonymous");
    }

    #[test]
    fn admission_caps_per_tenant_and_releases_on_drop() {
        let adm = Admission::new(2);
        let a1 = adm.try_enter("alice").unwrap();
        let _a2 = adm.try_enter("alice").unwrap();
        assert!(adm.try_enter("alice").is_none(), "cap of 2 reached");
        // Other tenants are unaffected.
        let _b1 = adm.try_enter("bob").unwrap();
        assert_eq!(adm.in_flight("alice"), 2);
        drop(a1);
        assert_eq!(adm.in_flight("alice"), 1);
        assert!(adm.try_enter("alice").is_some());
    }
}
