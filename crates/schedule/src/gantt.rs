//! ASCII Gantt charts — the textual equivalent of the Hercules user
//! interface in the paper's Fig. 8.
//!
//! "A Gantt Chart displays the schedule information as a series of tasks
//! and displays graphically both the planned schedule and the
//! accomplished schedule" (§IV-B). Each row shows the *planned* bar
//! (`░`, or `=` in ASCII mode) with the *accomplished* bar (`█`/`#`)
//! overlaid; `!` flags work past the planned finish, `*` marks critical
//! activities.

use std::fmt::Write as _;

use crate::calendar::Calendar;
use crate::network::WorkDays;

/// One row of a Gantt chart.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttRow {
    /// Activity label.
    pub name: String,
    /// Planned (proposed) start offset.
    pub planned_start: WorkDays,
    /// Planned (proposed) finish offset.
    pub planned_finish: WorkDays,
    /// Accomplished span: `Some((start, end))` once work has begun. For
    /// in-progress work, `end` is the status date.
    pub actual: Option<(WorkDays, WorkDays)>,
    /// Whether the activity is complete (links to final design data).
    pub complete: bool,
    /// Whether the activity is on the critical path.
    pub critical: bool,
}

impl GanttRow {
    /// Creates a planned-only row (no work accomplished yet).
    pub fn planned(name: impl Into<String>, start: WorkDays, finish: WorkDays) -> Self {
        GanttRow {
            name: name.into(),
            planned_start: start,
            planned_finish: finish,
            actual: None,
            complete: false,
            critical: false,
        }
    }

    /// Marks the row critical.
    #[must_use]
    pub fn critical(mut self) -> Self {
        self.critical = true;
        self
    }

    /// Records accomplished work.
    #[must_use]
    pub fn with_actual(mut self, start: WorkDays, end: WorkDays, complete: bool) -> Self {
        self.actual = Some((start, end));
        self.complete = complete;
        self
    }
}

/// Rendering options.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttOptions {
    /// Total character columns for the time axis.
    pub width: usize,
    /// Use pure-ASCII glyphs (`=`/`#`) instead of block glyphs.
    pub ascii: bool,
    /// Label column width; long names are truncated.
    pub label_width: usize,
    /// When set, axis ticks show civil dates from this work calendar
    /// (`06-12`, `06-19`, ...) instead of working-day numbers.
    pub calendar: Option<Calendar>,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 60,
            ascii: false,
            label_width: 16,
            calendar: None,
        }
    }
}

/// Renders rows into a Gantt chart string.
///
/// The time axis spans from zero to the latest planned or actual
/// finish. Returns an empty string for no rows.
///
/// # Example
///
/// ```
/// use schedule::gantt::{render, GanttOptions, GanttRow};
/// use schedule::WorkDays;
///
/// let rows = vec![
///     GanttRow::planned("Create", WorkDays::ZERO, WorkDays::new(2.0))
///         .with_actual(WorkDays::ZERO, WorkDays::new(2.0), true),
///     GanttRow::planned("Simulate", WorkDays::new(2.0), WorkDays::new(5.0)),
/// ];
/// let chart = render(&rows, &GanttOptions { ascii: true, ..Default::default() });
/// assert!(chart.contains("Create"));
/// assert!(chart.contains('#')); // accomplished work
/// ```
pub fn render(rows: &[GanttRow], options: &GanttOptions) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let horizon = rows
        .iter()
        .flat_map(|r| {
            [
                r.planned_finish.days(),
                r.actual.map(|(_, e)| e.days()).unwrap_or(0.0),
            ]
        })
        .fold(0.0f64, f64::max)
        .max(1.0);
    let width = options.width.max(10);
    let scale = width as f64 / horizon;
    let col = |t: f64| ((t * scale).round() as usize).min(width);

    let (planned_glyph, actual_glyph) = if options.ascii {
        ('=', '#')
    } else {
        ('░', '█')
    };
    let mut out = String::new();
    // Axis header with ticks every ~10 columns: working-day numbers,
    // or `MM-DD` dates when a calendar is supplied.
    let mut header = vec![b' '; width + 1];
    let tick_spacing = if options.calendar.is_some() {
        12.0
    } else {
        10.0
    };
    let tick_every = (horizon / (width as f64 / tick_spacing)).max(1.0).ceil();
    let mut t = 0.0;
    while t <= horizon {
        let c = col(t);
        let label = match &options.calendar {
            Some(cal) => {
                let date = cal.date_of(t);
                format!("{:02}-{:02}", date.month(), date.day())
            }
            None => format!("{}", t as i64),
        };
        for (i, ch) in label.bytes().enumerate() {
            if c + i < header.len() {
                header[c + i] = ch;
            }
        }
        t += tick_every;
    }
    let axis_title = if options.calendar.is_some() {
        "date"
    } else {
        "day"
    };
    let _ = writeln!(
        out,
        "{:label$} {}",
        axis_title,
        String::from_utf8_lossy(&header),
        label = options.label_width
    );

    for row in rows {
        let mut lane = vec![' '; width + 1];
        let (ps, pf) = (
            col(row.planned_start.days()),
            col(row.planned_finish.days()),
        );
        for cell in lane.iter_mut().take(pf.max(ps + 1)).skip(ps) {
            *cell = planned_glyph;
        }
        if let Some((a_start, a_end)) = row.actual {
            let (s, e) = (col(a_start.days()), col(a_end.days()));
            for (i, cell) in lane.iter_mut().enumerate().take(e.max(s + 1)).skip(s) {
                // Work beyond the planned finish is a slip: flag it.
                *cell = if i >= pf && pf > ps {
                    '!'
                } else {
                    actual_glyph
                };
            }
        }
        let mut name: String = row.name.chars().take(options.label_width).collect();
        if row.critical {
            name = format!("*{name}");
            name.truncate(options.label_width);
        }
        let status = if row.complete {
            "done"
        } else if row.actual.is_some() {
            "wip"
        } else {
            "plan"
        };
        let _ = writeln!(
            out,
            "{:label$} {} [{status}]",
            name,
            lane.iter().collect::<String>(),
            label = options.label_width
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> GanttOptions {
        GanttOptions {
            ascii: true,
            width: 40,
            label_width: 12,
            calendar: None,
        }
    }

    #[test]
    fn empty_rows_empty_chart() {
        assert_eq!(render(&[], &opts()), "");
    }

    #[test]
    fn planned_bar_spans_expected_columns() {
        let rows = vec![GanttRow::planned(
            "half",
            WorkDays::ZERO,
            WorkDays::new(5.0),
        )];
        // Horizon 5 over 40 cols; planned bar covers ~the whole lane.
        let chart = render(&rows, &opts());
        let lane = chart.lines().nth(1).unwrap();
        assert!(lane.matches('=').count() >= 38);
        assert!(lane.contains("[plan]"));
    }

    #[test]
    fn actual_overlays_planned() {
        let rows = vec![
            GanttRow::planned("t", WorkDays::ZERO, WorkDays::new(4.0)).with_actual(
                WorkDays::ZERO,
                WorkDays::new(2.0),
                false,
            ),
        ];
        let chart = render(&rows, &opts());
        let lane = chart.lines().nth(1).unwrap();
        assert!(lane.contains('#'));
        assert!(lane.contains('='));
        assert!(lane.contains("[wip]"));
    }

    #[test]
    fn slip_marked_with_bang() {
        let rows = vec![
            GanttRow::planned("t", WorkDays::ZERO, WorkDays::new(2.0)).with_actual(
                WorkDays::ZERO,
                WorkDays::new(4.0),
                true,
            ),
        ];
        let chart = render(&rows, &opts());
        let lane = chart.lines().nth(1).unwrap();
        assert!(lane.contains('!'));
        assert!(lane.contains("[done]"));
    }

    #[test]
    fn critical_rows_starred() {
        let rows = vec![GanttRow::planned("route", WorkDays::ZERO, WorkDays::new(1.0)).critical()];
        let chart = render(&rows, &opts());
        assert!(chart.contains("*route"));
    }

    #[test]
    fn unicode_mode_uses_blocks() {
        let rows = vec![
            GanttRow::planned("t", WorkDays::ZERO, WorkDays::new(2.0)).with_actual(
                WorkDays::ZERO,
                WorkDays::new(1.0),
                false,
            ),
        ];
        let chart = render(
            &rows,
            &GanttOptions {
                ascii: false,
                ..opts()
            },
        );
        assert!(chart.contains('░'));
        assert!(chart.contains('█'));
    }

    #[test]
    fn long_names_truncated() {
        let rows = vec![GanttRow::planned(
            "an-extremely-long-activity-name",
            WorkDays::ZERO,
            WorkDays::new(1.0),
        )];
        let chart = render(&rows, &opts());
        let first_line = chart.lines().nth(1).unwrap();
        assert!(first_line.starts_with("an-extremely"));
    }

    #[test]
    fn header_has_day_zero() {
        let rows = vec![GanttRow::planned("t", WorkDays::ZERO, WorkDays::new(3.0))];
        let chart = render(&rows, &opts());
        let header = chart.lines().next().unwrap();
        assert!(header.starts_with("day"));
        assert!(header.contains('0'));
    }

    #[test]
    fn calendar_axis_shows_dates() {
        use crate::calendar::{CalDate, Calendar};
        let rows = vec![GanttRow::planned("t", WorkDays::ZERO, WorkDays::new(10.0))];
        let chart = render(
            &rows,
            &GanttOptions {
                calendar: Some(Calendar::five_day(CalDate::new(1995, 6, 12))),
                ..opts()
            },
        );
        let header = chart.lines().next().unwrap();
        assert!(header.starts_with("date"));
        assert!(header.contains("06-12"), "start date missing: {header}");
        // A later tick lands after the weekend skip.
        assert!(header.matches('-').count() >= 2);
    }
}
