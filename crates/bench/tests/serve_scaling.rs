//! The B13 acceptance gate, in two halves (one test fn, because the
//! coalescing half reads process-global metric counters that a
//! parallel sibling test would pollute):
//!
//! 1. **Worker scaling** — request throughput through the server must
//!    rise ≥2× from 1 to 4 pool workers. Every request burns the same
//!    simulated session latency under its project's lock, so a flat
//!    curve means the worker pool (or the admission path in front of
//!    it) serializes independent projects' sessions.
//! 2. **Replan coalescing** — a burst of concurrent replans against
//!    one project must complete with *fewer kernel passes than
//!    requests*: `serve::Coalescer` folds waiters arriving during a
//!    pass into the next one, and every follower still gets a result
//!    from a pass that started at-or-after its arrival.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::kernels::serve_load::{
    run_batch, seeded_workspace, start_server, CLIENTS, REQUESTS_PER_CLIENT,
};
use serve::{Client, Server, ServerConfig};

/// Wall time of the best of `tries` batches against `addr` — min, not
/// mean, to shrug off scheduler noise on loaded CI hosts.
fn best_batch_secs(addr: std::net::SocketAddr, tries: usize) -> f64 {
    (0..tries)
        .map(|_| {
            let t0 = Instant::now();
            run_batch(addr);
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn assert_worker_scaling() {
    const TRIES: usize = 4;
    let ws = seeded_workspace();
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as f64;

    let server = start_server(&ws, 1);
    // Warmup: fault in every code path before timing anything.
    run_batch(server.addr());
    let t1 = best_batch_secs(server.addr(), TRIES);
    server.shutdown();

    let server = start_server(&ws, 4);
    let t4 = best_batch_secs(server.addr(), TRIES);
    server.shutdown();

    let rps_1 = total / t1;
    let rps_4 = total / t4;
    let scaling = rps_4 / rps_1;
    eprintln!(
        "serve_load: 1 worker {rps_1:.0} req/s, 4 workers {rps_4:.0} req/s, \
         scaling {scaling:.2}x"
    );
    assert!(
        scaling >= 2.0,
        "server throughput scaled only {scaling:.2}x from 1 to 4 workers \
         ({rps_1:.0} -> {rps_4:.0} req/s); the worker pool no longer \
         overlaps independent projects' sessions"
    );
}

fn assert_replan_coalescing() {
    const BURST: usize = 16;
    let ws = seeded_workspace();
    let server = Server::start(
        Arc::clone(&ws),
        ServerConfig {
            workers: BURST,
            // Long enough that the whole burst is in flight while the
            // first pass still holds the project lock.
            session_latency: Duration::from_millis(20),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    let requests_before = obs::Metrics::counter("serve.replan.requests").get();
    let passes_before = obs::Metrics::counter("serve.replan.kernel_passes").get();
    std::thread::scope(|scope| {
        for _ in 0..BURST {
            scope.spawn(move || {
                let resp = Client::new(addr)
                    .post("/projects/p0/replan?target=signoff_report", b"")
                    .expect("burst replan");
                assert_eq!(resp.status, 200, "{}", resp.body);
            });
        }
    });
    server.shutdown();
    let requests = obs::Metrics::counter("serve.replan.requests").get() - requests_before;
    let passes = obs::Metrics::counter("serve.replan.kernel_passes").get() - passes_before;
    eprintln!("serve_load: {requests} concurrent replans -> {passes} kernel passes");
    assert_eq!(
        requests, BURST as u64,
        "every burst request must be counted"
    );
    assert!(
        passes < requests,
        "{requests} concurrent replans ran {passes} kernel passes — \
         the coalescer no longer folds concurrent waiters into shared passes"
    );
}

#[test]
fn server_scales_with_workers_and_coalesces_replans() {
    assert_worker_scaling();
    assert_replan_coalescing();
}
