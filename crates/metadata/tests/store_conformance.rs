//! The shared `Store` conformance suite: every behavioural check runs
//! identically against both backends ([`ArenaStore`] and
//! [`PersistentStore`]), so the persistent engine cannot drift from the
//! in-memory semantics the rest of the workspace is tested against.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use metadata::{ArenaStore, MetadataDb, MetadataError, PersistentStore, Store};
use schedule::WorkDays;
use schema::examples;

static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

/// A scratch directory unique per process + call, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "schedflow-conformance-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn seed_db() -> MetadataDb {
    MetadataDb::for_schema(&examples::circuit_design())
}

/// Runs `check` once per backend. The persistent backend gets its own
/// scratch directory; both start from the same schema-initialised
/// database with journaling on.
fn for_each_backend(tag: &str, check: impl Fn(&mut dyn Store)) {
    let mut arena = ArenaStore::new(seed_db());
    arena.enable_journal();
    check(&mut arena);

    let scratch = ScratchDir::new(tag);
    let mut persistent = PersistentStore::create(&scratch.0, seed_db()).unwrap();
    check(&mut persistent);
}

/// One planned + executed + completed activity; returns nothing so the
/// same closure body type-checks for both backends.
fn lifecycle(store: &mut dyn Store) {
    let s = store.begin_planning(WorkDays::ZERO);
    let sc = store
        .plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(2.0))
        .unwrap();
    store.assign(sc, "alice").unwrap();
    let stim = store.store_data("vec.stim", b"0101".to_vec());
    store
        .supply_input("stimuli", "bob", WorkDays::ZERO, stim)
        .unwrap();
    let run = store
        .begin_run("Create", "alice", WorkDays::new(0.5))
        .unwrap();
    let data = store.store_data("v1.net", b"module".to_vec());
    let e = store
        .finish_run(run, "netlist", data, WorkDays::new(1.5), &[])
        .unwrap();
    store.link_completion(sc, e).unwrap();
}

#[test]
fn conformance_lifecycle_state() {
    for_each_backend("lifecycle", |store| {
        lifecycle(store);
        let db = store.db();
        assert_eq!(db.entity_count(), 2);
        assert_eq!(db.schedule_count(), 1);
        assert_eq!(db.runs().len(), 1);
        assert_eq!(db.data_count(), 2);
        assert!(db.current_plan("Create").unwrap().is_complete());
        assert_eq!(db.actual_start("Create"), Some(WorkDays::new(0.5)));
        assert_eq!(db.actual_finish("Create"), Some(WorkDays::new(1.5)));
        db.check_invariants().unwrap();
    });
}

#[test]
fn conformance_validation_errors() {
    for_each_backend("validation", |store| {
        assert!(matches!(
            store.begin_run("Fabricate", "alice", WorkDays::ZERO),
            Err(MetadataError::UnknownActivity(_))
        ));
        let s = store.begin_planning(WorkDays::ZERO);
        assert!(store
            .plan_activity(s, "ghost", WorkDays::ZERO, WorkDays::ZERO)
            .is_err());
        let data = store.store_data("x", vec![]);
        let run = store
            .begin_run("Create", "alice", WorkDays::new(1.0))
            .unwrap();
        assert!(matches!(
            store.finish_run(run, "performance", data, WorkDays::new(2.0), &[]),
            Err(MetadataError::WrongOutputClass { .. })
        ));
        assert!(matches!(
            store.finish_run(run, "netlist", data, WorkDays::ZERO, &[]),
            Err(MetadataError::InvalidTimestamps { .. })
        ));
    });
}

#[test]
fn conformance_journal_replays_to_identical_state() {
    for_each_backend("journal", |store| {
        lifecycle(store);
        let journal = store.take_journal().expect("journaling is on");
        // The arena journal replays from empty; the persistent tail
        // replays onto the snapshot. Both equal the live state.
        match store.path() {
            None => {
                let recovered = MetadataDb::recover(&journal).unwrap();
                assert_eq!(recovered.dump(), store.db().dump());
            }
            Some(dir) => {
                let current: u64 = fs::read_to_string(dir.join("CURRENT"))
                    .unwrap()
                    .trim()
                    .parse()
                    .unwrap();
                let snapshot =
                    fs::read_to_string(dir.join(format!("snapshot-{current}.txt"))).unwrap();
                let mut db = MetadataDb::load_at(&snapshot, current as u32).unwrap();
                db.apply_journal(&journal).unwrap();
                assert_eq!(db.dump(), store.db().dump());
            }
        }
    });
}

#[test]
fn conformance_injected_crash_keeps_op_in_journal() {
    for_each_backend("crash", |store| {
        lifecycle(store);
        let ops_before = store.db().journal().unwrap().len();
        let runs_before = store.db().runs().len();
        store.inject_crash_after(0);
        assert!(matches!(
            store.begin_run("Simulate", "bob", WorkDays::new(2.0)),
            Err(MetadataError::InjectedCrash)
        ));
        // Append-before-apply: the journal holds the torn op, the
        // database state does not.
        assert_eq!(store.db().journal().unwrap().len(), ops_before + 1);
        assert_eq!(store.db().runs().len(), runs_before);
        assert!(store.db().has_crashed());
    });
}

#[test]
fn conformance_compaction_preserves_state_and_stales_handles() {
    for_each_backend("compact", |store| {
        let s = store.begin_planning(WorkDays::ZERO);
        let sc = store
            .plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        let dump = store.db().dump();
        let gen_before = store.db().generation();
        let stats = store.compact().unwrap();
        assert_eq!(store.db().dump(), dump, "compaction must not change state");
        assert_eq!(stats.generation, store.db().generation());
        assert!(store.db().generation() > gen_before);
        // Old handles are stale; re-queried handles are fresh.
        assert!(matches!(
            store.assign(sc, "bob"),
            Err(MetadataError::StaleHandle(_))
        ));
        let fresh = store.db().schedule_container("Create").unwrap()[0];
        store.assign(fresh, "bob").unwrap();
        store.db().check_invariants().unwrap();
    });
}

#[test]
fn conformance_clone_is_independent() {
    for_each_backend("clone", |store| {
        lifecycle(store);
        let mut fork = store.boxed_clone();
        let before = store.db().dump();
        fork.begin_planning(WorkDays::new(9.0));
        assert_eq!(store.db().dump(), before, "fork writes must not leak back");
        assert_ne!(fork.db().dump(), before);
    });
}

#[test]
fn conformance_replace_db_swaps_state() {
    for_each_backend("replace", |store| {
        lifecycle(store);
        let mut other = seed_db();
        other.begin_planning(WorkDays::new(3.0));
        let expected = other.dump();
        store.replace_db(other).unwrap();
        assert_eq!(store.db().dump(), expected);
        store.checkpoint().unwrap();
    });
}
