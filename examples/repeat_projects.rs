//! "Previous schedule data can be used to predict the duration of
//! future projects" (§I): run the same ASIC flow as eight successive
//! projects, carrying each project's measured durations into the next
//! project's estimates, and watch planning error fall.
//!
//! Run with `cargo run --example repeat_projects`.

use std::collections::HashMap;

use hercules::Hercules;
use predict::{DurationStats, MeanOfAll, Predictor};
use schedule::WorkDays;
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut histories: HashMap<String, Vec<f64>> = HashMap::new();
    println!("project | proposed finish | actual finish | planning error");
    println!("--------+-----------------+---------------+---------------");
    let mut errors = Vec::new();
    for project in 0..8u64 {
        let mut h = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            1000 + project, // each project sees different tool noise
        );
        // Feed measured history from earlier projects into estimates.
        // With no history yet (project 0) the manager relies on
        // designer intuition — optimistic by half, as designers are.
        for rule in examples::asic_flow().rules() {
            match histories
                .get(rule.activity())
                .and_then(|hist| MeanOfAll.predict(hist))
            {
                Some(prediction) => {
                    h.set_estimate(rule.activity(), WorkDays::new(prediction))?;
                }
                None => {
                    let model_guess = h.duration_estimate(rule.activity())?;
                    h.set_estimate(rule.activity(), WorkDays::new(model_guess.days() * 0.5))?;
                }
            }
        }
        let plan = h.plan("signoff_report")?;
        let report = h.execute("signoff_report")?;
        let error = (plan.project_finish().days() - report.finished_at().days()).abs();
        errors.push(error);
        println!(
            "   {project}    |   day {:>8}  |  day {:>8} |   {error:>6.2}d",
            plan.project_finish().to_string(),
            report.finished_at().to_string(),
        );
        // Harvest this project's measured activity spans.
        for exec in report.activities() {
            histories
                .entry(exec.activity.clone())
                .or_default()
                .push(exec.duration().days());
        }
    }
    let cold = errors[0];
    let warm = errors[3..].iter().sum::<f64>() / (errors.len() - 3) as f64;
    println!(
        "\ncold-start error {cold:.2}d; steady-state mean error {warm:.2}d \
         ({:.0}% reduction)",
        (1.0 - warm / cold) * 100.0
    );

    println!("\nper-activity duration statistics after 8 projects:");
    let mut names: Vec<&String> = histories.keys().collect();
    names.sort();
    for name in names {
        if let Some(stats) = DurationStats::of(&histories[name]) {
            println!("  {name:<12} {stats}");
        }
    }
    Ok(())
}
