//! Property-based pinning of the flat CSR CPM core against a
//! straightforward object-graph reference implementation — the
//! algorithm `analyze()` used before the data-oriented refactor,
//! re-expressed here over the public traversal API: `precedence_order`
//! plus per-node predecessor/successor walks, with a min-propagated
//! late schedule.
//!
//! Durations are dyadic (multiples of 0.5 working days), so both
//! formulations compute *bit-identical* floats: the reference derives
//! `late_finish = min(successor late_start)` while the flat core
//! derives `late_start = project − tail`, and with exact arithmetic
//! those are the same number, not merely close. Every comparison below
//! is `==`, no epsilon.

use harness::prelude::*;
use schedule::{ActivityId, CpmAnalysis, ScheduleNetwork, WorkDays};

/// Random acyclic network: forward edges over n activities with random
/// dyadic durations (same shape as `cpm_incremental_properties.rs`).
fn arb_network() -> impl Strategy<Value = ScheduleNetwork> {
    (
        2usize..25,
        vec((any_u16(), any_u16()), 0..60),
        vec(0u32..20, 2..25),
    )
        .prop_map(|(n, pairs, durations)| {
            let mut net = ScheduleNetwork::new();
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    let d = durations.get(i).copied().unwrap_or(1) as f64 * 0.5;
                    net.add_activity(format!("t{i}"), WorkDays::new(d))
                        .expect("unique names")
                })
                .collect();
            for (a, b) in pairs {
                let i = (a as usize) % n;
                let j = (b as usize) % n;
                if i < j {
                    net.add_precedence(ids[i], ids[j]).expect("forward edges");
                }
            }
            net
        })
}

/// A pure chain — the deepest structure, worst case for level count
/// (every level has width 1, so the parallel path degenerates).
fn arb_pipeline() -> impl Strategy<Value = ScheduleNetwork> {
    vec(1u32..16, 2..40).prop_map(|durations| {
        let mut net = ScheduleNetwork::new();
        let mut prev: Option<ActivityId> = None;
        for (i, d) in durations.iter().enumerate() {
            let id = net
                .add_activity(format!("s{i}"), WorkDays::new(f64::from(*d) * 0.5))
                .expect("unique names");
            if let Some(p) = prev {
                net.add_precedence(p, id).expect("chain edge");
            }
            prev = Some(id);
        }
        net
    })
}

/// Per-activity reference dates, indexed by `ActivityId::index`.
struct Reference {
    early_start: Vec<f64>,
    early_finish: Vec<f64>,
    late_start: Vec<f64>,
    late_finish: Vec<f64>,
    project: f64,
}

/// The pre-refactor object-graph CPM: forward max-fold over the
/// precedence order, late dates by min-propagation from the sinks.
fn reference_analyze(net: &ScheduleNetwork) -> Reference {
    let n = net.activity_count();
    let order = net.precedence_order();
    let mut early_start = vec![0.0f64; n];
    let mut early_finish = vec![0.0f64; n];
    for &id in &order {
        let es = net
            .predecessors(id)
            .map(|p| early_finish[p.index()])
            .fold(0.0f64, f64::max);
        early_start[id.index()] = es;
        early_finish[id.index()] = es + net.duration(id).days();
    }
    let project = net
        .finish_activities()
        .iter()
        .map(|id| early_finish[id.index()])
        .fold(0.0f64, f64::max);
    let mut late_start = vec![0.0f64; n];
    let mut late_finish = vec![0.0f64; n];
    for &id in order.iter().rev() {
        let lf = net
            .successors(id)
            .map(|s| late_start[s.index()])
            .fold(f64::INFINITY, f64::min);
        let lf = if lf.is_finite() { lf } else { project };
        late_finish[id.index()] = lf;
        late_start[id.index()] = lf - net.duration(id).days();
    }
    Reference {
        early_start,
        early_finish,
        late_start,
        late_finish,
        project,
    }
}

/// Asserts the flat analysis equals the reference bit for bit.
fn assert_matches_reference(net: &ScheduleNetwork, cpm: &CpmAnalysis) {
    let reference = reference_analyze(net);
    assert_eq!(cpm.project_duration().days(), reference.project);
    for id in net.activities() {
        let t = cpm.times(id);
        let i = id.index();
        assert_eq!(t.early_start.days(), reference.early_start[i], "ES of {i}");
        assert_eq!(
            t.early_finish.days(),
            reference.early_finish[i],
            "EF of {i}"
        );
        assert_eq!(t.late_start.days(), reference.late_start[i], "LS of {i}");
        assert_eq!(t.late_finish.days(), reference.late_finish[i], "LF of {i}");
        let total = (reference.late_start[i] - reference.early_start[i]).max(0.0);
        assert_eq!(t.total_slack.days(), total, "total slack of {i}");
        let downstream = net
            .successors(id)
            .map(|s| reference.early_start[s.index()])
            .fold(f64::INFINITY, f64::min);
        let free = if downstream.is_finite() {
            downstream - reference.early_finish[i]
        } else {
            reference.project - reference.early_finish[i]
        };
        assert_eq!(t.free_slack.days(), free.max(0.0), "free slack of {i}");
    }
}

harness::props! {
    fn flat_cpm_matches_object_graph_reference(net in arb_network()) {
        let cpm = net.analyze().expect("acyclic");
        assert_matches_reference(&net, &cpm);
    }

    fn flat_cpm_matches_reference_on_pipelines(net in arb_pipeline()) {
        let cpm = net.analyze().expect("acyclic");
        assert_matches_reference(&net, &cpm);
    }

    fn analysis_is_thread_count_invariant(net in arb_network()) {
        // One worker and four produce the identical analysis — dates,
        // slacks, and the chosen critical path. (Under cfg(test) the
        // schedule crate's internal parallel threshold drops to 8
        // nodes, so these small graphs do exercise the scoped-thread
        // path in the crate's unit tests; here the guarantee under
        // test is the public one: thread count is unobservable.)
        let serial = net.analyze_with_threads(1).expect("acyclic");
        let four = net.analyze_with_threads(4).expect("acyclic");
        let default = net.analyze().expect("acyclic");
        prop_assert_eq!(&serial, &four);
        prop_assert_eq!(&serial, &default);
    }

    fn critical_path_is_a_real_zero_slack_chain(net in arb_network()) {
        let cpm = net.analyze().expect("acyclic");
        let path = cpm.critical_path();
        prop_assert!(!path.is_empty(), "non-empty network has a critical path");
        let first = path[0];
        // Starts at a start activity, ends at the project finish.
        prop_assert_eq!(net.predecessors(first).count(), 0);
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            prop_assert!(net.successors(a).any(|s| s == b),
                "consecutive critical activities are linked by an edge");
            // No idle time along the critical path.
            prop_assert_eq!(cpm.times(a).early_finish, cpm.times(b).early_start);
        }
        for &id in path {
            prop_assert!(cpm.is_critical(id), "every path member has zero slack");
        }
        let last = path[path.len() - 1];
        prop_assert_eq!(
            cpm.times(last).early_finish.days(),
            cpm.project_duration().days()
        );
    }

    fn duration_edits_reuse_the_cached_topology(
        net in arb_network(),
        edits in vec((any_u16(), 0u32..20), 1..8),
    ) {
        // set_duration must not stale the cached CSR: analyses after
        // any sequence of re-estimates still match the reference run
        // on the same (edited) network.
        let mut net = net;
        let rev = net.structure_revision();
        let ids: Vec<ActivityId> = net.activities().collect();
        net.analyze().expect("acyclic"); // populate the cache
        for (who, dur) in edits {
            let id = ids[(who as usize) % ids.len()];
            net.set_duration(id, WorkDays::new(f64::from(dur) * 0.5))
                .expect("known activity");
        }
        // Duration edits are not structural.
        prop_assert_eq!(rev, net.structure_revision());
        let cpm = net.analyze().expect("acyclic");
        assert_matches_reference(&net, &cpm);
    }
}
