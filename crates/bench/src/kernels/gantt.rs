//! B8 — Gantt rendering cost vs project size.
//!
//! Expected shape: linear in rows; even hundred-activity charts render
//! in microseconds, keeping the status view interactive.

use harness::bench::Record;
use schedule::gantt::{render, GanttOptions, GanttRow};
use schedule::WorkDays;

fn rows(n: usize) -> Vec<GanttRow> {
    (0..n)
        .map(|i| {
            let start = WorkDays::new(i as f64 * 0.7);
            let finish = WorkDays::new(i as f64 * 0.7 + 2.0);
            let mut row = GanttRow::planned(format!("activity{i}"), start, finish);
            if i % 2 == 0 {
                row = row.with_actual(start, finish + WorkDays::new(0.5), true);
            }
            row
        })
        .collect()
}

/// Runs the kernel; `quick` selects the smoke-test plan and sizes.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("gantt", quick);
    let sizes: &[usize] = if quick { &[10, 100] } else { &[10, 100, 500] };
    for &n in sizes {
        let rows = rows(n);
        suite.bench(&format!("gantt_render/{n}"), Some(n as u64), || {
            render(&rows, &GanttOptions::default())
        });
    }
    suite.into_records()
}
