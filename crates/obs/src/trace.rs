//! The drained trace: per-thread item sequences, well-formedness
//! validation, and a flattened span view for tests and tooling.

use std::fmt;

/// One key/value annotation attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    /// Annotation key (a field name, from the `span!`/`event!` macro).
    pub key: &'static str,
    /// Annotation value.
    pub value: ArgValue,
}

impl Arg {
    /// Builds an annotation from anything convertible to [`ArgValue`].
    pub fn new(key: &'static str, value: impl Into<ArgValue>) -> Self {
        Arg {
            key,
            value: value.into(),
        }
    }
}

/// A span/event annotation value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::I64(v) => write!(f, "{v}"),
            ArgValue::F64(v) => write!(f, "{v}"),
            ArgValue::Bool(v) => write!(f, "{v}"),
            ArgValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<i32> for ArgValue {
    fn from(v: i32) -> Self {
        ArgValue::I64(i64::from(v))
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded item in a thread's buffer.
///
/// Every item carries both timestamp domains: `mono_ns` (nanoseconds of
/// real time since the collector epoch — profiling) and `sim_md`
/// (simulated project time in milli-days, when the instrumented layer
/// published one via [`Collector::set_sim_md`](crate::Collector::set_sim_md)
/// — deterministic, golden-pinnable).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceItem {
    /// A span opened ([`SpanGuard`](crate::SpanGuard) created).
    Enter {
        /// Span name (dot-separated taxonomy, e.g. `hercules.plan`).
        name: &'static str,
        /// Real time since the collector epoch.
        mono_ns: u64,
        /// Simulated time (milli-days), if published.
        sim_md: Option<i64>,
        /// Annotations known at entry.
        args: Vec<Arg>,
    },
    /// The innermost open span closed (guard dropped).
    Exit {
        /// Real time since the collector epoch.
        mono_ns: u64,
        /// Simulated time (milli-days), if published.
        sim_md: Option<i64>,
        /// Annotations recorded during the span
        /// ([`SpanGuard::record`](crate::SpanGuard::record)).
        args: Vec<Arg>,
    },
    /// A point event inside the current span (or at top level).
    Event {
        /// Event name.
        name: &'static str,
        /// Real time since the collector epoch.
        mono_ns: u64,
        /// Simulated time (milli-days), if published.
        sim_md: Option<i64>,
        /// Annotations.
        args: Vec<Arg>,
    },
}

/// One thread's drained buffer, in recording order.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadTrace {
    /// The thread's lane — the deterministic merge key (see
    /// [`Collector::set_lane`](crate::Collector::set_lane)).
    pub lane: u64,
    /// The thread's items, oldest first.
    pub items: Vec<TraceItem>,
}

/// A merged trace: every thread's buffer, ordered by `(lane,
/// registration)` so the merge is deterministic whenever lanes are
/// (threads doing deterministic work under explicit lanes produce
/// byte-identical traces run over run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Per-thread traces in merge order.
    pub threads: Vec<ThreadTrace>,
}

/// One matched span in a [`Trace`], flattened by
/// [`Trace::spans`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanView {
    /// Span name.
    pub name: &'static str,
    /// Owning thread's lane.
    pub lane: u64,
    /// Nesting depth within its thread (roots are 0).
    pub depth: usize,
    /// Index (into the same `spans()` vector) of the enclosing span.
    pub parent: Option<usize>,
    /// Enter time (real, ns since epoch).
    pub start_ns: u64,
    /// Exit time (real, ns since epoch).
    pub end_ns: u64,
    /// Simulated time at entry (milli-days), if published.
    pub sim_start_md: Option<i64>,
    /// Simulated time at exit (milli-days), if published.
    pub sim_end_md: Option<i64>,
    /// Entry + exit annotations, entry first.
    pub args: Vec<Arg>,
}

impl SpanView {
    /// Real duration of the span in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The value of annotation `key`, if recorded.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|a| a.key == key).map(|a| &a.value)
    }
}

impl Trace {
    /// Whether the trace holds no items at all.
    pub fn is_empty(&self) -> bool {
        self.threads.iter().all(|t| t.items.is_empty())
    }

    /// Total items across all threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|t| t.items.len()).sum()
    }

    /// Number of matched spans (enter/exit pairs).
    pub fn span_count(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| &t.items)
            .filter(|i| matches!(i, TraceItem::Enter { .. }))
            .count()
    }

    /// Number of point events.
    pub fn event_count(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| &t.items)
            .filter(|i| matches!(i, TraceItem::Event { .. }))
            .count()
    }

    /// Checks the trace is **well-formed**: within every thread, each
    /// exit closes an open span (no exit without a matching enter) and
    /// no span is left open at the end of the buffer. RAII guards make
    /// violations impossible for spans scoped inside one collection
    /// session; this is the property the test suite pins.
    ///
    /// # Errors
    ///
    /// A description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (t, thread) in self.threads.iter().enumerate() {
            let mut stack: Vec<&'static str> = Vec::new();
            for (i, item) in thread.items.iter().enumerate() {
                match item {
                    TraceItem::Enter { name, .. } => stack.push(name),
                    TraceItem::Exit { .. } => {
                        if stack.pop().is_none() {
                            return Err(format!(
                                "thread {t} (lane {}): exit at item {i} closes no open span",
                                thread.lane
                            ));
                        }
                    }
                    TraceItem::Event { .. } => {}
                }
            }
            if let Some(open) = stack.last() {
                return Err(format!(
                    "thread {t} (lane {}): span {open:?} never exited ({} left open)",
                    thread.lane,
                    stack.len()
                ));
            }
        }
        Ok(())
    }

    /// Flattens every matched span into a [`SpanView`], per thread in
    /// enter order. Unmatched enters (an invalid trace) are skipped —
    /// call [`validate`](Trace::validate) first when that matters.
    pub fn spans(&self) -> Vec<SpanView> {
        let mut out: Vec<SpanView> = Vec::new();
        for thread in &self.threads {
            // Per-thread views plus a matched flag; indices are local.
            let mut local: Vec<(SpanView, bool)> = Vec::new();
            let mut open: Vec<usize> = Vec::new();
            for item in &thread.items {
                match item {
                    TraceItem::Enter {
                        name,
                        mono_ns,
                        sim_md,
                        args,
                    } => {
                        let parent = open.last().copied();
                        local.push((
                            SpanView {
                                name,
                                lane: thread.lane,
                                depth: open.len(),
                                parent,
                                start_ns: *mono_ns,
                                end_ns: *mono_ns,
                                sim_start_md: *sim_md,
                                sim_end_md: *sim_md,
                                args: args.clone(),
                            },
                            false,
                        ));
                        open.push(local.len() - 1);
                    }
                    TraceItem::Exit {
                        mono_ns,
                        sim_md,
                        args,
                    } => {
                        if let Some(idx) = open.pop() {
                            let (span, matched) = &mut local[idx];
                            span.end_ns = *mono_ns;
                            if sim_md.is_some() {
                                span.sim_end_md = *sim_md;
                            }
                            span.args.extend(args.iter().cloned());
                            *matched = true;
                        }
                    }
                    TraceItem::Event { .. } => {}
                }
            }
            // Keep matched spans only, remapping parent links (an
            // unmatched ancestor is replaced by its nearest matched
            // one; indices become global via `out`'s running length).
            let parents: Vec<Option<usize>> = local.iter().map(|(s, _)| s.parent).collect();
            let mut remap: Vec<Option<usize>> = vec![None; local.len()];
            for (i, (mut span, matched)) in local.into_iter().enumerate() {
                if !matched {
                    continue;
                }
                let mut parent = span.parent;
                while let Some(p) = parent {
                    match remap[p] {
                        Some(mapped) => {
                            parent = Some(mapped);
                            break;
                        }
                        // Unmatched ancestor: walk up to its own parent.
                        None => parent = parents[p],
                    }
                }
                span.parent = parent;
                remap[i] = Some(out.len());
                out.push(span);
            }
        }
        out
    }

    /// Whether any matched span is named `name`.
    pub fn has_span(&self, name: &str) -> bool {
        self.spans().iter().any(|s| s.name == name)
    }

    /// The first matched span named `name`, if any.
    pub fn first_span(&self, name: &str) -> Option<SpanView> {
        self.spans().into_iter().find(|s| s.name == name)
    }

    /// Whether any point event is named `name`.
    pub fn has_event(&self, name: &str) -> bool {
        self.threads
            .iter()
            .flat_map(|t| &t.items)
            .any(|i| matches!(i, TraceItem::Event { name: n, .. } if *n == name))
    }

    /// Number of point events named `name`.
    pub fn events_named(&self, name: &str) -> usize {
        self.threads
            .iter()
            .flat_map(|t| &t.items)
            .filter(|i| matches!(i, TraceItem::Event { name: n, .. } if *n == name))
            .count()
    }

    /// The span structure alone — `(lane, depth, name)` per span in
    /// merge order — which is what deterministic instrumentation keeps
    /// byte-identical run over run even though wall times differ.
    pub fn shape(&self) -> Vec<(u64, usize, &'static str)> {
        self.spans()
            .iter()
            .map(|s| (s.lane, s.depth, s.name))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enter(name: &'static str, ns: u64) -> TraceItem {
        TraceItem::Enter {
            name,
            mono_ns: ns,
            sim_md: None,
            args: Vec::new(),
        }
    }

    fn exit(ns: u64) -> TraceItem {
        TraceItem::Exit {
            mono_ns: ns,
            sim_md: None,
            args: Vec::new(),
        }
    }

    #[test]
    fn validate_accepts_nested_and_rejects_unbalanced() {
        let good = Trace {
            threads: vec![ThreadTrace {
                lane: 0,
                items: vec![enter("a", 1), enter("b", 2), exit(3), exit(4)],
            }],
        };
        good.validate().unwrap();

        let dangling_exit = Trace {
            threads: vec![ThreadTrace {
                lane: 0,
                items: vec![exit(1)],
            }],
        };
        assert!(dangling_exit.validate().is_err());

        let unclosed = Trace {
            threads: vec![ThreadTrace {
                lane: 3,
                items: vec![enter("a", 1)],
            }],
        };
        let err = unclosed.validate().unwrap_err();
        assert!(err.contains("never exited"), "{err}");
    }

    #[test]
    fn spans_flatten_with_depth_and_parent() {
        let t = Trace {
            threads: vec![ThreadTrace {
                lane: 7,
                items: vec![
                    enter("root", 10),
                    enter("child", 20),
                    exit(30),
                    exit(40),
                    enter("sibling", 50),
                    exit(60),
                ],
            }],
        };
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].dur_ns(), 30);
        assert_eq!(spans[1].name, "child");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].name, "sibling");
        assert_eq!(spans[2].parent, None);
        assert!(t.has_span("child"));
        assert!(!t.has_span("ghost"));
        assert_eq!(t.span_count(), 3);
        assert_eq!(
            t.shape(),
            vec![(7, 0, "root"), (7, 1, "child"), (7, 0, "sibling")]
        );
    }

    #[test]
    fn exit_args_merge_into_the_span_view() {
        let t = Trace {
            threads: vec![ThreadTrace {
                lane: 0,
                items: vec![
                    TraceItem::Enter {
                        name: "s",
                        mono_ns: 0,
                        sim_md: Some(1000),
                        args: vec![Arg::new("in", 1u64)],
                    },
                    TraceItem::Exit {
                        mono_ns: 5,
                        sim_md: Some(2500),
                        args: vec![Arg::new("out", true)],
                    },
                ],
            }],
        };
        let s = t.first_span("s").unwrap();
        assert_eq!(s.arg("in"), Some(&ArgValue::U64(1)));
        assert_eq!(s.arg("out"), Some(&ArgValue::Bool(true)));
        assert_eq!(s.sim_start_md, Some(1000));
        assert_eq!(s.sim_end_md, Some(2500));
    }
}
