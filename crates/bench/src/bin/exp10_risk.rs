//! Experiment E10 (extension): schedule risk — PERT's single-path
//! normal approximation vs Monte Carlo sampling on the ASIC flow's
//! planned network, showing the merge bias PERT misses and the
//! per-activity criticality indices.

use hercules::Hercules;
use schedule::montecarlo::simulate;
use schedule::pert::{completion_probability, ThreePoint};
use schedule::{ScheduleNetwork, WorkDays};
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

fn main() {
    let mut h = Hercules::new(
        examples::asic_flow(),
        ToolLibrary::standard(),
        Team::of_size(3),
        5,
    );
    let plan = h.plan("signoff_report").expect("plannable");
    let tree = h.extract_task_tree("signoff_report").expect("known target");

    // Rebuild the precedence network with three-point estimates around
    // each planned duration: (0.6d, d, 2d), the usual right skew.
    let mut net = ScheduleNetwork::new();
    let mut ids = Vec::new();
    for pa in plan.activities() {
        let id = net
            .add_activity(pa.activity.clone(), pa.duration)
            .expect("unique");
        ids.push((pa.activity.clone(), id));
    }
    for (activity, id) in &ids {
        for consumer in tree.consumers_of_output(activity) {
            let cid = ids.iter().find(|(a, _)| a == consumer).expect("planned").1;
            net.add_precedence(*id, cid).expect("acyclic");
        }
    }
    let estimates: Vec<_> = ids
        .iter()
        .map(|(activity, id)| {
            let d = plan.activity(activity).expect("planned").duration.days();
            (*id, ThreePoint::new(0.6 * d, d, 2.0 * d).expect("ordered"))
        })
        .collect();

    let cpm_finish = net.analyze().expect("acyclic").project_duration();
    println!("deterministic CPM finish: day {cpm_finish}");

    let mc = simulate(&net, &estimates, 20_000, 7).expect("valid inputs");
    println!(
        "Monte Carlo (20k samples): mean day {:.1}, P50 {:.1}, P80 {:.1}, P95 {:.1}",
        mc.mean_duration().days(),
        mc.quantile(0.5).days(),
        mc.quantile(0.8).days(),
        mc.quantile(0.95).days()
    );

    for deadline_factor in [1.0, 1.1, 1.25] {
        let deadline = WorkDays::new(cpm_finish.days() * deadline_factor);
        let pert = completion_probability(&net, &estimates, deadline).expect("valid");
        let mc_p = mc.probability_within(deadline);
        println!(
            "P(finish <= {:.1}d): PERT {:.0}% vs Monte Carlo {:.0}%  (merge bias: {:+.0} pts)",
            deadline.days(),
            pert.probability * 100.0,
            mc_p * 100.0,
            (pert.probability - mc_p) * 100.0
        );
    }

    println!("\ncriticality indices (fraction of samples on the critical path):");
    let mut rows: Vec<(String, f64)> = ids
        .iter()
        .map(|(activity, id)| (activity.clone(), mc.criticality(*id)))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (activity, ci) in rows {
        println!("  {activity:<12} {:>5.1}%", ci * 100.0);
    }
}
