//! B5 — slip propagation vs full replan (the DESIGN.md ablation for
//! versioned incremental updates).
//!
//! Expected shape: incremental propagation touches only the downstream
//! cone and is cheaper than a full replanning pass; both stay fast
//! enough for automatic updates on every completion event.

use std::time::Duration;

use bench::pipeline_manager;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hercules::Hercules;

/// A pipeline mid-execution: the front third complete (so a slip has
/// somewhere to propagate from), the rest open.
fn mid_project(stages: usize) -> (Hercules, String) {
    let mut h = pipeline_manager(stages, 4, 1);
    let target = format!("d{stages}");
    h.plan(&target).expect("plannable");
    let front = format!("d{}", stages / 3);
    h.execute(&front).expect("executable");
    (h, target)
}

fn bench_replan(c: &mut Criterion) {
    let mut group = c.benchmark_group("replan");
    for &stages in &[30usize, 90] {
        let slipped = format!("Stage{}", stages / 3);
        group.bench_with_input(
            BenchmarkId::new("propagate_slip", stages),
            &stages,
            |b, &stages| {
                b.iter_batched(
                    || mid_project(stages),
                    |(mut h, _)| h.propagate_slip(&slipped).expect("planned"),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_replan", stages),
            &stages,
            |b, &stages| {
                b.iter_batched(
                    || mid_project(stages),
                    |(mut h, target)| h.replan(&target).expect("plannable"),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_replan
}
criterion_main!(benches);
