//! # obs — span tracing and metrics for the schedflow workspace
//!
//! The paper's fourth pillar is *status examination*: queries into
//! schedule data and schedule **metadata** — how a plan came to be and
//! how the system behaved while executing it. This crate is the
//! workspace's answer at the systems level: a zero-dependency,
//! offline observability layer that turns the plan → execute → replan
//! lifecycle into queryable telemetry.
//!
//! Three pieces:
//!
//! * **Tracing** ([`Collector`], [`span!`], [`event!`]) — RAII span
//!   guards and point events recorded into per-thread buffers, merged
//!   deterministically by lane (see [`Collector::set_lane`]). Every
//!   item carries two timestamp domains: real monotonic nanoseconds
//!   and the simulated WorkDay clock (milli-days, when published via
//!   [`Collector::set_sim_md`]). Tracing is **off by default**: the
//!   macros cost one relaxed atomic load when disabled, and the
//!   `compile-off` feature removes even that. Two recording modes
//!   coexist: exclusive lossless **sessions**
//!   ([`Collector::session`]) and the lossy always-on **flight
//!   recorder** ([`Collector::enable_flight`], [`flight::FlightDump`])
//!   — bounded per-thread rings a live server keeps running
//!   permanently and dumps on demand, with per-request correlation
//!   via [`Collector::trace_scope`].
//! * **Metrics** ([`Metrics`], [`Counter`], [`Gauge`], [`Histogram`])
//!   — an always-on registry of named (optionally labeled) counters,
//!   gauges, and fixed-bucket histograms replacing ad-hoc stats
//!   structs, with interpolated percentiles and Prometheus text
//!   exposition ([`Metrics::to_prometheus`]).
//! * **Exporters** ([`export::to_jsonl`], [`export::to_chrome`]) —
//!   JSONL event logs and Chrome `trace_event` JSON loadable in
//!   `chrome://tracing`/Perfetto, written atomically via
//!   [`export::write_atomic`]. The [`export::Timebase::Logical`]
//!   timebase substitutes per-thread ticks for wall time so
//!   deterministic runs export byte-identical files (golden-pinnable).
//!
//! ## Example
//!
//! ```
//! use obs::{span, event, Collector};
//!
//! let session = Collector::session(); // exclusive; enables recording
//! {
//!     let mut g = span!("hercules.plan", target = "signoff_report");
//!     event!("plan.cache_hit", dirty = 3usize);
//!     g.record("cpm_recomputed", 12usize);
//! }
//! let trace = session.finish();
//! trace.validate().unwrap();
//! assert!(trace.has_span("hercules.plan"));
//! let json = obs::export::to_chrome(&trace, obs::export::Timebase::Wall);
//! assert!(json.contains("traceEvents"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
pub mod export;
pub mod flight;
mod metrics;
mod trace;

pub use collector::{flight_event, Collector, Session, SpanGuard, TraceScope};
pub use flight::{FlightDump, FlightKind, FlightRecord, FlightThread};
pub use metrics::{Counter, Gauge, Histogram, MetricSnapshot, Metrics};
pub use trace::{Arg, ArgValue, SpanView, ThreadTrace, Trace, TraceItem};

/// Opens a span: returns a [`SpanGuard`] that records entry now and
/// exit when dropped. Arguments are `key = value` pairs (values:
/// integers, floats, bools, strings). When tracing is disabled the
/// expansion is one branch — **no argument expressions are
/// evaluated**.
///
/// ```
/// # let _session = obs::Collector::session();
/// let _g = obs::span!("core.execute", target = "placed_db", open = 5usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::Collector::is_enabled() {
            $crate::SpanGuard::enter(
                $name,
                ::std::vec![$($crate::Arg::new(stringify!($key), $value)),*],
            )
        } else if $crate::Collector::flight_enabled() {
            // Flight-only: ring record, no argument vector built.
            $crate::SpanGuard::enter_flight($name)
        } else {
            $crate::SpanGuard::inactive()
        }
    };
}

/// Records a point event inside the current span. Same `key = value`
/// argument form as [`span!`]; evaluates nothing when tracing is
/// disabled.
///
/// ```
/// # let _session = obs::Collector::session();
/// obs::event!("execute.retry", activity = "simulate", attempt = 2u64);
/// ```
#[macro_export]
macro_rules! event {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::Collector::is_enabled() {
            $crate::Collector::event(
                $name,
                ::std::vec![$($crate::Arg::new(stringify!($key), $value)),*],
            );
        } else if $crate::Collector::flight_enabled() {
            $crate::flight_event($name);
        }
    };
}

#[cfg(all(test, not(feature = "compile-off")))]
mod macro_tests {
    use crate::Collector;

    #[test]
    fn macros_record_when_enabled_and_skip_eval_when_disabled() {
        // Disabled: the argument expression must not run.
        let mut evaluated = false;
        {
            let _g = span!(
                "test.span",
                flag = {
                    evaluated = true;
                    1u64
                }
            );
        }
        assert!(!evaluated, "span! evaluated args while disabled");

        let session = Collector::session();
        {
            let mut g = span!("test.span", flag = 1u64);
            assert!(g.is_active());
            event!("test.event", n = 2u64);
            g.record("done", true);
        }
        let trace = session.finish();
        trace.validate().unwrap();
        assert!(trace.has_span("test.span"));
        assert_eq!(trace.events_named("test.event"), 1);
    }

    #[test]
    fn macros_feed_the_flight_recorder_without_a_session() {
        Collector::enable_flight(64);
        let _scope = Collector::trace_scope(0xabc123);
        // A parallel test may hold a session right now, which routes
        // the macros down the session path (args evaluated, and the
        // flight ring still fed) — only assert the zero-eval claim
        // when the flight-only branch actually ran.
        let session_seen = Collector::is_enabled();
        let mut evaluated = false;
        {
            let _g = span!(
                "macro.flight.span",
                x = {
                    evaluated = true;
                    1u64
                }
            );
            event!(
                "macro.flight.event",
                y = {
                    evaluated = true;
                    2u64
                }
            );
        }
        if !session_seen && !Collector::is_enabled() {
            assert!(!evaluated, "flight-only path must not build args");
        }
        let dump = Collector::flight_dump().filter_trace(0xabc123);
        assert_eq!(dump.total_records(), 3, "{dump:?}");
        assert!(dump.to_json().contains("macro.flight.span"));
    }
}
