use std::collections::HashMap;

use schedule::{ScheduleNetwork, WorkDays};

use crate::error::HerculesError;
use crate::manager::Hercules;

/// A mid-project completion forecast: what the integrated system can
/// answer at any moment that a trace-based tracker (VOV) structurally
/// cannot.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// When the forecast was taken (project clock).
    pub as_of: WorkDays,
    /// Forecast project finish: actuals for done work, estimates for
    /// the rest.
    pub finish: WorkDays,
    /// Activities already complete.
    pub complete: usize,
    /// Activities still open (estimated).
    pub open: usize,
    /// Open activities on the forecast's critical path, in order.
    pub critical: Vec<String>,
}

impl Forecast {
    /// Remaining estimated work from the forecast point.
    pub fn remaining(&self) -> WorkDays {
        self.finish.saturating_sub(self.as_of)
    }
}

impl Hercules {
    /// Forecasts the completion of `target` at the current clock:
    /// completed activities contribute their *actual* finishes, open
    /// activities their current duration estimates (history first),
    /// and CPM over the remaining precedence network gives the finish.
    ///
    /// This is the §I promise made operational: because flow state and
    /// schedule live in one system, "the project schedule can be
    /// automatically updated" — including the forward-looking part.
    ///
    /// # Errors
    ///
    /// * [`HerculesError::UnknownTarget`] — `target` names nothing.
    ///
    /// # Example
    ///
    /// ```
    /// use hercules::Hercules;
    /// use schema::examples;
    /// use simtools::{workload::Team, ToolLibrary};
    ///
    /// # fn main() -> Result<(), hercules::HerculesError> {
    /// let mut h = Hercules::new(
    ///     examples::asic_flow(),
    ///     ToolLibrary::standard(),
    ///     Team::of_size(3),
    ///     5,
    /// );
    /// h.plan("signoff_report")?;
    /// h.execute("netlist")?; // part-way through the project
    /// let forecast = h.forecast("signoff_report")?;
    /// assert!(forecast.open > 0 && forecast.complete > 0);
    /// assert!(forecast.finish.days() > forecast.as_of.days());
    /// # Ok(())
    /// # }
    /// ```
    pub fn forecast(&self, target: &str) -> Result<Forecast, HerculesError> {
        let tree = self.extract_task_tree(target)?;
        let mut net = ScheduleNetwork::new();
        let mut ids = HashMap::new();
        let mut complete = 0usize;
        let mut open = 0usize;
        // Completed activities become zero-duration milestones pinned
        // at their actual finish via a leading "anchor" duration.
        for activity in tree.activities() {
            let done = self
                .db()
                .current_plan(activity)
                .is_some_and(|p| p.is_complete());
            let duration = if done {
                complete += 1;
                WorkDays::ZERO
            } else {
                open += 1;
                self.duration_estimate(activity)?
            };
            let id = net.add_activity(activity.clone(), duration)?;
            ids.insert(activity.clone(), id);
        }
        for activity in tree.activities() {
            for consumer in tree.consumers_of_output(activity) {
                net.add_precedence(ids[activity.as_str()], ids[consumer])?;
            }
        }
        let cpm = net.analyze()?;
        // Base offset: open work cannot start before now or before the
        // latest data already available in scope — the same seeding the
        // executor's ready queue starts from (supplied inputs are
        // always at or before the clock, so only completed actuals can
        // push the base forward).
        let base = self
            .seed_data_ready(&tree)
            .values()
            .map(|&(at, _)| at)
            .fold(self.clock, WorkDays::max);
        let finish = base + cpm.project_duration();
        let critical = cpm
            .critical_path()
            .iter()
            .filter(|&&id| net.duration(id).days() > 0.0)
            .map(|&id| net.name(id).to_owned())
            .collect();
        Ok(Forecast {
            as_of: self.clock,
            finish,
            complete,
            open,
            critical,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;
    use simtools::{workload::Team, ToolLibrary};

    fn asic(seed: u64) -> Hercules {
        Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            seed,
        )
    }

    #[test]
    fn forecast_before_start_matches_plan_shape() {
        let mut h = asic(5);
        let plan = h.plan("signoff_report").unwrap();
        let f = h.forecast("signoff_report").unwrap();
        assert_eq!(f.complete, 0);
        assert_eq!(f.open, 9);
        // The forecast ignores team capacity (pure CPM), so it can be
        // at or below the levelled plan finish, never above.
        assert!(f.finish.days() <= plan.project_finish().days() + 1e-9);
        assert!(!f.critical.is_empty());
    }

    #[test]
    fn forecast_narrows_as_work_completes() {
        let mut h = asic(5);
        h.plan("signoff_report").unwrap();
        let f0 = h.forecast("signoff_report").unwrap();
        h.execute("rtl").unwrap();
        let f1 = h.forecast("signoff_report").unwrap();
        assert!(f1.complete > 0);
        assert!(f1.open < f0.open);
        assert!(f1.as_of.days() > f0.as_of.days());
        // Remaining work shrinks as activities complete.
        assert!(f1.remaining().days() < f0.remaining().days() + f1.as_of.days());
    }

    #[test]
    fn forecast_at_completion_is_now() {
        let mut h = asic(5);
        h.plan("signoff_report").unwrap();
        h.execute("signoff_report").unwrap();
        let f = h.forecast("signoff_report").unwrap();
        assert_eq!(f.open, 0);
        assert_eq!(f.complete, 9);
        assert_eq!(f.remaining(), WorkDays::ZERO);
        assert!(f.critical.is_empty());
    }

    #[test]
    fn forecast_uses_history_for_open_work() {
        let mut h = asic(5);
        h.plan("signoff_report").unwrap();
        h.execute("netlist").unwrap();
        // Synthesize is complete; its history now exists. VerifyRtl's
        // estimate may also have switched to history. The forecast
        // for open work must equal the manager's current estimates.
        let f = h.forecast("signoff_report").unwrap();
        assert!(f
            .critical
            .iter()
            .all(|a| { !h.db().current_plan(a).is_some_and(|p| p.is_complete()) }));
    }

    #[test]
    fn unknown_target_rejected() {
        let h = asic(5);
        assert!(h.forecast("gds").is_err());
    }
}
