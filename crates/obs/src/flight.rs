//! The flight recorder: a lossy, always-on ring of recent spans and
//! events that coexists with exclusive tracing sessions.
//!
//! Sessions (PR 4) are exclusive and lossless — exactly what a CLI
//! trace run wants, and exactly what a live server cannot use. The
//! flight recorder is the complement: every thread owns a
//! fixed-capacity ring of [`FlightRecord`]s that the `span!`/`event!`
//! macros feed whenever the recorder is enabled, whether or not a
//! session is also running. When a ring is full the oldest record is
//! overwritten (and counted), so memory is bounded no matter how long
//! the process lives. A dump ([`crate::Collector::flight_dump`])
//! merges the rings on demand — typically microseconds before an
//! operator reads them from `GET /debug/flight`.
//!
//! Cost model: recording appends into a preallocated buffer behind the
//! thread's own (uncontended) mutex — no allocation after the ring
//! warms up, and no argument vectors are ever built on the
//! flight-only path. The only cross-thread traffic is the shared
//! `obs.flight.dropped` counter, bumped once per overwritten record.
//! The B16 `obs_live` kernel holds the end-to-end overhead on plan
//! and serve bodies to ≤1.15× the disabled baseline.
//!
//! Records deliberately carry no args and no simulated clock: the
//! recorder answers "what was the process doing just now", not "what
//! exactly happened" — that remains the session's job.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::metrics::{Counter, Metrics};

/// Ring capacity per thread; 0 = recorder disabled.
static FLIGHT_CAP: AtomicUsize = AtomicUsize::new(0);

/// The shared overwrite counter, visible live in `/metrics` as
/// `obs.flight.dropped`.
fn dropped_counter() -> &'static Counter {
    static DROPPED: OnceLock<Counter> = OnceLock::new();
    DROPPED.get_or_init(|| Metrics::counter("obs.flight.dropped"))
}

pub(crate) fn cap() -> usize {
    #[cfg(feature = "compile-off")]
    {
        0
    }
    #[cfg(not(feature = "compile-off"))]
    {
        FLIGHT_CAP.load(Ordering::Relaxed)
    }
}

pub(crate) fn set_cap(cap: usize) {
    FLIGHT_CAP.store(cap, Ordering::Relaxed);
}

/// What a flight record marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A span opened.
    Enter,
    /// A span closed.
    Exit,
    /// A point event.
    Event,
}

impl FlightKind {
    fn as_str(self) -> &'static str {
        match self {
            FlightKind::Enter => "enter",
            FlightKind::Exit => "exit",
            FlightKind::Event => "event",
        }
    }
}

/// One entry in a thread's flight ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Enter / exit / event.
    pub kind: FlightKind,
    /// The span or event name.
    pub name: &'static str,
    /// Monotonic nanoseconds since the collector epoch.
    pub mono_ns: u64,
    /// The request trace id active on the recording thread (0 = none).
    pub trace_id: u64,
}

/// One thread's ring. Owned by the thread slot, locked only by the
/// owning thread and a dump.
#[derive(Default)]
pub(crate) struct FlightRing {
    cap: usize,
    buf: Vec<FlightRecord>,
    /// Records ever written; position of record `i` is `i % cap`.
    head: u64,
    /// Records overwritten before anyone dumped them.
    dropped: u64,
}

impl FlightRing {
    /// Appends one record under the current capacity. Re-arms the ring
    /// if the capacity changed since the last write (rare: only on
    /// enable/disable transitions).
    pub(crate) fn record(&mut self, cap: usize, rec: FlightRecord) {
        if self.cap != cap {
            self.cap = cap;
            self.buf.clear();
            self.buf.reserve_exact(cap);
            self.head = 0;
            self.dropped = 0;
        }
        if self.buf.len() < cap {
            self.buf.push(rec);
        } else {
            let idx = (self.head % cap as u64) as usize;
            self.buf[idx] = rec;
            self.dropped += 1;
            dropped_counter().inc();
        }
        self.head += 1;
    }

    /// Records in write order (oldest surviving first) plus the
    /// overwrite count.
    pub(crate) fn drain_ordered(&self) -> (Vec<FlightRecord>, u64) {
        if self.buf.len() < self.cap || self.cap == 0 {
            return (self.buf.clone(), self.dropped);
        }
        let start = (self.head % self.cap as u64) as usize;
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[start..]);
        out.extend_from_slice(&self.buf[..start]);
        (out, self.dropped)
    }

    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

/// One thread's contribution to a flight dump.
#[derive(Debug, Clone)]
pub struct FlightThread {
    /// The thread's lane (`u64::MAX` = never assigned).
    pub lane: u64,
    /// Records overwritten in this thread's ring since enable.
    pub dropped: u64,
    /// Surviving records, oldest first.
    pub records: Vec<FlightRecord>,
}

/// A merged snapshot of every thread's flight ring, ordered by
/// `(lane, registration)` like a session drain.
#[derive(Debug, Clone, Default)]
pub struct FlightDump {
    /// Per-thread rings with at least one record or drop.
    pub threads: Vec<FlightThread>,
}

impl FlightDump {
    /// Total surviving records across all threads.
    pub fn total_records(&self) -> usize {
        self.threads.iter().map(|t| t.records.len()).sum()
    }

    /// Total overwritten records across all threads.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// The dump restricted to one request: only records stamped with
    /// `trace_id`, threads with no match removed. Drop counters are
    /// carried over unchanged — a dropped record *might* have belonged
    /// to this trace, and the reader should know the window was lossy.
    pub fn filter_trace(&self, trace_id: u64) -> FlightDump {
        FlightDump {
            threads: self
                .threads
                .iter()
                .filter_map(|t| {
                    let records: Vec<FlightRecord> = t
                        .records
                        .iter()
                        .filter(|r| r.trace_id == trace_id)
                        .copied()
                        .collect();
                    (!records.is_empty()).then_some(FlightThread {
                        lane: t.lane,
                        dropped: t.dropped,
                        records,
                    })
                })
                .collect(),
        }
    }

    /// Renders the dump as one JSON object. Each record carries its
    /// kind, name, timestamp, nesting depth (enters minus exits seen
    /// so far on that thread), and the trace id as 16 hex digits when
    /// present.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"threads\":[");
        for (i, t) in self.threads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if t.lane == u64::MAX {
                out.push_str("{\"lane\":null");
            } else {
                let _ = write!(out, "{{\"lane\":{}", t.lane);
            }
            let _ = write!(out, ",\"dropped\":{},\"records\":[", t.dropped);
            let mut depth: u64 = 0;
            for (j, r) in t.records.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                if r.kind == FlightKind::Exit {
                    depth = depth.saturating_sub(1);
                }
                let _ = write!(out, "{{\"kind\":\"{}\",\"name\":\"", r.kind.as_str());
                crate::export::escape_json(r.name, &mut out);
                let _ = write!(out, "\",\"t_ns\":{},\"depth\":{depth}", r.mono_ns);
                if r.trace_id != 0 {
                    let _ = write!(out, ",\"trace\":\"{:016x}\"", r.trace_id);
                }
                out.push('}');
                if r.kind == FlightKind::Enter {
                    depth += 1;
                }
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "],\"total_records\":{},\"total_dropped\":{}}}",
            self.total_records(),
            self.total_dropped()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &'static str, kind: FlightKind, t: u64) -> FlightRecord {
        FlightRecord {
            kind,
            name,
            mono_ns: t,
            trace_id: 0,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = FlightRing::default();
        for t in 0..6 {
            ring.record(4, rec("a", FlightKind::Event, t));
        }
        let (records, dropped) = ring.drain_ordered();
        assert_eq!(dropped, 2);
        let times: Vec<u64> = records.iter().map(|r| r.mono_ns).collect();
        assert_eq!(times, vec![2, 3, 4, 5], "oldest two overwritten");
    }

    #[test]
    fn capacity_change_rearms_the_ring() {
        let mut ring = FlightRing::default();
        ring.record(2, rec("a", FlightKind::Event, 0));
        ring.record(2, rec("a", FlightKind::Event, 1));
        ring.record(8, rec("a", FlightKind::Event, 2));
        let (records, dropped) = ring.drain_ordered();
        assert_eq!(records.len(), 1);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn dump_json_filters_by_trace_and_is_valid() {
        let dump = FlightDump {
            threads: vec![FlightThread {
                lane: 0,
                dropped: 3,
                records: vec![
                    FlightRecord {
                        kind: FlightKind::Enter,
                        name: "serve.request",
                        mono_ns: 10,
                        trace_id: 0xabcd,
                    },
                    FlightRecord {
                        kind: FlightKind::Event,
                        name: "other",
                        mono_ns: 11,
                        trace_id: 0x9999,
                    },
                    FlightRecord {
                        kind: FlightKind::Exit,
                        name: "serve.request",
                        mono_ns: 12,
                        trace_id: 0xabcd,
                    },
                ],
            }],
        };
        crate::export::validate_json(&dump.to_json()).unwrap();
        let one = dump.filter_trace(0xabcd);
        assert_eq!(one.total_records(), 2);
        assert_eq!(one.total_dropped(), 3, "drop counts survive filtering");
        let json = one.to_json();
        assert!(json.contains("000000000000abcd"), "{json}");
        assert!(!json.contains("other"), "{json}");
    }
}
