//! Per-project replan coalescing.
//!
//! Replanning is idempotent over the *current* dirty region: a replan
//! pass picks up every stale activity, so N clients asking for a
//! replan of the same project at nearly the same time only need one
//! kernel pass *started after the last of them arrived*. The coalescer
//! enforces exactly that with numbered waves:
//!
//! - passes are numbered 1, 2, 3, … in start order;
//! - a request arriving when `started == finished` (idle) becomes the
//!   *leader* of wave `started + 1` and runs the kernel pass itself;
//! - a request arriving while a pass is executing waits for the *next*
//!   wave — the in-flight pass may have read the dirty region before
//!   this request's cause was journaled, so its result cannot be
//!   reused — and the first waiter to wake becomes that wave's leader;
//! - every waiter whose wave has finished shares the leader's rendered
//!   result instead of issuing its own kernel pass.
//!
//! Under contention this turns K concurrent requests into at most 2
//! kernel passes (the in-flight one plus one follow-up), which the
//! `serve.replan.requests` / `serve.replan.kernel_passes` counters
//! make observable and the B13 gate asserts.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Rendered outcome of a replan pass, shared between coalesced
/// requests: `Ok(body)` or `Err(kernel error message)`.
pub type PassResult = Result<String, String>;

#[derive(Debug, Default)]
struct GateState {
    /// Number of kernel passes started.
    started: u64,
    /// Number of kernel passes finished (`<= started`).
    finished: u64,
    /// Result of the most recently finished pass.
    last: Option<PassResult>,
}

#[derive(Debug, Default)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

/// Statistics from one coalesced call (for metrics/tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This request ran the kernel pass itself.
    Leader,
    /// This request reused a pass led by another request.
    Follower,
}

/// One coalescing gate per project name.
#[derive(Debug, Default)]
pub struct Coalescer {
    gates: Mutex<HashMap<String, Arc<Gate>>>,
}

impl Coalescer {
    pub fn new() -> Coalescer {
        Coalescer::default()
    }

    fn gate(&self, project: &str) -> Arc<Gate> {
        let mut map = self.gates.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(project.to_owned()).or_default())
    }

    /// Runs `pass` for `project`, coalescing with concurrent callers.
    /// Returns the (possibly shared) result plus this caller's role.
    ///
    /// Correctness requirement honoured here: every caller observes
    /// the result of a pass that *started at or after* the caller
    /// arrived, so a mutation journaled before the request was issued
    /// is always visible in the response.
    pub fn run(&self, project: &str, pass: impl FnOnce() -> PassResult) -> (PassResult, Role) {
        let gate = self.gate(project);
        let mut state = gate.state.lock().unwrap_or_else(|e| e.into_inner());
        // The earliest pass whose start is not before our arrival.
        let target = state.started + 1;
        loop {
            if state.finished >= target {
                // A pass started after we arrived has completed; share
                // its result. (`last` is the most recent finish, which
                // is at or past `target` — still "started after us".)
                let result = state
                    .last
                    .clone()
                    .expect("finished > 0 implies a recorded result");
                return (result, Role::Follower);
            }
            if state.started == state.finished && state.started < target {
                // Idle and our wave has not started: lead it.
                state.started += 1;
                drop(state);
                let result = pass();
                let mut state = gate.state.lock().unwrap_or_else(|e| e.into_inner());
                state.finished += 1;
                state.last = Some(result.clone());
                gate.cv.notify_all();
                return (result, Role::Leader);
            }
            // A pass is executing; wait for it to finish and re-check.
            state = gate.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn sequential_calls_each_lead_their_own_pass() {
        let c = Coalescer::new();
        let passes = AtomicU64::new(0);
        for _ in 0..3 {
            let (result, role) = c.run("p", || {
                passes.fetch_add(1, Ordering::SeqCst);
                Ok("done".to_owned())
            });
            assert_eq!(result.unwrap(), "done");
            assert_eq!(role, Role::Leader);
        }
        assert_eq!(passes.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn concurrent_burst_coalesces_to_few_passes() {
        let c = Arc::new(Coalescer::new());
        let passes = Arc::new(AtomicU64::new(0));
        const CLIENTS: usize = 16;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let c = Arc::clone(&c);
                let passes = Arc::clone(&passes);
                std::thread::spawn(move || {
                    c.run("p", || {
                        // Hold the pass long enough that the burst
                        // overlaps it.
                        std::thread::sleep(Duration::from_millis(20));
                        passes.fetch_add(1, Ordering::SeqCst);
                        Ok("ok".to_owned())
                    })
                })
            })
            .collect();
        let mut leaders = 0;
        for h in handles {
            let (result, role) = h.join().unwrap();
            assert_eq!(result.unwrap(), "ok");
            if role == Role::Leader {
                leaders += 1;
            }
        }
        let kernel_passes = passes.load(Ordering::SeqCst);
        assert_eq!(leaders as u64, kernel_passes);
        assert!(
            kernel_passes < CLIENTS as u64,
            "16 concurrent requests must coalesce, got {kernel_passes} passes"
        );
    }

    #[test]
    fn follower_sees_a_pass_started_after_its_arrival() {
        // Start a slow pass, then issue a second request mid-pass and
        // record the pass ordinal each caller observed: the second
        // caller must NOT be served by pass 1 (which started before it
        // arrived).
        let c = Arc::new(Coalescer::new());
        let ordinal = Arc::new(AtomicU64::new(0));
        let first = {
            let c = Arc::clone(&c);
            let ordinal = Arc::clone(&ordinal);
            std::thread::spawn(move || {
                c.run("p", || {
                    std::thread::sleep(Duration::from_millis(40));
                    let n = ordinal.fetch_add(1, Ordering::SeqCst) + 1;
                    Ok(format!("pass-{n}"))
                })
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        let (second_result, _) = c.run("p", || {
            let n = ordinal.fetch_add(1, Ordering::SeqCst) + 1;
            Ok(format!("pass-{n}"))
        });
        let (first_result, _) = first.join().unwrap();
        assert_eq!(first_result.unwrap(), "pass-1");
        assert_eq!(
            second_result.unwrap(),
            "pass-2",
            "mid-pass arrival must wait for the next pass"
        );
    }

    #[test]
    fn errors_are_shared_like_results() {
        let c = Coalescer::new();
        let (result, _) = c.run("p", || Err("unknown target".to_owned()));
        assert_eq!(result.unwrap_err(), "unknown target");
    }

    #[test]
    fn projects_coalesce_independently() {
        let c = Coalescer::new();
        let (a, _) = c.run("a", || Ok("a".to_owned()));
        let (b, _) = c.run("b", || Ok("b".to_owned()));
        assert_eq!(a.unwrap(), "a");
        assert_eq!(b.unwrap(), "b");
    }
}
