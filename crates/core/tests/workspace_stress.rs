//! Threaded stress for the workspace kernel: many sessions hammering a
//! mix of projects — exclusive plan/replan/execute writes interleaved
//! with shared status/browse reads — must never corrupt a store.
//!
//! Each worker's per-project effect is deterministic (seeded managers,
//! serialized writes per shard), so beyond "the invariants hold" the
//! suite can assert the stronger property: however the scheduler
//! interleaved the sessions, every project's final database equals the
//! one a serial run of the same per-project operations produces.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hercules::{Hercules, Workspace};
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

const PROJECTS: usize = 4;
const THREADS: usize = 8;
const ROUNDS: usize = 6;

fn ws_with_projects(n: usize) -> Arc<Workspace> {
    let ws = Arc::new(Workspace::in_memory());
    for k in 0..n {
        ws.create_project(
            &format!("proj{k}"),
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            k as u64,
        )
        .unwrap();
    }
    ws
}

/// One deterministic round of project work: round 0 plans + executes
/// the front of the flow, later rounds replan (incremental) and keep
/// executing further targets.
fn round(h: &mut Hercules, r: usize) {
    match r {
        0 => {
            h.plan("signoff_report").unwrap();
            h.execute("netlist").unwrap();
        }
        1 => {
            h.replan("signoff_report").unwrap();
        }
        2 => {
            h.execute("placed_db").unwrap();
        }
        _ => {
            h.replan("signoff_report").unwrap();
        }
    }
}

#[test]
fn interleaved_sessions_preserve_invariants_and_determinism() {
    let ws = ws_with_projects(PROJECTS);
    let turn = Arc::new(AtomicUsize::new(0));

    // Writers: one per project, stepping through the rounds. Readers:
    // the remaining threads continuously running status/rollup-style
    // queries against *every* project, racing the writers.
    std::thread::scope(|scope| {
        for k in 0..PROJECTS {
            let ws = Arc::clone(&ws);
            scope.spawn(move || {
                let project = ws.project(&format!("proj{k}")).unwrap();
                for r in 0..ROUNDS {
                    project.update(|h| round(h, r));
                }
            });
        }
        for _ in PROJECTS..THREADS {
            let ws = Arc::clone(&ws);
            let turn = Arc::clone(&turn);
            scope.spawn(move || {
                // Keep reading until every writer signalled completion
                // via the registry state; bounded by a generous cap so
                // a bug cannot hang the suite.
                for _ in 0..10_000 {
                    let k = turn.fetch_add(1, Ordering::Relaxed) % PROJECTS;
                    let project = ws.project(&format!("proj{k}")).unwrap();
                    project.read(|h| {
                        // Shared-lock queries over both spaces: these
                        // observe *some* consistent prefix of the
                        // writer's rounds.
                        let status = h.status();
                        assert!(status.complete_count() <= status.rows().len());
                        h.db().check_invariants().unwrap();
                    });
                    if ws.names().len() == PROJECTS
                        && (0..PROJECTS).all(|j| {
                            ws.project(&format!("proj{j}"))
                                .unwrap()
                                .read(|h| h.db().runs().len() >= 2)
                        })
                    {
                        break;
                    }
                }
            });
        }
    });

    // Serial oracle: the same rounds on a fresh manager per project.
    for k in 0..PROJECTS {
        let mut oracle = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            k as u64,
        );
        oracle.enable_journal();
        for r in 0..ROUNDS {
            round(&mut oracle, r);
        }
        let project = ws.project(&format!("proj{k}")).unwrap();
        project.read(|h| {
            h.db().check_invariants().unwrap();
            assert_eq!(
                h.db().dump(),
                oracle.db().dump(),
                "proj{k} diverged from its serial oracle"
            );
        });
    }
}

#[test]
fn contended_single_project_serializes_writes() {
    // All threads target ONE project; writes must serialize cleanly and
    // the result must equal the same number of serial planning passes.
    let ws = ws_with_projects(1);
    let project = ws.project("proj0").unwrap();
    project.update(|h| h.plan("signoff_report")).unwrap();

    const WRITERS: usize = 4;
    const REPLANS_EACH: usize = 3;
    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            let project = Arc::clone(&project);
            scope.spawn(move || {
                for _ in 0..REPLANS_EACH {
                    project.update(|h| h.replan("signoff_report")).unwrap();
                }
            });
        }
    });

    let mut oracle = Hercules::new(
        examples::asic_flow(),
        ToolLibrary::standard(),
        Team::of_size(3),
        0,
    );
    oracle.enable_journal();
    oracle.plan("signoff_report").unwrap();
    for _ in 0..WRITERS * REPLANS_EACH {
        oracle.replan("signoff_report").unwrap();
    }
    project.read(|h| {
        h.db().check_invariants().unwrap();
        assert_eq!(h.db().dump(), oracle.db().dump());
    });
}

#[test]
fn persistent_projects_survive_concurrent_rounds_and_gc() {
    let root = std::env::temp_dir().join(format!("schedflow-stress-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    {
        let ws = Arc::new(Workspace::persistent(&root));
        for k in 0..2 {
            ws.create_project(
                &format!("proj{k}"),
                examples::asic_flow(),
                ToolLibrary::standard(),
                Team::of_size(3),
                k as u64,
            )
            .unwrap();
        }
        std::thread::scope(|scope| {
            for k in 0..2 {
                let ws = Arc::clone(&ws);
                scope.spawn(move || {
                    let project = ws.project(&format!("proj{k}")).unwrap();
                    for r in 0..3 {
                        project.update(|h| round(h, r));
                    }
                });
            }
        });
        // Compact everything, then keep working at the new generation.
        for (_, stats) in ws.gc_all().unwrap() {
            assert_eq!(stats.tail_ops_after, 0);
        }
        for k in 0..2 {
            let project = ws.project(&format!("proj{k}")).unwrap();
            project.update(|h| h.replan("signoff_report")).unwrap();
        }
    }
    // Reopen both and compare against the serial oracle.
    let ws = Workspace::persistent(&root);
    for k in 0..2 {
        let project = ws
            .open_project(
                &format!("proj{k}"),
                examples::asic_flow(),
                ToolLibrary::standard(),
                Team::of_size(3),
                k as u64,
            )
            .unwrap();
        let mut oracle = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            k as u64,
        );
        oracle.enable_journal();
        for r in 0..3 {
            round(&mut oracle, r);
        }
        oracle.replan("signoff_report").unwrap();
        project.read(|h| {
            h.db().check_invariants().unwrap();
            assert_eq!(
                h.db().dump(),
                oracle.db().dump(),
                "reopened proj{k} diverged"
            );
        });
    }
    let _ = std::fs::remove_dir_all(&root);
}
