//! Typed identifiers for the five object kinds in the metadata
//! database. Separate newtypes keep the execution space and the
//! schedule space statically distinct: a schedule instance id can never
//! be used where an entity instance id is required.
//!
//! # Generational handles
//!
//! Every id carries a *generation* stamp alongside its dense slot
//! index. The generation is the store generation the id was minted
//! under: compaction (`herc gc`) reloads the database at a fresh
//! generation, so handles held across a compaction become *stale* and
//! fallible mutations reject them with
//! [`MetadataError::StaleHandle`](crate::MetadataError) instead of
//! silently resolving to whatever object reuses the slot.
//!
//! Equality, hashing, and ordering deliberately compare the slot only:
//! an id round-tripped through the journal text format (which carries
//! no generation) still compares equal to the live id, and `BTreeMap` /
//! `HashMap` keyed collections are unaffected by restamping. The
//! generation is an integrity check consulted at mutation boundaries,
//! not part of the identity.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy)]
        pub struct $name {
            pub(crate) slot: u32,
            pub(crate) gen: u32,
        }

        impl $name {
            /// Builds an id for `slot` stamped with generation `gen`.
            pub(crate) fn new(slot: u32, gen: u32) -> Self {
                Self { slot, gen }
            }

            /// The same slot restamped at generation `gen`.
            pub(crate) fn with_gen(self, gen: u32) -> Self {
                Self { slot: self.slot, gen }
            }

            /// Dense index (allocation order) backing this id.
            pub fn index(self) -> usize {
                self.slot as usize
            }

            /// The store generation this handle was minted under.
            /// Handles from generations older than the database's
            /// current generation are stale: they are rejected by
            /// mutating calls after a compaction has reused the slot
            /// space.
            pub fn generation(self) -> u32 {
                self.gen
            }
        }

        // Identity is the slot alone: the generation is a validity
        // stamp, not a distinguishing feature. See the module docs.
        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.slot == other.slot
            }
        }
        impl Eq for $name {}
        impl Hash for $name {
            fn hash<H: Hasher>(&self, state: &mut H) {
                self.slot.hash(state);
            }
        }
        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for $name {
            fn cmp(&self, other: &Self) -> Ordering {
                self.slot.cmp(&other.slot)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.slot)
            }
        }
    };
}

define_id!(
    /// Identifies an [`EntityInstance`](crate::EntityInstance) — Level-3
    /// execution metadata for one version of one entity.
    EntityInstanceId,
    "ei"
);
define_id!(
    /// Identifies a [`ScheduleInstance`](crate::ScheduleInstance) —
    /// Level-3 schedule data for one planned activity version.
    ScheduleInstanceId,
    "sc"
);
define_id!(
    /// Identifies a [`Run`](crate::Run) — one execution of an activity.
    RunId,
    "run"
);
define_id!(
    /// Identifies a [`PlanningSession`](crate::PlanningSession) — the
    /// schedule-space analog of a run ("a Run in the actual flow space
    /// corresponds to a Schedule in the schedule flow space").
    PlanningSessionId,
    "plan"
);
define_id!(
    /// Identifies a [`DataObject`](crate::DataObject) — Level-4 actual
    /// design data.
    DataObjectId,
    "do"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[test]
    fn display_prefixes_distinguish_kinds() {
        assert_eq!(EntityInstanceId::new(3, 0).to_string(), "ei3");
        assert_eq!(ScheduleInstanceId::new(3, 0).to_string(), "sc3");
        assert_eq!(RunId::new(0, 0).to_string(), "run0");
        assert_eq!(PlanningSessionId::new(1, 0).to_string(), "plan1");
        assert_eq!(DataObjectId::new(9, 0).to_string(), "do9");
    }

    #[test]
    fn ids_order_by_allocation() {
        assert!(EntityInstanceId::new(1, 0) < EntityInstanceId::new(2, 0));
        assert_eq!(EntityInstanceId::new(4, 0).index(), 4);
    }

    #[test]
    fn generation_does_not_affect_identity() {
        let old = RunId::new(7, 0);
        let new = old.with_gen(3);
        assert_eq!(old, new);
        assert_eq!(old.cmp(&new), Ordering::Equal);
        let hash = |id: RunId| {
            let mut h = DefaultHasher::new();
            id.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(old), hash(new));
        assert_eq!(new.generation(), 3);
        assert_eq!(new.index(), 7);
        assert_eq!(new.to_string(), "run7");
    }
}
