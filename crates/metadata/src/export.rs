//! Persistence: a line-oriented text dump of the metadata database and
//! its loader.
//!
//! The original Hercules persisted its task database in the Odyssey
//! framework's object store; this module provides the equivalent so a
//! project survives process restarts. The format is deliberately plain
//! (one object per line, hex-encoded payloads) so diffs of two database
//! states are human-readable — handy for the Fig. 5–7 style snapshots.
//!
//! ```text
//! metadata-db v1
//! container entity <class>
//! container schedule <activity> <output-class>
//! data <name-hex> <content-hex>
//! session <millidays>
//! run <activity> <operator> <iteration> <started> [<finished>]
//! entity <class> <created> <creator> [run <idx>] deps <i,j,...> data <idx>
//! sched <activity> <session> <start> <duration> assignees <a,b> [link <idx>]
//! ```
//!
//! Objects are dumped in allocation order, so indices in the file are
//! exactly the dense ids, and loading re-allocates identical ids.

use std::fmt::Write as _;

use schedule::WorkDays;

use crate::database::MetadataDb;
use crate::ids::{DataObjectId, EntityInstanceId, PlanningSessionId, RunId};

/// Errors produced while loading a database dump.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LoadError {
    /// The header line was missing or had the wrong version.
    BadHeader,
    /// A line could not be parsed; carries the 1-based line number and
    /// a description.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The dump was internally inconsistent (e.g. a link to an object
    /// that does not exist).
    Inconsistent(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadHeader => write!(f, "missing or unsupported dump header"),
            LoadError::BadLine { line, message } => write!(f, "line {line}: {message}"),
            LoadError::Inconsistent(m) => write!(f, "inconsistent dump: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    if out.is_empty() {
        out.push('-'); // explicit empty marker keeps the line format fixed
    }
    out
}

pub(crate) fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex payload".to_owned());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| e.to_string()))
        .collect()
}

fn fmt_days(t: WorkDays) -> String {
    format!("{}", (t.days() * 1000.0).round() as i64)
}

fn parse_days(s: &str) -> Result<WorkDays, String> {
    let md: i64 = s.parse().map_err(|e| format!("bad timestamp: {e}"))?;
    WorkDays::try_new(md as f64 / 1000.0).map_err(|e| e.to_string())
}

impl MetadataDb {
    /// Serialises the whole database to the dump format.
    pub fn dump(&self) -> String {
        let mut out = String::from("metadata-db v1\n");
        for class in self.entity_classes() {
            let _ = writeln!(out, "container entity {class}");
        }
        for activity in self.activities() {
            let output = self.output_class_of(activity).unwrap_or("-");
            let _ = writeln!(out, "container schedule {activity} {output}");
        }
        for idx in 0..self.data_count() {
            let d = self.data_object(DataObjectId::new(idx as u32, self.generation));
            let _ = writeln!(
                out,
                "data {} {}",
                hex_encode(d.name().as_bytes()),
                hex_encode(d.content())
            );
        }
        for session in self.planning_sessions() {
            let _ = writeln!(out, "session {}", fmt_days(session.created_at()));
        }
        for run in self.runs() {
            let _ = write!(
                out,
                "run {} {} {} {}",
                run.activity(),
                run.operator(),
                run.iteration(),
                fmt_days(run.started_at())
            );
            if let Some(f) = run.finished_at() {
                let _ = write!(out, " {}", fmt_days(f));
            }
            out.push('\n');
        }
        for idx in 0..self.entity_count() {
            let e = self.entity_instance(EntityInstanceId::new(idx as u32, self.generation));
            let _ = write!(
                out,
                "entity {} {} {}",
                e.class(),
                fmt_days(e.created_at()),
                e.creator()
            );
            if let Some(run) = e.produced_by() {
                let _ = write!(out, " run {}", run.index());
            }
            let deps: Vec<String> = e
                .depends_on()
                .iter()
                .map(|d| d.index().to_string())
                .collect();
            let _ = write!(
                out,
                " deps {} data {}",
                if deps.is_empty() {
                    "-".to_owned()
                } else {
                    deps.join(",")
                },
                e.data().index()
            );
            out.push('\n');
        }
        for idx in 0..self.schedule_count() {
            let sc = self.schedule_instance(crate::ids::ScheduleInstanceId::new(
                idx as u32,
                self.generation,
            ));
            let assignees = if sc.assignees().is_empty() {
                "-".to_owned()
            } else {
                sc.assignees().join(",")
            };
            let _ = write!(
                out,
                "sched {} {} {} {} assignees {}",
                sc.activity(),
                sc.session().index(),
                fmt_days(sc.planned_start()),
                fmt_days(sc.planned_duration()),
                assignees
            );
            if let Some(link) = sc.linked_entity() {
                let _ = write!(out, " link {}", link.index());
            }
            out.push('\n');
        }
        out
    }

    /// Loads a database from a dump produced by
    /// [`dump`](MetadataDb::dump).
    ///
    /// # Errors
    ///
    /// [`LoadError`] on malformed or inconsistent input. Loading a dump
    /// of database `A` always yields a database whose own dump equals
    /// `A`'s (round-trip property, tested).
    pub fn load(text: &str) -> Result<MetadataDb, LoadError> {
        Self::load_at(text, 0)
    }

    /// Like [`load`](MetadataDb::load), but the loaded database — and
    /// every handle it subsequently mints — is stamped at store
    /// `generation`. Compaction reloads the database from its own dump
    /// at a bumped generation so handles minted before the compaction
    /// are detected as stale
    /// ([`MetadataError::StaleHandle`](crate::MetadataError)) instead
    /// of silently resolving against the renumbered slot space.
    ///
    /// # Errors
    ///
    /// [`LoadError`] on malformed or inconsistent input.
    pub fn load_at(text: &str, generation: u32) -> Result<MetadataDb, LoadError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "metadata-db v1")) => {}
            _ => return Err(LoadError::BadHeader),
        }
        let mut db = MetadataDb::new();
        db.generation = generation;
        let bad = |line: usize, message: &str| LoadError::BadLine {
            line: line + 1,
            message: message.to_owned(),
        };
        for (lineno, line) in lines {
            let mut fields = line.split_whitespace();
            let Some(kind) = fields.next() else {
                continue; // blank line
            };
            let rest: Vec<&str> = fields.collect();
            match kind {
                "container" => match rest.as_slice() {
                    ["entity", class] => db.declare_entity_container(class),
                    ["schedule", activity, output] => {
                        db.declare_schedule_container(activity, output)
                    }
                    _ => return Err(bad(lineno, "malformed container line")),
                },
                "data" => {
                    let [name, content] = rest.as_slice() else {
                        return Err(bad(lineno, "malformed data line"));
                    };
                    let name = String::from_utf8(hex_decode(name).map_err(|m| bad(lineno, &m))?)
                        .map_err(|_| bad(lineno, "data name is not UTF-8"))?;
                    let content = hex_decode(content).map_err(|m| bad(lineno, &m))?;
                    db.store_data(name, content);
                }
                "session" => {
                    let [at] = rest.as_slice() else {
                        return Err(bad(lineno, "malformed session line"));
                    };
                    db.begin_planning(parse_days(at).map_err(|m| bad(lineno, &m))?);
                }
                "run" => {
                    let (activity, operator, started, finished) = match rest.as_slice() {
                        [a, o, _iter, s] => (a, o, s, None),
                        [a, o, _iter, s, f] => (a, o, s, Some(*f)),
                        _ => return Err(bad(lineno, "malformed run line")),
                    };
                    let started = parse_days(started).map_err(|m| bad(lineno, &m))?;
                    let run = db
                        .begin_run(activity, operator, started)
                        .map_err(|e| LoadError::Inconsistent(e.to_string()))?;
                    if let Some(f) = finished {
                        let finished = parse_days(f).map_err(|m| bad(lineno, &m))?;
                        db.restore_run_finish(run, finished);
                    }
                }
                "entity" => {
                    // entity <class> <created> <creator> [run <idx>]
                    //        deps <list> data <idx>
                    let mut it = rest.iter();
                    let (Some(class), Some(created), Some(creator)) =
                        (it.next(), it.next(), it.next())
                    else {
                        return Err(bad(lineno, "malformed entity line"));
                    };
                    let created = parse_days(created).map_err(|m| bad(lineno, &m))?;
                    let mut produced_by = None;
                    let mut deps = Vec::new();
                    let mut data = None;
                    let mut next = it.next();
                    while let Some(word) = next {
                        match *word {
                            "run" => {
                                let idx: usize = it
                                    .next()
                                    .ok_or_else(|| bad(lineno, "run needs an index"))?
                                    .parse()
                                    .map_err(|_| bad(lineno, "bad run index"))?;
                                produced_by = Some(RunId::new(idx as u32, db.generation));
                            }
                            "deps" => {
                                let list =
                                    it.next().ok_or_else(|| bad(lineno, "deps needs a list"))?;
                                if *list != "-" {
                                    for part in list.split(',') {
                                        let idx: usize = part
                                            .parse()
                                            .map_err(|_| bad(lineno, "bad dep index"))?;
                                        deps.push(EntityInstanceId::new(idx as u32, db.generation));
                                    }
                                }
                            }
                            "data" => {
                                let idx: usize = it
                                    .next()
                                    .ok_or_else(|| bad(lineno, "data needs an index"))?
                                    .parse()
                                    .map_err(|_| bad(lineno, "bad data index"))?;
                                data = Some(DataObjectId::new(idx as u32, db.generation));
                            }
                            other => {
                                return Err(bad(lineno, &format!("unknown entity field {other:?}")))
                            }
                        }
                        next = it.next();
                    }
                    let data = data.ok_or_else(|| bad(lineno, "entity without data"))?;
                    db.restore_entity(class, created, creator, produced_by, deps, data)
                        .map_err(|e| LoadError::Inconsistent(e.to_string()))?;
                }
                "sched" => {
                    // sched <activity> <session> <start> <duration>
                    //       assignees <list> [link <idx>]
                    let mut it = rest.iter();
                    let (Some(activity), Some(session), Some(start), Some(duration)) =
                        (it.next(), it.next(), it.next(), it.next())
                    else {
                        return Err(bad(lineno, "malformed sched line"));
                    };
                    let session_idx: usize = session
                        .parse()
                        .map_err(|_| bad(lineno, "bad session index"))?;
                    let start = parse_days(start).map_err(|m| bad(lineno, &m))?;
                    let duration = parse_days(duration).map_err(|m| bad(lineno, &m))?;
                    let sc = db
                        .plan_activity(
                            PlanningSessionId::new(session_idx as u32, db.generation),
                            activity,
                            start,
                            duration,
                        )
                        .map_err(|e| LoadError::Inconsistent(e.to_string()))?;
                    let mut next = it.next();
                    while let Some(word) = next {
                        match *word {
                            "assignees" => {
                                let list = it
                                    .next()
                                    .ok_or_else(|| bad(lineno, "assignees needs a list"))?;
                                if *list != "-" {
                                    for designer in list.split(',') {
                                        db.assign(sc, designer)
                                            .map_err(|e| LoadError::Inconsistent(e.to_string()))?;
                                    }
                                }
                            }
                            "link" => {
                                let idx: usize = it
                                    .next()
                                    .ok_or_else(|| bad(lineno, "link needs an index"))?
                                    .parse()
                                    .map_err(|_| bad(lineno, "bad link index"))?;
                                db.link_completion(
                                    sc,
                                    EntityInstanceId::new(idx as u32, db.generation),
                                )
                                .map_err(|e| LoadError::Inconsistent(e.to_string()))?;
                            }
                            other => {
                                return Err(bad(lineno, &format!("unknown sched field {other:?}")))
                            }
                        }
                        next = it.next();
                    }
                }
                other => return Err(bad(lineno, &format!("unknown record kind {other:?}"))),
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;

    fn populated() -> MetadataDb {
        let mut db = MetadataDb::for_schema(&examples::circuit_design());
        let session = db.begin_planning(WorkDays::ZERO);
        let sc = db
            .plan_activity(session, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        db.assign(sc, "alice").unwrap();
        db.plan_activity(session, "Simulate", WorkDays::new(2.0), WorkDays::new(3.0))
            .unwrap();
        let stim = db.store_data("vec.stim", b"0101".to_vec());
        db.supply_input("stimuli", "bob", WorkDays::ZERO, stim)
            .unwrap();
        let run = db.begin_run("Create", "alice", WorkDays::new(0.5)).unwrap();
        let data = db.store_data("v1.net", b"module".to_vec());
        let e = db
            .finish_run(run, "netlist", data, WorkDays::new(1.5), &[])
            .unwrap();
        db.link_completion(sc, e).unwrap();
        // An unfinished run, to exercise the optional finish field.
        db.begin_run("Simulate", "bob", WorkDays::new(1.5)).unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = populated();
        let dump = db.dump();
        let loaded = MetadataDb::load(&dump).unwrap();
        assert_eq!(loaded.dump(), dump);
        // Spot checks beyond the textual identity.
        assert_eq!(loaded.entity_count(), db.entity_count());
        assert_eq!(loaded.schedule_count(), db.schedule_count());
        assert_eq!(loaded.runs().len(), db.runs().len());
        assert_eq!(
            loaded.current_plan("Create").unwrap().linked_entity(),
            db.current_plan("Create").unwrap().linked_entity()
        );
        assert_eq!(loaded.actual_start("Create"), db.actual_start("Create"));
        assert_eq!(
            loaded.data_object(DataObjectId::new(1, 0)).content(),
            db.data_object(DataObjectId::new(1, 0)).content()
        );
    }

    #[test]
    fn empty_db_roundtrips() {
        let db = MetadataDb::for_schema(&examples::circuit_design());
        let loaded = MetadataDb::load(&db.dump()).unwrap();
        assert_eq!(loaded.dump(), db.dump());
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(MetadataDb::load("").unwrap_err(), LoadError::BadHeader);
        assert_eq!(
            MetadataDb::load("metadata-db v9\n").unwrap_err(),
            LoadError::BadHeader
        );
    }

    #[test]
    fn bad_lines_reported_with_numbers() {
        let err = MetadataDb::load("metadata-db v1\nnonsense here\n").unwrap_err();
        match err {
            LoadError::BadLine { line, .. } => assert_eq!(line, 2),
            other => panic!("expected BadLine, got {other}"),
        }
    }

    #[test]
    fn inconsistent_reference_rejected() {
        // A sched line pointing at a session that does not exist.
        let text = "metadata-db v1\ncontainer schedule Create netlist\nsched Create 5 0 1000 assignees -\n";
        assert!(matches!(
            MetadataDb::load(text),
            Err(LoadError::Inconsistent(_))
        ));
    }

    #[test]
    fn hex_roundtrip() {
        for payload in [&b""[..], b"\x00\xff", b"hello world"] {
            assert_eq!(hex_decode(&hex_encode(payload)).unwrap(), payload);
        }
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn dump_is_humane() {
        let db = populated();
        let dump = db.dump();
        assert!(dump.contains("container schedule Create netlist"));
        assert!(dump.contains("run Create alice 1"));
        assert!(dump.lines().count() > 8);
    }
}
