//! Property suite for journal compaction: on chaos-seeded sessions —
//! random schemas, fault plans, and injected mid-op crashes — the
//! snapshot + journal-tail decomposition used by the persistent store
//! must be equivalent to full journal replay, and the compacted
//! emission must be a faithful, no-larger redo journal.
//!
//! For every seed the suite checks three properties against the raw
//! write-ahead journal of a full plan → execute → replan session:
//!
//! 1. **Full replay is sound** — `MetadataDb::recover` of the raw
//!    journal passes `check_invariants`.
//! 2. **Snapshot + tail ≡ full replay** — for several split points,
//!    replaying a prefix, dumping it as a snapshot, reloading the
//!    snapshot at a *different* generation, and redoing the remaining
//!    tail yields a byte-identical dump. This is exactly what
//!    `PersistentStore::open` does after a compaction.
//! 3. **Compaction round-trips and shrinks** — `Journal::compacted_from`
//!    of the recovered database replays back to the same dump and is
//!    never longer than the raw journal (strictly shorter whenever a
//!    crash left a torn tail op).

use hercules::Hercules;
use metadata::{Journal, MetadataDb};
use schema::examples;
use simtools::rng::{mix, SplitMix64};
use simtools::workload::Team;
use simtools::{FaultPlan, ToolLibrary};

const SEEDS: u64 = 64;

/// Drives one chaos-style session and returns its raw journal, the
/// compacted journal emitted from the *live* database (what `herc gc`
/// snapshots), the live database's dump, and whether an injected crash
/// actually fired (leaving a torn tail op in the raw journal).
fn session_journal(seed: u64) -> (Journal, Journal, String, bool) {
    let mut rng = SplitMix64::new(mix(&[seed, 0xC0_4AC7]));
    let (schema, target) = match rng.next_below(4) {
        0 => (examples::circuit_design(), "performance".to_owned()),
        1 => (examples::asic_flow(), "signoff_report".to_owned()),
        2 => {
            let stages = 3 + rng.next_below(5) as usize;
            (examples::pipeline(stages), format!("d{stages}"))
        }
        _ => {
            let layers = 2 + rng.next_below(2) as usize;
            let width = 2 + rng.next_below(2) as usize;
            (examples::layered(layers, width, 2), "merged".to_owned())
        }
    };
    let team = Team::of_size(1 + rng.next_below(3) as usize);
    let mut h = Hercules::new(schema, ToolLibrary::standard(), team, rng.next_u64());
    h.enable_journal();
    h.set_fault_plan(FaultPlan::seeded(rng.next_u64()).with_persistent_rate(0.25));

    h.plan(&target).expect("chaos scope plans");
    let _ = h.execute(&target);
    let _ = h.replan(&target);

    let mut crashed = false;
    if seed.is_multiple_of(3) {
        // Arm a crash a few fallible mutations into a follow-up
        // execution pass, then abandon the dead session — its journal
        // keeps the torn op (appended, never applied).
        h.inject_db_crash_after(rng.next_below(6) as u32);
        let _ = h.execute(&target);
        crashed = h.db().has_crashed();
    }
    let compacted_live = Journal::compacted_from(h.db());
    let live_dump = h.db().dump();
    let journal = h.take_journal().expect("journal enabled");
    (journal, compacted_live, live_dump, crashed)
}

/// The journal's ops after the first `skip`, rebuilt through the text
/// form — the same round trip the persistent store's tail file takes.
fn tail_of(journal: &Journal, skip: usize) -> Journal {
    let text = journal.to_text();
    let mut lines = text.lines();
    let mut out = String::from(lines.next().expect("journal header"));
    out.push('\n');
    for line in lines.skip(skip) {
        out.push_str(line);
        out.push('\n');
    }
    Journal::parse(&out).expect("tail text parses")
}

#[test]
fn snapshot_plus_tail_replay_equals_full_replay() {
    let mut torn_sessions = 0usize;
    let mut shrunk_sessions = 0usize;

    for seed in 0..SEEDS {
        let (journal, compacted_live, live_dump, crashed) = session_journal(seed);
        let n = journal.len();
        assert!(n > 0, "seed {seed}: session recorded no ops");

        // Property 1: full redo replay is sound.
        let full = MetadataDb::recover(&journal)
            .unwrap_or_else(|e| panic!("seed {seed}: full replay failed: {e}"));
        full.check_invariants()
            .unwrap_or_else(|v| panic!("seed {seed}: invariants violated: {v:?}"));
        let full_dump = full.dump();

        // Property 2: snapshot at an arbitrary split + tail redo ≡
        // full replay, across a generation bump (as after `herc gc`).
        let mut splits = vec![n / 3, n / 2, 2 * n / 3];
        splits.sort_unstable();
        splits.dedup();
        for split in splits.into_iter().filter(|&s| s > 0 && s < n) {
            let snap = MetadataDb::recover(&journal.prefix(split))
                .unwrap_or_else(|e| panic!("seed {seed}: prefix({split}) replay failed: {e}"));
            let mut reopened = MetadataDb::load_at(&snap.dump(), 7)
                .unwrap_or_else(|e| panic!("seed {seed}: snapshot reload failed: {e}"));
            reopened
                .apply_journal(&tail_of(&journal, split))
                .unwrap_or_else(|e| panic!("seed {seed}: tail redo at {split} failed: {e}"));
            assert_eq!(
                reopened.dump(),
                full_dump,
                "seed {seed}: snapshot@{split} + tail diverged from full replay"
            );
        }

        // Property 3a: compacting the fully recovered database
        // round-trips byte-for-byte.
        let compacted_full = Journal::compacted_from(&full);
        let recovered = MetadataDb::recover(&compacted_full)
            .unwrap_or_else(|e| panic!("seed {seed}: compacted replay failed: {e}"));
        assert_eq!(
            recovered.dump(),
            full_dump,
            "seed {seed}: compacted journal diverged from its source"
        );

        // Property 3b: compacting the *live* (possibly crashed)
        // database — what `herc gc` snapshots — round-trips to the
        // live dump, never grows, and strictly drops torn tail ops.
        let live_recovered = MetadataDb::recover(&compacted_live)
            .unwrap_or_else(|e| panic!("seed {seed}: live-compacted replay failed: {e}"));
        live_recovered
            .check_invariants()
            .unwrap_or_else(|v| panic!("seed {seed}: live-compacted invariants: {v:?}"));
        assert_eq!(
            live_recovered.dump(),
            live_dump,
            "seed {seed}: live-compacted journal diverged from the live session"
        );
        assert!(
            compacted_live.len() <= n,
            "seed {seed}: compaction grew the journal ({} > {n})",
            compacted_live.len()
        );
        if crashed {
            torn_sessions += 1;
            assert!(
                compacted_live.len() < n,
                "seed {seed}: torn tail survived compaction ({} vs {n} ops)",
                compacted_live.len()
            );
        }
        if compacted_live.len() < n {
            shrunk_sessions += 1;
        }
    }

    // The seed schedule is built to exercise the interesting corner:
    // some sessions must actually crash mid-op, and compaction must
    // actually shrink at least those.
    assert!(
        torn_sessions >= 4,
        "only {torn_sessions} sessions crashed; seed schedule too tame"
    );
    assert!(
        shrunk_sessions >= torn_sessions,
        "compaction shrank {shrunk_sessions} sessions but {torn_sessions} had torn tails"
    );
}
