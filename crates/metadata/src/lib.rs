//! Levels 3 and 4 of the four-level flow-management architecture: the
//! design-metadata database.
//!
//! Level 3 "describes the metadata objects created from the execution of
//! a flow"; Level 4 "depicts the actual design data generated from the
//! execution of a flow" (Johnson & Brockman, §II). The paper's key move
//! is to store *schedule* data at Level 3 too, mirroring the execution
//! objects:
//!
//! ```text
//! execution space          schedule space
//! ---------------          --------------
//! Run                 ↔    Schedule (planning session)
//! EntityInstance      ↔    ScheduleInstance
//! instance dependency ↔    schedule dependency
//! ```
//!
//! "Level 3 design metadata describes when an activity *is* performed
//! and by whom; Level 3 schedule data ought to describe when an activity
//! *should be* performed and which person or persons are assigned the
//! task" (§III).
//!
//! [`MetadataDb`] holds both spaces plus the Level-4
//! [`DataObject`]s, and the *links* between a schedule instance and the
//! entity instance the designer declares to be the activity's final
//! result. Queries over both spaces (§IV-B) live in [`query`].
//!
//! # Example
//!
//! ```
//! use metadata::MetadataDb;
//! use schema::examples;
//! use schedule::WorkDays;
//!
//! # fn main() -> Result<(), metadata::MetadataError> {
//! let schema = examples::circuit_design();
//! let mut db = MetadataDb::for_schema(&schema);
//! // Containers exist for every entity class and every activity.
//! assert!(db.entity_container("netlist").is_some());
//! assert!(db.schedule_container("Simulate").is_some());
//!
//! // Plan: one schedule instance for Create.
//! let session = db.begin_planning(WorkDays::ZERO);
//! let sc = db.plan_activity(session, "Create", WorkDays::ZERO, WorkDays::new(2.0))?;
//!
//! // Execute: a run of Create producing a netlist instance.
//! let run = db.begin_run("Create", "alice", WorkDays::ZERO)?;
//! let data = db.store_data("counter.net", b"module counter".to_vec());
//! let inst = db.finish_run(run, "netlist", data, WorkDays::new(1.5), &[])?;
//!
//! // Designer declares the task complete: link plan ↔ result.
//! db.link_completion(sc, inst)?;
//! assert_eq!(db.schedule_instance(sc).linked_entity(), Some(inst));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod database;
mod error;
mod ids;
mod objects;

pub mod export;
pub mod framing;
pub mod fsck;
pub mod journal;
pub mod query;
pub mod store;

pub use database::MetadataDb;
pub use error::MetadataError;
pub use export::LoadError;
pub use framing::Framing;
pub use ids::{DataObjectId, EntityInstanceId, PlanningSessionId, RunId, ScheduleInstanceId};
pub use journal::{Journal, JournalOp};
pub use objects::{DataObject, EntityInstance, PlanningSession, Run, RunState, ScheduleInstance};
pub use store::{
    ArenaStore, CompactionStats, CorruptionKind, CorruptionReport, PersistentStore, Store,
    StoreError,
};
