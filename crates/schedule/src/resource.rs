use std::collections::HashMap;
use std::fmt;

use crate::error::ScheduleError;

/// Stable identifier of a resource in a [`ResourcePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(usize);

impl ResourceId {
    /// Dense index of the resource (insertion order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A named renewable resource with an integral capacity — designers,
/// workstations, simulator licenses.
///
/// The paper's Level-3 schedule data records "the resources needed" per
/// activity; the pool is what those demands draw from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    name: String,
    capacity: u32,
}

impl Resource {
    /// Creates a resource.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a resource nobody can use is a
    /// configuration error.
    pub fn new(name: impl Into<String>, capacity: u32) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        Resource {
            name: name.into(),
            capacity,
        }
    }

    /// The resource name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Units available at any instant.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (cap {})", self.name, self.capacity)
    }
}

/// A collection of resources addressed by name.
///
/// # Example
///
/// ```
/// use schedule::{Resource, ResourcePool};
///
/// let mut pool = ResourcePool::new();
/// pool.add(Resource::new("designer", 3));
/// assert_eq!(pool.capacity_of("designer"), Some(3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourcePool {
    resources: Vec<Resource>,
    by_name: HashMap<String, ResourceId>,
}

impl ResourcePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a resource, replacing any with the same name.
    pub fn add(&mut self, resource: Resource) -> ResourceId {
        if let Some(&id) = self.by_name.get(resource.name()) {
            self.resources[id.0] = resource;
            return id;
        }
        let id = ResourceId(self.resources.len());
        self.by_name.insert(resource.name().to_owned(), id);
        self.resources.push(resource);
        id
    }

    /// Looks up a resource id by name.
    pub fn id_of(&self, name: &str) -> Option<ResourceId> {
        self.by_name.get(name).copied()
    }

    /// Capacity of the named resource, if present.
    pub fn capacity_of(&self, name: &str) -> Option<u32> {
        self.id_of(name).map(|id| self.resources[id.0].capacity())
    }

    /// The resource behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this pool.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0]
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Returns `true` if the pool has no resources.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Iterates over all resources in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, &Resource)> + '_ {
        self.resources
            .iter()
            .enumerate()
            .map(|(i, r)| (ResourceId(i), r))
    }

    /// Validates that `demand` units of `name` can ever be satisfied.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::UnknownResource`] if `name` is absent, or
    /// [`ScheduleError::InfeasibleDemand`] via the caller when demand
    /// exceeds capacity (the caller supplies the activity id, so this
    /// helper just reports the comparison).
    pub fn check_demand(&self, name: &str, demand: u32) -> Result<bool, ScheduleError> {
        match self.capacity_of(name) {
            None => Err(ScheduleError::UnknownResource(name.to_owned())),
            Some(cap) => Ok(demand <= cap),
        }
    }
}

impl FromIterator<Resource> for ResourcePool {
    fn from_iter<I: IntoIterator<Item = Resource>>(iter: I) -> Self {
        let mut pool = ResourcePool::new();
        for r in iter {
            pool.add(r);
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut pool = ResourcePool::new();
        let id = pool.add(Resource::new("designer", 2));
        assert_eq!(pool.id_of("designer"), Some(id));
        assert_eq!(pool.capacity_of("designer"), Some(2));
        assert_eq!(pool.resource(id).name(), "designer");
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn replace_same_name() {
        let mut pool = ResourcePool::new();
        let id1 = pool.add(Resource::new("cpu", 4));
        let id2 = pool.add(Resource::new("cpu", 8));
        assert_eq!(id1, id2);
        assert_eq!(pool.capacity_of("cpu"), Some(8));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn from_iterator() {
        let pool: ResourcePool = [Resource::new("a", 1), Resource::new("b", 2)]
            .into_iter()
            .collect();
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
        assert_eq!(pool.iter().count(), 2);
    }

    #[test]
    fn check_demand_paths() {
        let pool: ResourcePool = [Resource::new("lic", 2)].into_iter().collect();
        assert_eq!(pool.check_demand("lic", 2), Ok(true));
        assert_eq!(pool.check_demand("lic", 3), Ok(false));
        assert!(matches!(
            pool.check_demand("ghost", 1),
            Err(ScheduleError::UnknownResource(_))
        ));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Resource::new("x", 0);
    }

    #[test]
    fn display() {
        assert_eq!(Resource::new("fpga", 3).to_string(), "fpga (cap 3)");
        assert_eq!(ResourceId(2).to_string(), "r2");
    }
}
