use std::collections::HashSet;

use crate::dag::{Dag, NodeId};
use crate::error::GraphError;

/// The longest weighted path through a DAG.
///
/// For schedule networks this is the *critical path*: the chain of
/// activities whose total duration determines the project finish date.
#[derive(Debug, Clone, PartialEq)]
pub struct LongestPath {
    /// Nodes along the path, in dependency order.
    pub nodes: Vec<NodeId>,
    /// Total weight (e.g. duration) accumulated along the path.
    pub length: f64,
}

/// Shape statistics of a flow graph, useful for characterising workloads
/// in benchmarks and reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of primary inputs (in-degree 0).
    pub sources: usize,
    /// Number of final outputs (out-degree 0).
    pub sinks: usize,
    /// Length (in edges) of the longest chain.
    pub depth: usize,
    /// Maximum number of nodes sharing a level — the flow's width.
    pub width: usize,
}

impl<N, E> Dag<N, E> {
    /// Computes the *input cone* of `roots`: every node that some root
    /// transitively depends on, including the roots themselves.
    ///
    /// In Hercules terms this is "extracting a task tree that covers the
    /// scope of the intended task": to produce a target datum one must
    /// run every activity in its input cone.
    ///
    /// # Panics
    ///
    /// Panics if any root is not a node of this graph.
    pub fn input_cone(&self, roots: &[NodeId]) -> HashSet<NodeId> {
        let mut seen = HashSet::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for &root in roots {
            assert!(self.contains_node(root), "unknown root {root}");
            if seen.insert(root) {
                stack.push(root);
            }
        }
        while let Some(v) = stack.pop() {
            for p in self.predecessors(v) {
                if seen.insert(p) {
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// Computes the *output cone* of `roots`: every node that
    /// transitively depends on some root, including the roots.
    ///
    /// This is the set of downstream activities a schedule slip
    /// propagates to.
    ///
    /// # Panics
    ///
    /// Panics if any root is not a node of this graph.
    pub fn output_cone(&self, roots: &[NodeId]) -> HashSet<NodeId> {
        let mut seen = HashSet::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for &root in roots {
            assert!(self.contains_node(root), "unknown root {root}");
            if seen.insert(root) {
                stack.push(root);
            }
        }
        while let Some(v) = stack.pop() {
            for s in self.successors(v) {
                if seen.insert(s) {
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Assigns each node its *level*: the length in edges of the longest
    /// path from any source to the node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CycleDetected`] if the graph contains a
    /// cycle.
    pub fn levels(&self) -> Result<Vec<usize>, GraphError> {
        let order = self.topological_order()?;
        let mut level = vec![0usize; self.node_count()];
        for &v in &order {
            for s in self.successors(v) {
                if level[v.index()] + 1 > level[s.index()] {
                    level[s.index()] = level[v.index()] + 1;
                }
            }
        }
        Ok(level)
    }

    /// Finds the longest path through the DAG where each node
    /// contributes `node_weight(node)` units of length.
    ///
    /// Returns `None` for an empty graph. With durations as weights this
    /// is the project's critical path.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CycleDetected`] if the graph contains a
    /// cycle.
    ///
    /// # Example
    ///
    /// ```
    /// use flowgraph::Dag;
    ///
    /// # fn main() -> Result<(), flowgraph::GraphError> {
    /// let mut g = Dag::new();
    /// let a = g.add_node(2.0);
    /// let b = g.add_node(10.0);
    /// let c = g.add_node(1.0);
    /// g.add_edge(a, b, ())?;
    /// g.add_edge(a, c, ())?;
    /// let path = g.longest_path_by(|w| *w)?.expect("nonempty");
    /// assert_eq!(path.nodes, vec![a, b]);
    /// assert_eq!(path.length, 12.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn longest_path_by<F>(&self, mut weight: F) -> Result<Option<LongestPath>, GraphError>
    where
        F: FnMut(&N) -> f64,
    {
        if self.is_empty() {
            return Ok(None);
        }
        let order = self.topological_order()?;
        let mut dist = vec![f64::NEG_INFINITY; self.node_count()];
        let mut pred: Vec<Option<NodeId>> = vec![None; self.node_count()];
        for &v in &order {
            let w = weight(self.node_weight(v).expect("node exists"));
            if dist[v.index()] == f64::NEG_INFINITY {
                dist[v.index()] = w;
            }
            for s in self.successors(v) {
                let sw = weight(self.node_weight(s).expect("node exists"));
                let cand = dist[v.index()] + sw;
                if cand > dist[s.index()] {
                    dist[s.index()] = cand;
                    pred[s.index()] = Some(v);
                }
            }
        }
        let end = self
            .node_ids()
            .max_by(|&x, &y| dist[x.index()].total_cmp(&dist[y.index()]))
            .expect("nonempty graph");
        let mut nodes = vec![end];
        while let Some(p) = pred[nodes.last().expect("nonempty").index()] {
            nodes.push(p);
        }
        nodes.reverse();
        Ok(Some(LongestPath {
            length: dist[end.index()],
            nodes,
        }))
    }

    /// Computes the transitive reduction: the set of edges `(u, v)` such
    /// that no alternative path `u -> ... -> v` exists.
    ///
    /// Redundant dependencies are common when flows are assembled from
    /// overlapping task trees; the reduction is what a Gantt chart's
    /// dependency arrows should draw.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CycleDetected`] if the graph contains a
    /// cycle.
    pub fn transitive_reduction(&self) -> Result<Vec<(NodeId, NodeId)>, GraphError> {
        let order = self.topological_order()?;
        let mut rank = vec![0usize; self.node_count()];
        for (i, &v) in order.iter().enumerate() {
            rank[v.index()] = i;
        }
        let mut kept = Vec::new();
        for v in self.node_ids() {
            let mut succs: Vec<NodeId> = {
                let set: HashSet<NodeId> = self.successors(v).collect();
                set.into_iter().collect()
            };
            succs.sort_by_key(|s| rank[s.index()]);
            // A direct edge v->s is redundant iff s is reachable from an
            // earlier kept successor of v.
            let mut reachable: HashSet<NodeId> = HashSet::new();
            for s in succs {
                if reachable.contains(&s) {
                    continue;
                }
                kept.push((v, s));
                // Add everything reachable from s.
                let mut stack = vec![s];
                while let Some(x) = stack.pop() {
                    if reachable.insert(x) {
                        stack.extend(self.successors(x));
                    }
                }
            }
        }
        Ok(kept)
    }

    /// Summarises the graph's shape.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CycleDetected`] if the graph contains a
    /// cycle.
    pub fn stats(&self) -> Result<GraphStats, GraphError> {
        let levels = self.levels()?;
        let depth = levels.iter().copied().max().unwrap_or(0);
        let mut per_level = vec![0usize; depth + 1];
        for &l in &levels {
            per_level[l] += 1;
        }
        Ok(GraphStats {
            nodes: self.node_count(),
            edges: self.edge_count(),
            sources: self.sources().len(),
            sinks: self.sinks().len(),
            depth,
            width: per_level.iter().copied().max().unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dag<f64, ()>, [NodeId; 4]) {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(5.0);
        let c = g.add_node(2.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, c, ()).unwrap();
        g.add_edge(b, d, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn input_cone_of_sink_is_everything() {
        let (g, [a, b, c, d]) = diamond();
        let cone = g.input_cone(&[d]);
        assert_eq!(cone, [a, b, c, d].into_iter().collect());
    }

    #[test]
    fn input_cone_of_middle() {
        let (g, [a, b, ..]) = diamond();
        assert_eq!(g.input_cone(&[b]), [a, b].into_iter().collect());
    }

    #[test]
    fn output_cone_mirrors_input_cone() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.output_cone(&[a]), [a, b, c, d].into_iter().collect());
        assert_eq!(g.output_cone(&[c]), [c, d].into_iter().collect());
        assert_eq!(g.output_cone(&[d]), [d].into_iter().collect());
    }

    #[test]
    fn levels_longest_from_source() {
        let (mut g, [a, _b, _c, d]) = diamond();
        // Add a longer side path a -> x -> y -> d.
        let x = g.add_node(0.0);
        let y = g.add_node(0.0);
        g.add_edge(a, x, ()).unwrap();
        g.add_edge(x, y, ()).unwrap();
        g.add_edge(y, d, ()).unwrap();
        let levels = g.levels().unwrap();
        assert_eq!(levels[a.index()], 0);
        assert_eq!(levels[d.index()], 3);
    }

    #[test]
    fn longest_path_picks_heavier_branch() {
        let (g, [a, b, _c, d]) = diamond();
        let path = g.longest_path_by(|w| *w).unwrap().unwrap();
        assert_eq!(path.nodes, vec![a, b, d]);
        assert_eq!(path.length, 7.0);
    }

    #[test]
    fn longest_path_empty_graph() {
        let g: Dag<f64, ()> = Dag::new();
        assert!(g.longest_path_by(|w| *w).unwrap().is_none());
    }

    #[test]
    fn longest_path_single_node() {
        let mut g: Dag<f64, ()> = Dag::new();
        let a = g.add_node(3.5);
        let p = g.longest_path_by(|w| *w).unwrap().unwrap();
        assert_eq!(p.nodes, vec![a]);
        assert_eq!(p.length, 3.5);
    }

    #[test]
    fn transitive_reduction_drops_shortcut() {
        let mut g: Dag<(), ()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(a, c, ()).unwrap(); // redundant shortcut
        let kept = g.transitive_reduction().unwrap();
        assert!(kept.contains(&(a, b)));
        assert!(kept.contains(&(b, c)));
        assert!(!kept.contains(&(a, c)));
    }

    #[test]
    fn transitive_reduction_keeps_diamond() {
        let (g, [a, b, c, d]) = diamond();
        let kept = g.transitive_reduction().unwrap();
        assert_eq!(kept.len(), 4);
        assert!(kept.contains(&(a, b)));
        assert!(kept.contains(&(c, d)));
        let _ = (b, c);
    }

    #[test]
    fn stats_shape() {
        let (g, _) = diamond();
        let s = g.stats().unwrap();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.sources, 1);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.depth, 2);
        assert_eq!(s.width, 2);
    }

    #[test]
    fn stats_empty() {
        let g: Dag<(), ()> = Dag::new();
        let s = g.stats().unwrap();
        assert_eq!(s.nodes, 0);
        assert_eq!(s.width, 0);
    }
}
