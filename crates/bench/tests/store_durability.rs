//! The B15 acceptance gate: checksummed (v2) record framing must cost
//! no more than **1.2×** the un-checksummed (v1) framing on both the
//! journal-append path and the snapshot-load path.
//!
//! Both stores run over `MemVfs`, so the comparison isolates the CPU
//! cost of the CRC32 encode/verify — exactly what the framing change
//! added — from disk and fsync noise. Ratios, not wall-clock floors,
//! keep the gate host-independent.

use bench::kernels;

// The timing gate and its session driver only compile in release mode
// (see `checksum_overhead_within_1_2x_on_append_and_open` below).
#[cfg(not(debug_assertions))]
use {
    metadata::{Framing, MetadataDb, PersistentStore, Store},
    schedule::WorkDays,
    schema::examples,
    simtools::vfs::{MemVfs, Vfs},
    std::path::Path,
    std::sync::Arc,
    std::time::Instant,
};

/// The kernel itself must run and produce ordered statistics for every
/// framing/path combination (this is what the aggregated report and
/// `bench_compare` consume).
#[test]
fn kernel_covers_both_framings_and_paths() {
    let records = kernels::store_durability::run(true);
    for required in ["append_v1/64", "append_v2/64", "open_v1/64", "open_v2/64"] {
        let r = records
            .iter()
            .find(|r| r.bench == required)
            .unwrap_or_else(|| panic!("bench '{required}' produced no record"));
        assert!(r.stats.min_ns > 0.0, "{required}: non-positive min");
        assert!(
            r.stats.min_ns <= r.stats.median_ns && r.stats.median_ns <= r.stats.p95_ns,
            "{required}: stats out of order"
        );
    }
}

/// A scripted session of `runs` tool cycles against a store created
/// with the given framing; returns the filesystem it lives on.
#[cfg(not(debug_assertions))]
fn session(runs: usize, framing: Framing) -> Arc<MemVfs> {
    let mem = MemVfs::new();
    let db = MetadataDb::for_schema(&examples::circuit_design());
    let mut store = PersistentStore::create_with_framing(
        mem.clone() as Arc<dyn Vfs>,
        Path::new("/proj"),
        db,
        framing,
    )
    .expect("create on MemVfs");
    let planning = store.begin_planning(WorkDays::ZERO);
    let plan = store
        .plan_activity(planning, "Create", WorkDays::ZERO, WorkDays::new(1.0))
        .expect("known activity");
    store.assign(plan, "alice").expect("live plan");
    let mut t = 0.0;
    for i in 0..runs {
        let run = store
            .begin_run("Create", "alice", WorkDays::new(t))
            .expect("known activity");
        let data = store.store_data("n.net", vec![(i & 0xFF) as u8; 16]);
        t += 0.25;
        store
            .finish_run(run, "netlist", data, WorkDays::new(t), &[])
            .expect("valid finish");
        t += 0.01;
    }
    mem
}

#[cfg(not(debug_assertions))]
fn best_secs(tries: usize, mut f: impl FnMut()) -> f64 {
    (0..tries)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Timing gates only make sense on optimized builds; a debug build
/// would measure unoptimized CRC table lookups against unoptimized
/// everything-else and say nothing about the shipped binary.
#[cfg(not(debug_assertions))]
#[test]
fn checksum_overhead_within_1_2x_on_append_and_open() {
    const RUNS: usize = 256;
    const TRIES: usize = 9;

    // Warm both paths once.
    session(RUNS, Framing::V1);
    session(RUNS, Framing::V2);

    let append_v1 = best_secs(TRIES, || drop(session(RUNS, Framing::V1)));
    let append_v2 = best_secs(TRIES, || drop(session(RUNS, Framing::V2)));
    let append_ratio = append_v2 / append_v1;

    let mem_v1 = session(RUNS, Framing::V1);
    let mem_v2 = session(RUNS, Framing::V2);
    let open = |mem: &Arc<MemVfs>| {
        let store = PersistentStore::open_on(mem.clone() as Arc<dyn Vfs>, Path::new("/proj"))
            .expect("own store reopens");
        assert!(store.db().schedule_count() > 0);
    };
    let open_v1 = best_secs(TRIES, || open(&mem_v1));
    let open_v2 = best_secs(TRIES, || open(&mem_v2));
    let open_ratio = open_v2 / open_v1;

    eprintln!(
        "store_durability: append v1 {:.3} ms, v2 {:.3} ms ({append_ratio:.2}x); \
         open v1 {:.3} ms, v2 {:.3} ms ({open_ratio:.2}x)",
        append_v1 * 1e3,
        append_v2 * 1e3,
        open_v1 * 1e3,
        open_v2 * 1e3
    );
    assert!(
        append_ratio <= 1.2,
        "checksummed append is {append_ratio:.2}x the plain framing \
         (gate: 1.2x); the CRC path has regressed"
    );
    assert!(
        open_ratio <= 1.2,
        "checksummed open is {open_ratio:.2}x the plain framing \
         (gate: 1.2x); snapshot/tail verification has regressed"
    );
}
