//! B13 — workspace server under load: mixed status/replan traffic from
//! many concurrent HTTP clients against a served multi-project
//! workspace, swept over worker-pool sizes.
//!
//! The kernel is B12 pushed through the wire: every request burns the
//! same simulated per-session tool/commit latency under its project's
//! lock, so throughput scaling from 1 to 4 workers measures whether
//! the server's worker pool actually overlaps independent projects'
//! sessions (and whether admission control adds serial bottlenecks of
//! its own). Concurrent replans against the same project coalesce into
//! shared kernel passes (`serve::Coalescer`), which is what keeps the
//! write-heavy mix from collapsing to `requests × latency`.
//!
//! Emitted records per worker count `W`:
//!
//! * `throughput/workers/W` — whole-batch sampling via the suite; the
//!   per-element median is ns per request.
//! * `latency/workers/W` — per-request wall times from one dedicated
//!   batch: median = p50, plus p95/min/mean.
//! * `latency_p99/workers/W` — the p99 tail, carried in a record of
//!   its own (all stats fields hold p99) so the JSON report keeps the
//!   full percentile triple per worker count.
//!
//! The acceptance gate — ≥2× request throughput from 1 → 4 workers and
//! fewer replan kernel passes than replan requests — lives in
//! `tests/serve_scaling.rs` and the `serve` CI stage.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use harness::bench::{Record, Stats};
use hercules::Workspace;
use schema::examples;
use serve::{Client, Server, ServerConfig};
use simtools::workload::Team;
use simtools::ToolLibrary;

/// Projects behind the server.
pub const PROJECTS: usize = 8;

/// Concurrent client sessions per batch. Kept under the server's
/// default accept-queue capacity so the kernel measures service time,
/// not 429 backpressure (backpressure has its own tests).
pub const CLIENTS: usize = 96;

/// Requests each client issues per batch.
pub const REQUESTS_PER_CLIENT: usize = 3;

/// Simulated per-request session latency burned under the project
/// lock — same role as B12's `SESSION_LATENCY`: it makes the batch
/// latency-bound so worker scaling measures pool concurrency, not
/// build profile.
pub const SESSION_LATENCY: Duration = Duration::from_millis(1);

/// Worker-pool sizes the kernel sweeps.
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn project_name(k: usize) -> String {
    format!("p{k}")
}

/// A workspace with [`PROJECTS`] planned ASIC-flow projects, ready to
/// serve replan/status traffic.
pub fn seeded_workspace() -> Arc<Workspace> {
    let ws = Arc::new(Workspace::in_memory());
    for k in 0..PROJECTS {
        let project = ws
            .create_project(
                &project_name(k),
                examples::asic_flow(),
                ToolLibrary::standard(),
                Team::of_size(3),
                k as u64,
            )
            .expect("fresh project");
        project
            .update(|h| h.plan("signoff_report"))
            .expect("initial plan");
    }
    ws
}

/// Starts a server over `ws` with `workers` pool threads and the
/// kernel's session latency.
pub fn start_server(ws: &Arc<Workspace>, workers: usize) -> Server {
    Server::start(
        Arc::clone(ws),
        ServerConfig {
            workers,
            session_latency: SESSION_LATENCY,
            ..ServerConfig::default()
        },
    )
    .expect("bind bench server")
}

/// Runs one batch — [`CLIENTS`] concurrent sessions, each issuing
/// [`REQUESTS_PER_CLIENT`] requests (two replans to one status read,
/// spread round-robin over the projects) — and returns every
/// per-request wall time in nanoseconds.
pub fn run_batch(addr: SocketAddr) -> Vec<f64> {
    let mut latencies = Vec::with_capacity(CLIENTS * REQUESTS_PER_CLIENT);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let client = Client::new(addr).with_timeout(Duration::from_secs(30));
                    let mut times = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for r in 0..REQUESTS_PER_CLIENT {
                        let project = project_name((c + r) % PROJECTS);
                        let t0 = Instant::now();
                        let resp = if (c + r) % 3 == 2 {
                            client
                                .get(&format!("/projects/{project}/status"))
                                .expect("status request")
                        } else {
                            client
                                .post(
                                    &format!("/projects/{project}/replan?target=signoff_report"),
                                    b"",
                                )
                                .expect("replan request")
                        };
                        times.push(t0.elapsed().as_nanos() as f64);
                        assert_eq!(resp.status, 200, "{}", resp.body);
                    }
                    times
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    latencies
}

/// Geometric bucket bounds for the latency histogram: 10 µs … 10 s at
/// ratio 1.2, so the bucket-interpolated percentile is within ~10% of
/// the sample value — well inside the ±30% `bench_compare` gate on the
/// `latency/workers/*` rows.
fn latency_bounds() -> Vec<f64> {
    let mut bounds = Vec::new();
    let mut bound = 1e4f64;
    while bound < 1e10 {
        bounds.push(bound);
        bound *= 1.2;
    }
    bounds
}

fn latency_records(workers: usize, ns: Vec<f64>) -> Vec<Record> {
    // Percentiles come from the same fixed-bucket estimator the live
    // server exposes on `/metrics` (`Histogram::percentile`), so bench
    // numbers and dashboard numbers mean the same thing.
    let histogram = obs::Histogram::with_bounds(&latency_bounds());
    for v in &ns {
        histogram.observe(*v);
    }
    let samples = ns.len() as u32;
    let p99 = histogram.percentile(0.99);
    vec![
        Record {
            kernel: "serve_load".to_owned(),
            bench: format!("latency/workers/{workers}"),
            elements: None,
            samples,
            iters_per_sample: 1,
            stats: Stats {
                median_ns: histogram.percentile(0.50),
                p95_ns: histogram.percentile(0.95),
                min_ns: ns.iter().copied().fold(f64::INFINITY, f64::min),
                mean_ns: ns.iter().sum::<f64>() / ns.len() as f64,
            },
        },
        Record {
            kernel: "serve_load".to_owned(),
            bench: format!("latency_p99/workers/{workers}"),
            elements: None,
            samples,
            iters_per_sample: 1,
            stats: Stats {
                median_ns: p99,
                p95_ns: p99,
                min_ns: p99,
                mean_ns: p99,
            },
        },
    ]
}

/// Runs the kernel; `quick` selects the smoke-test sampling plan. The
/// batch itself is identical in both modes (`bench_compare` matches on
/// names, so `workers/N` must mean the same workload in the committed
/// baseline and a quick fresh run).
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("serve_load", quick);
    let total_requests = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    let ws = seeded_workspace();
    let mut tail_records = Vec::new();
    for workers in WORKER_COUNTS {
        let server = start_server(&ws, workers);
        let addr = server.addr();
        suite.bench(
            &format!("throughput/workers/{workers}"),
            Some(total_requests),
            || {
                run_batch(addr);
            },
        );
        // One dedicated batch for the percentile records, after the
        // suite's warmup has faulted in every code path.
        tail_records.extend(latency_records(workers, run_batch(addr)));
        server.shutdown();
    }
    let mut records = suite.into_records();
    records.extend(tail_records);
    records
}
