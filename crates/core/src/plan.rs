use std::collections::HashMap;

use metadata::{PlanningSessionId, ScheduleInstanceId};
use schedule::{level_resources, Resource, ResourcePool, ScheduleNetwork, WorkDays};

use crate::error::HerculesError;
use crate::manager::Hercules;

/// One activity's entry in a schedule plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedActivity {
    /// The activity name.
    pub activity: String,
    /// The schedule instance recorded in the metadata database.
    pub schedule: ScheduleInstanceId,
    /// Proposed start (working days from project start).
    pub start: WorkDays,
    /// Proposed duration.
    pub duration: WorkDays,
    /// Assigned designer.
    pub assignee: String,
    /// Whether the activity is on the plan's critical path.
    pub critical: bool,
}

/// The result of planning a target: the schedule instances created by
/// one simulated execution of the flow.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulePlan {
    session: PlanningSessionId,
    target: String,
    activities: Vec<PlannedActivity>,
    project_finish: WorkDays,
}

impl SchedulePlan {
    /// The planning session grouping these schedule instances.
    pub fn session(&self) -> PlanningSessionId {
        self.session
    }

    /// The planned target.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Planned activities in dependency order.
    pub fn activities(&self) -> &[PlannedActivity] {
        &self.activities
    }

    /// Number of planned activities.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// Returns `true` if the plan is empty (never for successful
    /// planning).
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }

    /// The proposed project finish (makespan under team constraints).
    pub fn project_finish(&self) -> WorkDays {
        self.project_finish
    }

    /// The entry for `activity`, if planned.
    pub fn activity(&self, name: &str) -> Option<&PlannedActivity> {
        self.activities.iter().find(|a| a.activity == name)
    }
}

impl Hercules {
    /// Plans a schedule for `target` by **simulating the execution of
    /// the flow** (§III): the same post-order traversal execution uses,
    /// but creating schedule instances instead of running tools.
    ///
    /// Per activity, the proposed duration comes from
    /// [`duration_estimate`](Hercules::duration_estimate) (measured
    /// history first, then designer intuition, then the tool model).
    /// Proposed dates come from CPM over the task tree's precedence
    /// constraints, levelled against the design team (one designer per
    /// activity, round-robin assignment). Planning starts at the
    /// current project clock.
    ///
    /// Replanning the same target later creates *new versions* of each
    /// schedule instance with provenance to the previous version —
    /// Fig. 5's SC1/SC2.
    ///
    /// # Errors
    ///
    /// * [`HerculesError::UnknownTarget`] — `target` names nothing.
    /// * [`HerculesError::Schedule`] — the network rejected the plan
    ///   (cannot happen for trees extracted from a valid schema).
    ///
    /// # Example
    ///
    /// ```
    /// use hercules::Hercules;
    /// use schema::examples;
    /// use simtools::{workload::Team, ToolLibrary};
    ///
    /// # fn main() -> Result<(), hercules::HerculesError> {
    /// let mut h = Hercules::new(
    ///     examples::circuit_design(),
    ///     ToolLibrary::standard(),
    ///     Team::of_size(1),
    ///     1,
    /// );
    /// let plan = h.plan("performance")?;
    /// // Create precedes Simulate in the proposal.
    /// let create = plan.activity("Create").expect("planned");
    /// let simulate = plan.activity("Simulate").expect("planned");
    /// assert!(create.start.days() <= simulate.start.days());
    /// # Ok(())
    /// # }
    /// ```
    pub fn plan(&mut self, target: &str) -> Result<SchedulePlan, HerculesError> {
        self.plan_scope(target, &[])
    }

    /// [`plan`](Hercules::plan) restricted to a sub-scope: activities
    /// named in `skip` are left out of the network and get no new
    /// schedule instance versions.
    ///
    /// This is what [`replan`](Hercules::replan) uses to honour the
    /// versioned-update contract — completed activities keep their
    /// linked plans while open work is repriced. Ordering across the
    /// cut is preserved by the caller advancing the project clock past
    /// the skipped activities' actual finishes; precedence *within*
    /// the remaining scope is kept intact here.
    pub(crate) fn plan_scope(
        &mut self,
        target: &str,
        skip: &[String],
    ) -> Result<SchedulePlan, HerculesError> {
        let tree = self.extract_task_tree(target)?;
        let in_scope: Vec<String> = tree
            .activities()
            .iter()
            .filter(|a| !skip.contains(a))
            .cloned()
            .collect();
        // Build the precedence network with estimated durations.
        let mut net = ScheduleNetwork::new();
        let mut ids = HashMap::new();
        for activity in &in_scope {
            let duration = self.duration_estimate(activity)?;
            let id = net.add_activity(activity.clone(), duration)?;
            ids.insert(activity.clone(), id);
        }
        for activity in &in_scope {
            for consumer in tree.consumers_of_output(activity) {
                if let Some(&consumer_id) = ids.get(consumer) {
                    net.add_precedence(ids[activity.as_str()], consumer_id)?;
                }
            }
        }
        // Assign designers round-robin in dependency order and level
        // against the team: one designer works one activity at a time.
        let mut pool = ResourcePool::new();
        for designer in self.team.iter() {
            pool.add(Resource::new(designer, 1));
        }
        let mut assignees = HashMap::new();
        for (k, activity) in in_scope.iter().enumerate() {
            let designer = self.team.assignee(k).to_owned();
            net.add_demand(ids[activity.as_str()], designer.clone(), 1)?;
            assignees.insert(activity.clone(), designer);
        }
        let cpm = net.analyze()?;
        let leveled = level_resources(&net, &pool)?;

        // Record the simulated execution: one planning session, one
        // schedule instance per activity, in post-order.
        let session = self.db.begin_planning(self.clock);
        let offset = self.clock;
        let mut activities = Vec::with_capacity(in_scope.len());
        let mut project_finish = offset;
        for activity in &in_scope {
            let id = ids[activity.as_str()];
            let start = offset + leveled.start(id);
            let duration = net.duration(id);
            let sc = self.db.plan_activity(session, activity, start, duration)?;
            let assignee = assignees[activity].clone();
            self.db.assign(sc, &assignee)?;
            let finish = start + duration;
            if finish.days() > project_finish.days() {
                project_finish = finish;
            }
            activities.push(PlannedActivity {
                activity: activity.clone(),
                schedule: sc,
                start,
                duration,
                assignee,
                critical: cpm.is_critical(id),
            });
        }
        Ok(SchedulePlan {
            session,
            target: target.to_owned(),
            activities,
            project_finish,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;
    use simtools::{workload::Team, ToolLibrary};

    fn manager(team: usize) -> Hercules {
        Hercules::new(
            examples::circuit_design(),
            ToolLibrary::standard(),
            Team::of_size(team),
            7,
        )
    }

    #[test]
    fn plan_creates_schedule_instances_in_db() {
        let mut h = manager(2);
        let plan = h.plan("performance").unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.target(), "performance");
        assert!(!plan.is_empty());
        assert_eq!(h.db().schedule_container("Create").unwrap().len(), 1);
        assert_eq!(h.db().schedule_container("Simulate").unwrap().len(), 1);
        let session = h.db().planning_session(plan.session());
        assert_eq!(session.instances().len(), 2);
    }

    #[test]
    fn plan_respects_precedence() {
        let mut h = manager(2);
        let plan = h.plan("performance").unwrap();
        let create = plan.activity("Create").unwrap();
        let simulate = plan.activity("Simulate").unwrap();
        assert!(
            simulate.start.days() >= create.start.days() + create.duration.days() - 1e-9
        );
        assert!(plan.project_finish().days() >= simulate.start.days());
    }

    #[test]
    fn chain_is_fully_critical() {
        let mut h = manager(2);
        let plan = h.plan("performance").unwrap();
        assert!(plan.activities().iter().all(|a| a.critical));
    }

    #[test]
    fn replan_creates_versions_with_provenance() {
        let mut h = manager(2);
        let p1 = h.plan("performance").unwrap();
        let p2 = h.plan("performance").unwrap();
        let sc1 = p1.activity("Create").unwrap().schedule;
        let sc2 = p2.activity("Create").unwrap().schedule;
        assert_ne!(sc1, sc2);
        assert_eq!(h.db().schedule_instance(sc2).version(), 2);
        assert_eq!(h.db().schedule_instance(sc2).derived_from(), Some(sc1));
        assert_eq!(h.db().plan_evolution(sc2), vec![sc2, sc1]);
    }

    #[test]
    fn plan_uses_intuition_estimates() {
        let mut h = manager(2);
        h.set_estimate("Create", WorkDays::new(4.0)).unwrap();
        h.set_estimate("Simulate", WorkDays::new(2.0)).unwrap();
        let plan = h.plan("performance").unwrap();
        assert_eq!(plan.activity("Create").unwrap().duration, WorkDays::new(4.0));
        assert_eq!(plan.project_finish(), WorkDays::new(6.0));
    }

    #[test]
    fn plan_starts_at_clock() {
        let mut h = manager(2);
        h.set_estimate("Create", WorkDays::new(1.0)).unwrap();
        h.set_estimate("Simulate", WorkDays::new(1.0)).unwrap();
        h.advance_clock(WorkDays::new(10.0));
        let plan = h.plan("performance").unwrap();
        assert_eq!(plan.activity("Create").unwrap().start, WorkDays::new(10.0));
        assert_eq!(plan.project_finish(), WorkDays::new(12.0));
    }

    #[test]
    fn single_designer_serializes_independent_activities() {
        // asic flow has parallel branches; with one designer the plan
        // must not overlap any two activities.
        let mut h = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(1),
            3,
        );
        let plan = h.plan("signoff_report").unwrap();
        let mut spans: Vec<(f64, f64)> = plan
            .activities()
            .iter()
            .map(|a| (a.start.days(), a.start.days() + a.duration.days()))
            .collect();
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            assert!(w[1].0 >= w[0].1 - 1e-9, "activities overlap: {w:?}");
        }
    }

    #[test]
    fn larger_team_never_slower() {
        let mut h1 = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(1),
            3,
        );
        let mut h3 = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            3,
        );
        let p1 = h1.plan("signoff_report").unwrap();
        let p3 = h3.plan("signoff_report").unwrap();
        assert!(p3.project_finish().days() <= p1.project_finish().days() + 1e-9);
    }

    #[test]
    fn unknown_target_rejected() {
        let mut h = manager(1);
        assert!(matches!(
            h.plan("gds"),
            Err(HerculesError::UnknownTarget(_))
        ));
    }

    #[test]
    fn assignees_recorded_in_db() {
        let mut h = manager(2);
        let plan = h.plan("performance").unwrap();
        for pa in plan.activities() {
            let sc = h.db().schedule_instance(pa.schedule);
            assert_eq!(sc.assignees(), std::slice::from_ref(&pa.assignee));
        }
    }
}
