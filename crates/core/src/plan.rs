use std::collections::HashMap;

use metadata::{PlanningSessionId, ScheduleInstanceId};
use schedule::{
    level_resources, ActivityId, IncrementalCpm, Resource, ResourcePool, ScheduleNetwork, WorkDays,
};

use crate::error::HerculesError;
use crate::manager::Hercules;

/// Cached planning state for one target: the precedence network built
/// from the task tree plus the [`IncrementalCpm`] engine holding its
/// last analysis. Replanning the same scope only touches activities
/// whose duration estimates actually changed (the *dirty set*), so the
/// CPM cost is proportional to the slip's cone of influence rather
/// than the whole network.
#[derive(Debug, Clone)]
pub(crate) struct PlanCache {
    network: ScheduleNetwork,
    ids: HashMap<String, ActivityId>,
    in_scope: Vec<String>,
    inc: IncrementalCpm,
}

/// Cached handles into the [`obs::Metrics`] registry for the planner's
/// counters — looked up once, then every bump is a relaxed atomic add.
/// This registry (plus the recorded `hercules.plan` span fields) is the
/// planner's *only* instrumentation surface: the deprecated
/// `PlanStats` accessor shims are gone (see DESIGN.md §7).
struct PlanMetrics {
    calls: obs::Counter,
    cache_hits: obs::Counter,
    full_rebuilds: obs::Counter,
    dirty: obs::Histogram,
    cpm_recomputed: obs::Histogram,
}

fn plan_metrics() -> &'static PlanMetrics {
    static METRICS: std::sync::OnceLock<PlanMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| PlanMetrics {
        calls: obs::Metrics::counter("hercules.plan.calls"),
        cache_hits: obs::Metrics::counter("hercules.plan.cache_hits"),
        full_rebuilds: obs::Metrics::counter("hercules.plan.full_rebuilds"),
        dirty: obs::Metrics::histogram(
            "hercules.plan.dirty_size",
            &[0.0, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0],
        ),
        cpm_recomputed: obs::Metrics::histogram(
            "hercules.plan.cpm_recomputed",
            &[0.0, 2.0, 8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0],
        ),
    })
}

/// One activity's entry in a schedule plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedActivity {
    /// The activity name.
    pub activity: String,
    /// The schedule instance recorded in the metadata database.
    pub schedule: ScheduleInstanceId,
    /// Proposed start (working days from project start).
    pub start: WorkDays,
    /// Proposed duration.
    pub duration: WorkDays,
    /// Assigned designer.
    pub assignee: String,
    /// Whether the activity is on the plan's critical path.
    pub critical: bool,
}

/// The result of planning a target: the schedule instances created by
/// one simulated execution of the flow.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulePlan {
    session: PlanningSessionId,
    target: String,
    activities: Vec<PlannedActivity>,
    project_finish: WorkDays,
}

impl SchedulePlan {
    /// The planning session grouping these schedule instances.
    pub fn session(&self) -> PlanningSessionId {
        self.session
    }

    /// The planned target.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Planned activities in dependency order.
    pub fn activities(&self) -> &[PlannedActivity] {
        &self.activities
    }

    /// Number of planned activities.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// Returns `true` if the plan is empty (never for successful
    /// planning).
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }

    /// The proposed project finish (makespan under team constraints).
    pub fn project_finish(&self) -> WorkDays {
        self.project_finish
    }

    /// The entry for `activity`, if planned.
    pub fn activity(&self, name: &str) -> Option<&PlannedActivity> {
        self.activities.iter().find(|a| a.activity == name)
    }
}

impl Hercules {
    /// Plans a schedule for `target` by **simulating the execution of
    /// the flow** (§III): the same post-order traversal execution uses,
    /// but creating schedule instances instead of running tools.
    ///
    /// Per activity, the proposed duration comes from
    /// [`duration_estimate`](Hercules::duration_estimate) (measured
    /// history first, then designer intuition, then the tool model).
    /// Proposed dates come from CPM over the task tree's precedence
    /// constraints, levelled against the design team (one designer per
    /// activity, round-robin assignment). Planning starts at the
    /// current project clock.
    ///
    /// Replanning the same target later creates *new versions* of each
    /// schedule instance with provenance to the previous version —
    /// Fig. 5's SC1/SC2.
    ///
    /// # Errors
    ///
    /// * [`HerculesError::UnknownTarget`] — `target` names nothing.
    /// * [`HerculesError::Schedule`] — the network rejected the plan
    ///   (cannot happen for trees extracted from a valid schema).
    ///
    /// # Example
    ///
    /// ```
    /// use hercules::Hercules;
    /// use schema::examples;
    /// use simtools::{workload::Team, ToolLibrary};
    ///
    /// # fn main() -> Result<(), hercules::HerculesError> {
    /// let mut h = Hercules::new(
    ///     examples::circuit_design(),
    ///     ToolLibrary::standard(),
    ///     Team::of_size(1),
    ///     1,
    /// );
    /// let plan = h.plan("performance")?;
    /// // Create precedes Simulate in the proposal.
    /// let create = plan.activity("Create").expect("planned");
    /// let simulate = plan.activity("Simulate").expect("planned");
    /// assert!(create.start.days() <= simulate.start.days());
    /// # Ok(())
    /// # }
    /// ```
    pub fn plan(&mut self, target: &str) -> Result<SchedulePlan, HerculesError> {
        self.plan_scope(target, &[])
    }

    /// [`plan`](Hercules::plan) restricted to a sub-scope: activities
    /// named in `skip` are left out of the network and get no new
    /// schedule instance versions.
    ///
    /// This is what [`replan`](Hercules::replan) uses to honour the
    /// versioned-update contract — completed activities keep their
    /// linked plans while open work is repriced. Ordering across the
    /// cut is preserved by the caller advancing the project clock past
    /// the skipped activities' actual finishes; precedence *within*
    /// the remaining scope is kept intact here.
    pub(crate) fn plan_scope(
        &mut self,
        target: &str,
        skip: &[String],
    ) -> Result<SchedulePlan, HerculesError> {
        let tree = self.extract_task_tree(target)?;
        obs::Collector::set_sim_days(self.clock.days());
        let mut plan_span = obs::span!("hercules.plan", target = target, skipped = skip.len(),);
        let in_scope: Vec<String> = tree
            .activities()
            .iter()
            .filter(|a| !skip.contains(a))
            .cloned()
            .collect();
        // Reuse the cached network + incremental CPM state when the
        // scope is unchanged; only activities whose estimate moved are
        // marked dirty and recomputed. Scope changes (first plan, or a
        // replan that skips newly-completed activities) rebuild.
        let cached = self
            .plan_cache
            .remove(target)
            .filter(|c| c.in_scope == in_scope);
        let cpm_total = in_scope.len();
        let mut cache_hit = false;
        let dirty_count;
        let cpm_recomputed;
        let (net, ids, inc) = match cached {
            Some(mut c) => {
                let mut dirty: Vec<ActivityId> = Vec::new();
                for activity in &in_scope {
                    let id = c.ids[activity.as_str()];
                    let estimate = self.duration_estimate(activity)?;
                    if (estimate.days() - c.network.duration(id).days()).abs() > 1e-12 {
                        c.network.set_duration(id, estimate)?;
                        dirty.push(id);
                    }
                }
                let update = c.inc.update(&c.network, &dirty)?;
                obs::event!(
                    "plan.cache_hit",
                    dirty = dirty.len(),
                    forward_cone = update.forward_recomputed,
                    backward_cone = update.backward_recomputed,
                    forward_cutoff = update.forward_cutoff,
                    backward_cutoff = update.backward_cutoff,
                    full_rebuild = update.full_rebuild,
                );
                if update.full_rebuild {
                    plan_metrics().full_rebuilds.inc();
                }
                cache_hit = true;
                dirty_count = dirty.len();
                cpm_recomputed = update.total_recomputed();
                (c.network, c.ids, c.inc)
            }
            None => {
                // Build the precedence network with estimated durations.
                let mut net = ScheduleNetwork::new();
                let mut ids = HashMap::new();
                for activity in &in_scope {
                    let duration = self.duration_estimate(activity)?;
                    let id = net.add_activity(activity.clone(), duration)?;
                    ids.insert(activity.clone(), id);
                }
                for activity in &in_scope {
                    for consumer in tree.consumers_of_output(activity) {
                        if let Some(&consumer_id) = ids.get(consumer) {
                            net.add_precedence(ids[activity.as_str()], consumer_id)?;
                        }
                    }
                }
                // One demand per activity for its round-robin designer
                // (recorded once; reused on every cache hit).
                for (k, activity) in in_scope.iter().enumerate() {
                    let designer = self.team.assignee(k).to_owned();
                    net.add_demand(ids[activity.as_str()], designer, 1)?;
                }
                let inc = net.analyze_incremental()?;
                obs::event!("plan.cache_miss", scope = in_scope.len());
                dirty_count = in_scope.len();
                cpm_recomputed = 2 * in_scope.len();
                (net, ids, inc)
            }
        };
        // Assign designers round-robin in dependency order and level
        // against the team: one designer works one activity at a time.
        let mut pool = ResourcePool::new();
        for designer in self.team.iter() {
            pool.add(Resource::new(designer, 1));
        }
        let mut assignees = HashMap::new();
        for (k, activity) in in_scope.iter().enumerate() {
            assignees.insert(activity.clone(), self.team.assignee(k).to_owned());
        }
        let cpm = inc.analysis(&net);
        let leveled = level_resources(&net, &pool)?;

        // Record the simulated execution: one planning session, one
        // schedule instance per activity, in post-order.
        let session = self.store.begin_planning(self.clock);
        let offset = self.clock;
        let mut activities = Vec::with_capacity(in_scope.len());
        let mut project_finish = offset;
        for activity in &in_scope {
            let id = ids[activity.as_str()];
            let start = offset + leveled.start(id);
            let duration = net.duration(id);
            let sc = self
                .store
                .plan_activity(session, activity, start, duration)?;
            let assignee = assignees[activity].clone();
            self.store.assign(sc, &assignee)?;
            let finish = start + duration;
            if finish.days() > project_finish.days() {
                project_finish = finish;
            }
            activities.push(PlannedActivity {
                activity: activity.clone(),
                schedule: sc,
                start,
                duration,
                assignee,
                critical: cpm.is_critical(id),
            });
        }
        self.plan_cache.insert(
            target.to_owned(),
            PlanCache {
                network: net,
                ids,
                in_scope,
                inc,
            },
        );
        // Publish the pass's instrumentation: the shared metrics
        // registry (queryable aggregate) and the span's recorded fields
        // (per-call detail) — the only surfaces since the `PlanStats`
        // accessor shims were removed.
        let m = plan_metrics();
        m.calls.inc();
        if cache_hit {
            m.cache_hits.inc();
        }
        m.dirty.observe(dirty_count as f64);
        m.cpm_recomputed.observe(cpm_recomputed as f64);
        plan_span.record("cache_hit", cache_hit);
        plan_span.record("dirty", dirty_count);
        plan_span.record("cpm_recomputed", cpm_recomputed);
        plan_span.record("cpm_total", cpm_total);
        plan_span.record("project_finish_days", project_finish.days());
        Ok(SchedulePlan {
            session,
            target: target.to_owned(),
            activities,
            project_finish,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;
    use simtools::{workload::Team, ToolLibrary};

    fn manager(team: usize) -> Hercules {
        Hercules::new(
            examples::circuit_design(),
            ToolLibrary::standard(),
            Team::of_size(team),
            7,
        )
    }

    /// The last `hercules.plan` span recorded by this thread (lane 0 —
    /// the session opener) in `trace`. Replaces the removed
    /// `last_plan_stats` accessor as the tests' planning probe.
    fn plan_span(trace: &obs::Trace) -> obs::SpanView {
        trace
            .spans()
            .into_iter()
            .rfind(|s| s.name == "hercules.plan" && s.lane == 0)
            .expect("a planning pass was traced")
    }

    fn arg_u64(span: &obs::SpanView, key: &str) -> u64 {
        match span.arg(key) {
            Some(obs::ArgValue::U64(n)) => *n,
            other => panic!("span arg {key}: {other:?}"),
        }
    }

    fn arg_bool(span: &obs::SpanView, key: &str) -> bool {
        match span.arg(key) {
            Some(obs::ArgValue::Bool(b)) => *b,
            other => panic!("span arg {key}: {other:?}"),
        }
    }

    #[test]
    fn plan_creates_schedule_instances_in_db() {
        let mut h = manager(2);
        let plan = h.plan("performance").unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.target(), "performance");
        assert!(!plan.is_empty());
        assert_eq!(h.db().schedule_container("Create").unwrap().len(), 1);
        assert_eq!(h.db().schedule_container("Simulate").unwrap().len(), 1);
        let session = h.db().planning_session(plan.session());
        assert_eq!(session.instances().len(), 2);
    }

    #[test]
    fn plan_respects_precedence() {
        let mut h = manager(2);
        let plan = h.plan("performance").unwrap();
        let create = plan.activity("Create").unwrap();
        let simulate = plan.activity("Simulate").unwrap();
        assert!(simulate.start.days() >= create.start.days() + create.duration.days() - 1e-9);
        assert!(plan.project_finish().days() >= simulate.start.days());
    }

    #[test]
    fn chain_is_fully_critical() {
        let mut h = manager(2);
        let plan = h.plan("performance").unwrap();
        assert!(plan.activities().iter().all(|a| a.critical));
    }

    #[test]
    fn replan_creates_versions_with_provenance() {
        let mut h = manager(2);
        let p1 = h.plan("performance").unwrap();
        let p2 = h.plan("performance").unwrap();
        let sc1 = p1.activity("Create").unwrap().schedule;
        let sc2 = p2.activity("Create").unwrap().schedule;
        assert_ne!(sc1, sc2);
        assert_eq!(h.db().schedule_instance(sc2).version(), 2);
        assert_eq!(h.db().schedule_instance(sc2).derived_from(), Some(sc1));
        assert_eq!(h.db().plan_evolution(sc2), vec![sc2, sc1]);
    }

    #[test]
    fn plan_uses_intuition_estimates() {
        let mut h = manager(2);
        h.set_estimate("Create", WorkDays::new(4.0)).unwrap();
        h.set_estimate("Simulate", WorkDays::new(2.0)).unwrap();
        let plan = h.plan("performance").unwrap();
        assert_eq!(
            plan.activity("Create").unwrap().duration,
            WorkDays::new(4.0)
        );
        assert_eq!(plan.project_finish(), WorkDays::new(6.0));
    }

    #[test]
    fn plan_starts_at_clock() {
        let mut h = manager(2);
        h.set_estimate("Create", WorkDays::new(1.0)).unwrap();
        h.set_estimate("Simulate", WorkDays::new(1.0)).unwrap();
        h.advance_clock(WorkDays::new(10.0));
        let plan = h.plan("performance").unwrap();
        assert_eq!(plan.activity("Create").unwrap().start, WorkDays::new(10.0));
        assert_eq!(plan.project_finish(), WorkDays::new(12.0));
    }

    #[test]
    fn single_designer_serializes_independent_activities() {
        // asic flow has parallel branches; with one designer the plan
        // must not overlap any two activities.
        let mut h = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(1),
            3,
        );
        let plan = h.plan("signoff_report").unwrap();
        let mut spans: Vec<(f64, f64)> = plan
            .activities()
            .iter()
            .map(|a| (a.start.days(), a.start.days() + a.duration.days()))
            .collect();
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            assert!(w[1].0 >= w[0].1 - 1e-9, "activities overlap: {w:?}");
        }
    }

    #[test]
    fn larger_team_never_slower() {
        let mut h1 = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(1),
            3,
        );
        let mut h3 = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            3,
        );
        let p1 = h1.plan("signoff_report").unwrap();
        let p3 = h3.plan("signoff_report").unwrap();
        assert!(p3.project_finish().days() <= p1.project_finish().days() + 1e-9);
    }

    #[test]
    fn unknown_target_rejected() {
        let mut h = manager(1);
        assert!(matches!(
            h.plan("gds"),
            Err(HerculesError::UnknownTarget(_))
        ));
    }

    #[test]
    fn replan_same_scope_hits_cache_with_empty_dirty_set() {
        let mut h = manager(2);
        let calls_before = obs::Metrics::counter("hercules.plan.calls").get();
        let hits_before = obs::Metrics::counter("hercules.plan.cache_hits").get();
        let session = obs::Collector::session();
        let p1 = h.plan("performance").unwrap();
        let first = plan_span(&session.finish());
        assert!(!arg_bool(&first, "cache_hit"));
        assert_eq!(arg_u64(&first, "dirty"), 2);
        assert_eq!(arg_u64(&first, "cpm_total"), 2);
        let session = obs::Collector::session();
        let p2 = h.plan("performance").unwrap();
        let second = plan_span(&session.finish());
        assert!(arg_bool(&second, "cache_hit"));
        assert_eq!(arg_u64(&second, "dirty"), 0);
        assert_eq!(arg_u64(&second, "cpm_recomputed"), 0);
        // The registry aggregates the same passes (>= because other
        // tests in this process bump the shared counters too).
        assert!(obs::Metrics::counter("hercules.plan.calls").get() >= calls_before + 2);
        assert!(obs::Metrics::counter("hercules.plan.cache_hits").get() > hits_before);
        // Same proposal, new schedule-instance versions.
        assert_eq!(p1.project_finish(), p2.project_finish());
        assert_eq!(p1.len(), p2.len());
    }

    #[test]
    fn estimate_change_dirties_only_that_activity() {
        let mut h = manager(2);
        h.set_estimate("Create", WorkDays::new(2.0)).unwrap();
        h.set_estimate("Simulate", WorkDays::new(3.0)).unwrap();
        let p1 = h.plan("performance").unwrap();
        assert_eq!(p1.project_finish(), WorkDays::new(5.0));
        // Slip the leaf of the chain; the replan reuses the cache and
        // recomputes only the affected cone.
        h.set_estimate("Simulate", WorkDays::new(6.0)).unwrap();
        let session = obs::Collector::session();
        let p2 = h.plan("performance").unwrap();
        let stats = plan_span(&session.finish());
        assert!(arg_bool(&stats, "cache_hit"));
        assert_eq!(arg_u64(&stats, "dirty"), 1);
        assert!(arg_u64(&stats, "cpm_recomputed") >= 1);
        assert!(arg_u64(&stats, "cpm_recomputed") <= 2 * arg_u64(&stats, "cpm_total"));
        assert_eq!(p2.project_finish(), WorkDays::new(8.0));
        assert!(p2.activities().iter().all(|a| a.critical));
    }

    #[test]
    fn scope_change_rebuilds_cache() {
        let mut h = manager(2);
        let session = obs::Collector::session();
        h.plan("performance").unwrap();
        assert!(!arg_bool(&plan_span(&session.finish()), "cache_hit"));
        // Restricting the scope (as replan does after completions)
        // invalidates the cached network.
        let skip = vec!["Create".to_owned()];
        let session = obs::Collector::session();
        let p = h.plan_scope("performance", &skip).unwrap();
        let stats = plan_span(&session.finish());
        assert!(!arg_bool(&stats, "cache_hit"));
        assert_eq!(arg_u64(&stats, "cpm_total"), 1);
        assert_eq!(p.len(), 1);
        // And the narrower scope is itself cached.
        let session = obs::Collector::session();
        h.plan_scope("performance", &skip).unwrap();
        assert!(arg_bool(&plan_span(&session.finish()), "cache_hit"));
    }

    #[test]
    fn cached_plan_matches_fresh_plan() {
        // The incremental path must propose byte-identical dates to a
        // from-scratch plan of the same state.
        let mut h1 = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(2),
            3,
        );
        let mut h2 = h1.clone();
        h1.plan("signoff_report").unwrap();
        h1.set_estimate("Synthesize", WorkDays::new(12.5)).unwrap();
        let session = obs::Collector::session();
        let cached = h1.plan("signoff_report").unwrap();
        assert!(arg_bool(&plan_span(&session.finish()), "cache_hit"));

        h2.set_estimate("Synthesize", WorkDays::new(12.5)).unwrap();
        let fresh = h2.plan("signoff_report").unwrap();
        assert_eq!(cached.project_finish(), fresh.project_finish());
        for (a, b) in cached.activities().iter().zip(fresh.activities()) {
            assert_eq!(a.activity, b.activity);
            assert_eq!(a.start, b.start);
            assert_eq!(a.duration, b.duration);
            assert_eq!(a.assignee, b.assignee);
            assert_eq!(a.critical, b.critical, "criticality of {}", a.activity);
        }
    }

    #[test]
    fn assignees_recorded_in_db() {
        let mut h = manager(2);
        let plan = h.plan("performance").unwrap();
        for pa in plan.activities() {
            let sc = h.db().schedule_instance(pa.schedule);
            assert_eq!(sc.assignees(), std::slice::from_ref(&pa.assignee));
        }
    }
}
