//! Trace exporters: JSONL event logs and Chrome `trace_event` JSON
//! (loadable in `chrome://tracing` and Perfetto), plus the atomic
//! file-write primitive shared with the bench harness.
//!
//! Two timestamp policies ([`Timebase`]):
//!
//! * [`Wall`](Timebase::Wall) — real `mono_ns` values, for profiling.
//! * [`Logical`](Timebase::Logical) — each item gets a per-thread DFS
//!   tick (1 tick = 1000 µs in the Chrome export). Wall time is
//!   excluded entirely, so a deterministic run exports
//!   **byte-identical** JSON — this is what the golden-file test pins.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::trace::{Arg, ArgValue, Trace, TraceItem};

/// Which timestamp domain an export uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timebase {
    /// Real monotonic nanoseconds since the collector epoch.
    Wall,
    /// Per-thread logical ticks (recording order), excluding wall
    /// time: byte-deterministic for golden pinning.
    Logical,
}

/// Escapes `s` as the body of a JSON string literal.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats an f64 as JSON (no NaN/Inf — mapped to null).
fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_value(v: &ArgValue, out: &mut String) {
    match v {
        ArgValue::U64(x) => {
            let _ = write!(out, "{x}");
        }
        ArgValue::I64(x) => {
            let _ = write!(out, "{x}");
        }
        ArgValue::F64(x) => json_f64(*x, out),
        ArgValue::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        ArgValue::Str(x) => {
            out.push('"');
            escape_json(x, out);
            out.push('"');
        }
    }
}

fn write_args_object(args: &[Arg], out: &mut String) {
    out.push('{');
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(a.key, out);
        out.push_str("\":");
        write_value(&a.value, out);
    }
    out.push('}');
}

fn item_fields(item: &TraceItem) -> (&'static str, Option<&'static str>, u64, Option<i64>, &[Arg]) {
    match item {
        TraceItem::Enter {
            name,
            mono_ns,
            sim_md,
            args,
        } => ("enter", Some(name), *mono_ns, *sim_md, args),
        TraceItem::Exit {
            mono_ns,
            sim_md,
            args,
        } => ("exit", None, *mono_ns, *sim_md, args),
        TraceItem::Event {
            name,
            mono_ns,
            sim_md,
            args,
        } => ("event", Some(name), *mono_ns, *sim_md, args),
    }
}

/// Serializes the trace as JSONL: one JSON object per item, threads in
/// merge order. Fields: `kind` (`enter`/`exit`/`event`), `name`
/// (except exits), `lane`, `t` (per [`Timebase`]), `sim_md` when
/// published, `args` when non-empty.
pub fn to_jsonl(trace: &Trace, timebase: Timebase) -> String {
    let mut out = String::new();
    for thread in &trace.threads {
        for (tick, item) in thread.items.iter().enumerate() {
            let (kind, name, mono_ns, sim_md, args) = item_fields(item);
            let t = match timebase {
                Timebase::Wall => mono_ns,
                Timebase::Logical => tick as u64,
            };
            out.push_str("{\"kind\":\"");
            out.push_str(kind);
            out.push('"');
            if let Some(n) = name {
                out.push_str(",\"name\":\"");
                escape_json(n, &mut out);
                out.push('"');
            }
            let _ = write!(out, ",\"lane\":{},\"t\":{t}", thread.lane);
            if let Some(md) = sim_md {
                let _ = write!(out, ",\"sim_md\":{md}");
            }
            if !args.is_empty() {
                out.push_str(",\"args\":");
                write_args_object(args, &mut out);
            }
            out.push_str("}\n");
        }
    }
    out
}

/// Serializes the trace in Chrome `trace_event` format (JSON object
/// with a `traceEvents` array), loadable in `chrome://tracing` and
/// Perfetto:
///
/// * matched spans → `ph:"X"` complete events (`ts`/`dur` in µs),
/// * point events → `ph:"i"` thread-scoped instants,
/// * one `ph:"M"` `thread_name` metadata record per lane.
///
/// `pid` is always 1; `tid` is the lane. Under
/// [`Timebase::Logical`] every item advances its thread's clock by
/// 1000 µs, so nesting renders visibly and output is deterministic.
/// Simulated timestamps ride along as `args.sim_md` — real and
/// simulated domains are never mixed in `ts`.
pub fn to_chrome(trace: &Trace, timebase: Timebase) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let emit = |line: &str, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(line);
    };

    for thread in &trace.threads {
        let line = format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"lane {}\"}}}}",
            thread.lane, thread.lane
        );
        emit(&line, &mut out, &mut first);
    }

    const TICK_US: u64 = 1000;
    for thread in &trace.threads {
        // Open spans: (name, start_us, enter args, enter sim_md).
        let mut open: Vec<(&'static str, u64, Vec<Arg>, Option<i64>)> = Vec::new();
        for (tick, item) in thread.items.iter().enumerate() {
            let (_, _, mono_ns, _, _) = item_fields(item);
            let t_us = match timebase {
                Timebase::Wall => mono_ns / 1000,
                Timebase::Logical => tick as u64 * TICK_US,
            };
            match item {
                TraceItem::Enter {
                    name, sim_md, args, ..
                } => {
                    open.push((name, t_us, args.clone(), *sim_md));
                }
                TraceItem::Exit { sim_md, args, .. } => {
                    let Some((name, start_us, mut all_args, enter_md)) = open.pop() else {
                        continue; // invalid trace; validate() reports it
                    };
                    all_args.extend(args.iter().cloned());
                    let mut line = String::new();
                    let _ = write!(
                        line,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"",
                        thread.lane
                    );
                    escape_json(name, &mut line);
                    let _ = write!(
                        line,
                        "\",\"ts\":{start_us},\"dur\":{},\"args\":",
                        t_us.saturating_sub(start_us).max(1)
                    );
                    let mut args_with_sim = all_args;
                    if let Some(md) = enter_md {
                        args_with_sim.insert(0, Arg::new("sim_md", md));
                    }
                    if let Some(md) = sim_md {
                        args_with_sim.push(Arg::new("sim_md_end", *md));
                    }
                    write_args_object(&args_with_sim, &mut line);
                    line.push('}');
                    emit(&line, &mut out, &mut first);
                }
                TraceItem::Event {
                    name, sim_md, args, ..
                } => {
                    let mut line = String::new();
                    let _ = write!(line, "{{\"ph\":\"i\",\"pid\":1,\"tid\":{}", thread.lane);
                    line.push_str(",\"s\":\"t\",\"name\":\"");
                    escape_json(name, &mut line);
                    let _ = write!(line, "\",\"ts\":{t_us},\"args\":");
                    let mut args_with_sim = args.clone();
                    if let Some(md) = sim_md {
                        args_with_sim.insert(0, Arg::new("sim_md", *md));
                    }
                    write_args_object(&args_with_sim, &mut line);
                    line.push('}');
                    emit(&line, &mut out, &mut first);
                }
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Writes `contents` to `path` **atomically and durably**: parent
/// directories are created, the bytes go to a `.tmp` sibling which is
/// fsynced, a rename publishes the file, and the parent directory is
/// fsynced so the rename itself survives a power cut — readers never
/// observe a torn write, and a crash never rolls the file back to
/// nothing. This is the single atomic-write primitive for the
/// workspace (the bench harness's `write_report` delegates here).
///
/// # Errors
///
/// Any I/O failure from directory creation, the write, the syncs, or
/// the rename. The temp file is removed on any failure.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "target path has no file name")
    })?;
    // Pid-suffixed temp name: concurrent writers never clobber each
    // other's staging file, and a failed rename cleans up after itself.
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        std::fs::write(&tmp, contents)?;
        // Contents must be durable *before* the rename publishes the
        // name, or a crash can publish an empty file.
        std::fs::File::open(&tmp)?.sync_all()?;
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Fsyncs `path`'s parent directory so a just-completed rename is
/// durable. Best-effort: directory handles cannot be opened for sync
/// on all platforms (notably Windows), and the rename's *atomicity*
/// holds regardless — only its durability needs this.
fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(handle) = std::fs::File::open(dir) {
            let _ = handle.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

/// Validates that `text` is one well-formed JSON value (trailing
/// whitespace allowed). A deliberately small recursive-descent checker
/// so CI can gate exporter output without external tooling.
///
/// # Errors
///
/// A byte offset and description of the first syntax error.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

/// Validates JSONL: every non-empty line is a JSON value.
///
/// # Errors
///
/// The first offending line number and its error.
pub fn validate_jsonl(text: &str) -> Result<(), String> {
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    Ok(())
}

/// Validates Prometheus text exposition format (v0): every line is a
/// comment (`# TYPE` lines are checked structurally) or a sample of
/// the form `name[{label="value",…}] value [timestamp]`. The same
/// offline-gate role [`validate_json`] plays for the JSON exporters.
///
/// # Errors
///
/// The first offending line number and a description.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    for (i, line) in text.lines().enumerate() {
        validate_prom_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    Ok(())
}

fn is_prom_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_prom_name_char(c: char) -> bool {
    is_prom_name_start(c) || c.is_ascii_digit()
}

fn parse_prom_name(s: &str) -> Result<(&str, &str), String> {
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, c)) if is_prom_name_start(c) => {}
        _ => return Err(format!("expected metric name at {s:?}")),
    }
    let end = s
        .char_indices()
        .find(|(_, c)| !is_prom_name_char(*c))
        .map_or(s.len(), |(i, _)| i);
    Ok((&s[..end], &s[end..]))
}

fn validate_prom_line(line: &str) -> Result<(), String> {
    if line.is_empty() {
        return Ok(());
    }
    if let Some(comment) = line.strip_prefix('#') {
        let comment = comment.trim_start();
        if let Some(ty) = comment.strip_prefix("TYPE ") {
            let mut parts = ty.split_whitespace();
            let name = parts.next().ok_or("TYPE line missing metric name")?;
            parse_prom_name(name)
                .ok()
                .filter(|(_, rest)| rest.is_empty())
                .ok_or_else(|| format!("bad metric name {name:?} in TYPE line"))?;
            let kind = parts.next().ok_or("TYPE line missing metric type")?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("unknown metric type {kind:?}"));
            }
            if parts.next().is_some() {
                return Err("trailing tokens on TYPE line".to_owned());
            }
        }
        return Ok(());
    }
    let (_, mut rest) = parse_prom_name(line)?;
    if let Some(labels) = rest.strip_prefix('{') {
        rest = validate_prom_labels(labels)?;
    }
    let rest = rest.trim_start();
    let mut parts = rest.split_whitespace();
    let value = parts.next().ok_or("sample line missing value")?;
    let is_special = matches!(value, "+Inf" | "-Inf" | "NaN" | "Inf");
    if !is_special && value.parse::<f64>().is_err() {
        return Err(format!("bad sample value {value:?}"));
    }
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("bad timestamp {ts:?}"));
        }
    }
    if parts.next().is_some() {
        return Err("trailing tokens on sample line".to_owned());
    }
    Ok(())
}

/// Validates `k="v",…}` (the leading `{` already consumed); returns
/// the remainder after the closing brace.
fn validate_prom_labels(mut s: &str) -> Result<&str, String> {
    loop {
        if let Some(rest) = s.strip_prefix('}') {
            return Ok(rest);
        }
        let (_, rest) = parse_prom_name(s).map_err(|_| format!("expected label name at {s:?}"))?;
        let rest = rest
            .strip_prefix("=\"")
            .ok_or_else(|| format!("expected =\" after label name at {s:?}"))?;
        // Scan the quoted value, honoring \\, \", \n escapes.
        let bytes = rest.as_bytes();
        let mut i = 0;
        loop {
            match bytes.get(i) {
                None => return Err("unterminated label value".to_owned()),
                Some(b'\\') => {
                    if !matches!(bytes.get(i + 1), Some(b'\\' | b'"' | b'n')) {
                        return Err(format!("bad escape in label value at byte {i}"));
                    }
                    i += 2;
                }
                Some(b'"') => break,
                Some(_) => i += 1,
            }
        }
        s = &rest[i + 1..];
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else if !s.starts_with('}') {
            return Err(format!("expected ',' or '}}' after label at {s:?}"));
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(format!("unexpected end of input at byte {pos}"));
    };
    match c {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => parse_string(b, pos),
        b't' => parse_lit(b, pos, "true"),
        b'f' => parse_lit(b, pos, "false"),
        b'n' => parse_lit(b, pos, "null"),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        c => Err(format!("unexpected byte {:?} at {pos}", c as char)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos} (expected {lit})"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("invalid number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    Ok(())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        for k in 1..=4 {
                            if !b.get(*pos + k).is_some_and(|d| d.is_ascii_hexdigit()) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

// ----------------------------------------------------------------------
// JSON tree parsing — the consuming half of `validate_json`, for tools
// that read exporter output back (`herc top` polling `/metrics`, e2e
// tests asserting on access-log lines).
// ----------------------------------------------------------------------

/// A parsed JSON value. Objects keep their key order (the exporters
/// emit deterministically ordered objects, and consumers may pin it).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered `(key, value)` pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's `(key, value)` pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses `text` as one JSON value (trailing whitespace allowed) into
/// a [`JsonValue`] tree.
///
/// # Errors
///
/// A byte offset and description of the first syntax error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = tree_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn tree_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(format!("unexpected end of input at byte {pos}"));
    };
    match c {
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            loop {
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b'"') {
                    return Err(format!("expected object key at byte {pos}"));
                }
                let key = tree_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                members.push((key, tree_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(tree_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        b'"' => Ok(JsonValue::String(tree_string(b, pos)?)),
        b't' => parse_lit(b, pos, "true").map(|()| JsonValue::Bool(true)),
        b'f' => parse_lit(b, pos, "false").map(|()| JsonValue::Bool(false)),
        b'n' => parse_lit(b, pos, "null").map(|()| JsonValue::Null),
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            parse_number(b, pos)?;
            let text = std::str::from_utf8(&b[start..*pos]).expect("digits are ASCII");
            text.parse::<f64>()
                .map(JsonValue::Number)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }
        c => Err(format!("unexpected byte {:?} at {pos}", c as char)),
    }
}

/// Parses and unescapes a JSON string literal starting at `b[*pos]`.
fn tree_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    parse_string(b, pos)?; // validates; [start+1, *pos-1] is the body
    let body = std::str::from_utf8(&b[start + 1..*pos - 1])
        .map_err(|_| format!("non-UTF-8 string at byte {start}"))?;
    if !body.contains('\\') {
        return Ok(body.to_owned());
    }
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
                // Lone surrogates (the validator allows them) map to
                // the replacement character rather than failing.
                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
            }
            _ => return Err("bad escape".to_owned()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ThreadTrace;

    fn sample() -> Trace {
        Trace {
            threads: vec![ThreadTrace {
                lane: 0,
                items: vec![
                    TraceItem::Enter {
                        name: "plan",
                        mono_ns: 1_000,
                        sim_md: Some(0),
                        args: vec![Arg::new("target", "signoff")],
                    },
                    TraceItem::Event {
                        name: "cache.hit",
                        mono_ns: 1_500,
                        sim_md: None,
                        args: Vec::new(),
                    },
                    TraceItem::Exit {
                        mono_ns: 9_000,
                        sim_md: Some(2_000),
                        args: vec![Arg::new("dirty", 3u64)],
                    },
                ],
            }],
        }
    }

    #[test]
    fn jsonl_is_valid_and_logical_is_deterministic() {
        let t = sample();
        let wall = to_jsonl(&t, Timebase::Wall);
        validate_jsonl(&wall).unwrap();
        assert!(wall.contains("\"t\":1000"));
        let a = to_jsonl(&t, Timebase::Logical);
        let b = to_jsonl(&t, Timebase::Logical);
        assert_eq!(a, b);
        assert!(a.contains("\"t\":0"));
        assert!(!a.contains("1000")); // wall time fully excluded
    }

    #[test]
    fn chrome_export_is_valid_json_with_complete_and_instant_events() {
        let t = sample();
        for tb in [Timebase::Wall, Timebase::Logical] {
            let json = to_chrome(&t, tb);
            validate_json(&json).unwrap();
            assert!(json.contains("\"ph\":\"X\""), "{json}");
            assert!(json.contains("\"ph\":\"i\""), "{json}");
            assert!(json.contains("\"ph\":\"M\""), "{json}");
            assert!(json.contains("\"sim_md\":0"), "{json}");
        }
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let t = Trace {
            threads: vec![ThreadTrace {
                lane: 0,
                items: vec![
                    TraceItem::Enter {
                        name: "s",
                        mono_ns: 0,
                        sim_md: None,
                        args: vec![Arg::new("msg", "quote\" slash\\ newline\n tab\t ctrl\u{1}")],
                    },
                    TraceItem::Exit {
                        mono_ns: 1,
                        sim_md: None,
                        args: Vec::new(),
                    },
                ],
            }],
        };
        validate_jsonl(&to_jsonl(&t, Timebase::Wall)).unwrap();
        validate_json(&to_chrome(&t, Timebase::Wall)).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(validate_json("{\"a\":1}").is_ok());
        assert!(validate_json("[1,2,3]").is_ok());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("{]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("12.").is_err());
        assert!(validate_json("{} extra").is_err());
        assert!(validate_jsonl("{\"a\":1}\nnot json\n").is_err());
    }

    #[test]
    fn json_tree_parser_round_trips_metrics_shapes() {
        let text = r#"{"serve.requests{endpoint=\"plan\"}":3,"lat":{"count":2,"sum":2.5,"p50":0.4,"buckets":[[0.25,0],[null,2]]},"ok":true,"none":null,"s":"a\"b\\c\nd"}"#;
        let v = parse_json(text).unwrap();
        assert_eq!(
            v.get("serve.requests{endpoint=\"plan\"}")
                .and_then(JsonValue::as_f64),
            Some(3.0)
        );
        let lat = v.get("lat").unwrap();
        assert_eq!(lat.get("sum").and_then(JsonValue::as_f64), Some(2.5));
        let buckets = lat.get("buckets").and_then(JsonValue::as_array).unwrap();
        assert_eq!(buckets[1].as_array().unwrap()[0], JsonValue::Null);
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("a\"b\\c\nd"));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2] trailing").is_err());
        // The exporters' own output parses.
        parse_json(&crate::Metrics::to_json()).unwrap();
    }

    #[test]
    fn write_atomic_creates_parents_and_replaces() {
        let dir = std::env::temp_dir().join(format!("obs_export_test_{}", std::process::id()));
        let path = dir.join("nested/report.json");
        write_atomic(&path, "{\"v\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        write_atomic(&path, "{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
