//! B10 — write-ahead journal overhead and recovery throughput.
//!
//! The failure-semantics layer's cost model: every mutating
//! `MetadataDb` call appends a replayable op before applying it, and
//! crash recovery replays the whole journal into a fresh database.
//! This kernel measures both sides on a scripted session of `n`
//! tool-run cycles (begin-run → store-data → finish-run), which is
//! the op mix a real execution produces:
//!
//! * `append_plain/{n}` — the session with journaling disabled: the
//!   baseline mutation cost.
//! * `append_journaled/{n}` — the identical session with the journal
//!   enabled. The gate: journaled median must stay within 2× of plain
//!   (see EXPERIMENTS.md §B10); in practice the append is a `Vec` push
//!   of an enum, far below the validation + container work it shadows.
//! * `replay/{n}` — `MetadataDb::recover` on the finished journal:
//!   crash-recovery throughput, linear in journal length.
//! * `parse_text/{n}` — `Journal::parse` on the serialized text, the
//!   cold-start half of recovering from an on-disk log.
//!
//! Expected shape: `append_journaled / append_plain` ≲ 1.3×; replay
//! of a 1 024-run session well under a millisecond.

use harness::bench::{black_box, Record};
use metadata::{Journal, MetadataDb};
use schedule::WorkDays;
use schema::examples;

/// A deterministic session of `runs` Create cycles on the circuit
/// schema — one planning pass, then begin/store/finish per run, with
/// every eighth output linked complete so link ops appear in the mix.
fn session(runs: usize, journaled: bool) -> MetadataDb {
    let schema = examples::circuit_design();
    let mut db = MetadataDb::for_schema(&schema);
    if journaled {
        db.enable_journal();
    }
    let planning = db.begin_planning(WorkDays::ZERO);
    let plan = db
        .plan_activity(planning, "Create", WorkDays::ZERO, WorkDays::new(1.0))
        .expect("known activity");
    db.assign(plan, "alice").expect("live plan");
    let mut t = 0.0;
    let mut last = None;
    for i in 0..runs {
        let run = db
            .begin_run("Create", "alice", WorkDays::new(t))
            .expect("known activity");
        let data = db.store_data("n.net", vec![(i & 0xFF) as u8; 16]);
        t += 0.25;
        let out = db
            .finish_run(run, "netlist", data, WorkDays::new(t), &[])
            .expect("valid finish");
        last = Some(out);
        t += 0.01;
    }
    if let Some(entity) = last {
        db.link_completion(plan, entity).expect("valid link");
    }
    db
}

/// Runs the kernel; `quick` selects the smoke-test plan and sizes.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("recover_journal", quick);
    let sizes: &[usize] = if quick { &[64] } else { &[64, 256, 1_024] };
    for &n in sizes {
        suite.bench(&format!("append_plain/{n}"), Some(n as u64), || {
            session(black_box(n), false).dump().len()
        });
        suite.bench(&format!("append_journaled/{n}"), Some(n as u64), || {
            session(black_box(n), true).dump().len()
        });

        let journal = session(n, true).journal().expect("journal enabled").clone();
        suite.bench(&format!("replay/{n}"), Some(n as u64), || {
            MetadataDb::recover(black_box(&journal))
                .expect("own journal replays")
                .dump()
                .len()
        });

        let text = journal.to_text();
        suite.bench(&format!("parse_text/{n}"), Some(n as u64), || {
            Journal::parse(black_box(&text))
                .expect("own text parses")
                .len()
        });
    }
    suite.into_records()
}
