//! Experiment E9 (extension): resource optimization — "previous
//! schedule data can be used ... to optimize the resources associated
//! with future projects" (§I). Sweeps team sizes over the ASIC flow
//! and a wide layered flow, printing the staffing curve, the minimal
//! team for a deadline, and crash-analysis advice.

use hercules::Hercules;
use schedule::WorkDays;
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

fn sweep(name: &str, h: &Hercules, target: &str, deadline: f64) {
    let sweep = h
        .sweep_team_sizes(target, WorkDays::new(deadline), 6)
        .expect("sweepable");
    println!("{name} (deadline day {deadline}):");
    for p in &sweep.points {
        println!(
            "  {} designer(s) -> finish day {:>8} {}",
            p.team_size,
            p.finish.to_string(),
            if p.finish.days() <= deadline {
                "meets deadline"
            } else {
                ""
            }
        );
    }
    println!(
        "  minimal team: {:?}, saturation at: {:?}\n",
        sweep.minimal_team, sweep.saturation_team
    );
}

fn main() {
    let asic = Hercules::new(
        examples::asic_flow(),
        ToolLibrary::standard(),
        Team::of_size(1),
        5,
    );
    sweep("ASIC flow (mostly a chain)", &asic, "signoff_report", 40.0);

    let wide = Hercules::new(
        examples::layered(3, 6, 2),
        ToolLibrary::standard(),
        Team::of_size(1),
        5,
    );
    sweep("layered flow 3x6 (wide parallelism)", &wide, "merged", 30.0);

    println!("crash analysis on the ASIC flow (shorten one estimate 50%):");
    match asic
        .crash_advice("signoff_report", 0.5)
        .expect("valid target")
    {
        Some(advice) => println!(
            "  crash {:?}: finish day {} (gain {:.1}d)",
            advice.activity, advice.new_finish, advice.gain_days
        ),
        None => println!("  no single crash helps"),
    }
}
