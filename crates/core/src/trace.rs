//! Named trace scenarios: canned plan/execute/replan sessions run
//! under the [`obs`] collector, for `herc trace`, `herc metrics`, the
//! golden-trace test, and the CI `obs` stage.
//!
//! A scenario is a *pure function of its name and seed*: the same
//! invocation always produces the same span tree (and, under
//! [`obs::export::Timebase::Logical`], byte-identical Chrome JSON),
//! which is what makes the exported trace golden-pinnable.
//!
//! Two scenarios are built in:
//!
//! * `fig8` — the paper's Fig. 8 session (ASIC flow, team of 3,
//!   seed 5): plan `signoff_report`, execute the front half up to
//!   `placed_db`, replan the remainder, then recover the metadata
//!   database from its journal. Fault-free and fully deterministic.
//! * `chaos` — a seeded [`chaos::ChaosScenario`](crate::chaos): plan →
//!   faulted execute (retries, timeouts, blocked activities, degraded
//!   replan) → journal replay → crash-armed follow-up session with
//!   recovery. The trace for a failing seed is the first thing a
//!   debugging session wants.
//!
//! # Example
//!
//! ```
//! let trace = hercules::trace::record("fig8", 0).unwrap();
//! assert!(trace.has_span("hercules.plan"));
//! assert!(trace.has_span("hercules.execute"));
//! assert!(trace.has_span("hercules.replan"));
//! assert!(trace.has_span("journal.recover"));
//! ```

use metadata::MetadataDb;
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

use crate::chaos::ChaosScenario;
use crate::manager::Hercules;

/// A chaos seed whose scenario exercises the full degraded path —
/// retries *and* a blocked activity — so the exported span tree covers
/// plan → execute (retry/blocked events) → replan → journal recovery.
/// Pinned by `tests/trace_scenarios.rs`; used as the CI trace seed.
pub const CHAOS_TRACE_SEED: u64 = 3;

/// The built-in scenario names accepted by [`record`].
pub const SCENARIOS: &[&str] = &["fig8", "chaos"];

/// Records the Fig. 8 session under an exclusive collector session and
/// returns its trace.
///
/// The session is: plan `signoff_report` on the ASIC flow (team of 3,
/// project seed 5), execute through `placed_db`, replan the open
/// scope, and finally replay the write-ahead journal — touching every
/// span family in the taxonomy except the fault events.
fn record_fig8() -> obs::Trace {
    let session = obs::Collector::session();
    let mut h = Hercules::new(
        examples::asic_flow(),
        ToolLibrary::standard(),
        Team::of_size(3),
        5,
    );
    h.enable_journal();
    h.plan("signoff_report").expect("fig8 plan");
    h.execute("placed_db").expect("fig8 execute");
    h.replan("signoff_report").expect("fig8 replan");
    let journal = h.db().journal().expect("journal enabled");
    MetadataDb::recover(journal).expect("fig8 recovery");
    session.finish()
}

/// Records a chaos scenario (see [`crate::chaos`]) under an exclusive
/// collector session and returns its trace. The scenario's verdict is
/// ignored here — the point is the telemetry, not the gate.
fn record_chaos(seed: u64) -> obs::Trace {
    let session = obs::Collector::session();
    let _report = ChaosScenario::from_seed(seed).run();
    session.finish()
}

/// Runs the named scenario under the collector and returns its trace.
///
/// `seed` is ignored by `fig8` (the figure pins its own seed) and
/// selects the [`ChaosScenario`] for `chaos`.
///
/// # Errors
///
/// The scenario name is unknown (see [`SCENARIOS`]).
pub fn record(scenario: &str, seed: u64) -> Result<obs::Trace, String> {
    match scenario {
        "fig8" => Ok(record_fig8()),
        "chaos" => Ok(record_chaos(seed)),
        other => Err(format!(
            "unknown scenario {other:?} (expected one of: {})",
            SCENARIOS.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_covers_the_span_taxonomy() {
        let trace = record("fig8", 0).unwrap();
        trace.validate().unwrap();
        for span in [
            "hercules.plan",
            "hercules.execute",
            "execute.activity",
            "hercules.replan",
            "journal.recover",
        ] {
            assert!(trace.has_span(span), "missing span {span}");
        }
        assert!(trace.has_event("journal.append"));
    }

    #[test]
    fn fig8_is_deterministic() {
        let a = record("fig8", 0).unwrap();
        let b = record("fig8", 0).unwrap();
        assert_eq!(a.shape(), b.shape());
        use obs::export::{to_chrome, Timebase};
        assert_eq!(
            to_chrome(&a, Timebase::Logical),
            to_chrome(&b, Timebase::Logical)
        );
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        assert!(record("fig9", 0).is_err());
    }
}
