use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::error::SchemaError;

/// Whether an entity class names a tool or a kind of design data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityKind {
    /// A CAD tool (netlist editor, simulator, router, ...).
    Tool,
    /// A class of design data (netlist, stimuli, performance, ...).
    Data,
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntityKind::Tool => write!(f, "tool"),
            EntityKind::Data => write!(f, "data"),
        }
    }
}

/// A Level-1 entity class: a named tool or data type.
///
/// Instances of these classes are what Level-3 metadata records; the
/// schema only declares that the class exists and what kind it is.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EntityClass {
    name: String,
    kind: EntityKind,
}

impl EntityClass {
    /// Creates a class. Names are case-sensitive identifiers.
    pub fn new(name: impl Into<String>, kind: EntityKind) -> Self {
        EntityClass {
            name: name.into(),
            kind,
        }
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this class is a tool or data.
    pub fn kind(&self) -> EntityKind {
        self.kind
    }
}

impl fmt::Display for EntityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.name)
    }
}

/// A construction rule `output = tool(input_1, ..., input_n)`,
/// optionally labelled with an activity name.
///
/// The activity name is what schedules track ("Create", "Simulate"); if
/// the source omits it, validation derives one from the tool name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstructionRule {
    activity: String,
    output: String,
    tool: String,
    inputs: Vec<String>,
}

impl ConstructionRule {
    /// Creates a rule. `inputs` may be empty: source activities (like
    /// the paper's `Create`) apply a tool to nothing.
    pub fn new(
        activity: impl Into<String>,
        output: impl Into<String>,
        tool: impl Into<String>,
        inputs: Vec<String>,
    ) -> Self {
        ConstructionRule {
            activity: activity.into(),
            output: output.into(),
            tool: tool.into(),
            inputs,
        }
    }

    /// The activity label, e.g. `"Simulate"`.
    pub fn activity(&self) -> &str {
        &self.activity
    }

    /// The produced data class.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// The applied tool class.
    pub fn tool(&self) -> &str {
        &self.tool
    }

    /// The consumed data classes, in declaration order.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }
}

impl fmt::Display for ConstructionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} = {}({})",
            self.activity,
            self.output,
            self.tool,
            self.inputs.join(", ")
        )
    }
}

/// A validated Level-1 task schema: entity classes plus construction
/// rules.
///
/// Invariants guaranteed by construction (see [`TaskSchemaBuilder`] and
/// [`parse_schema`](crate::parse_schema)):
///
/// * class names are unique; activity names are unique;
/// * every rule references declared classes with the right kinds;
/// * every data class is produced by at most one rule;
/// * the rules' data-dependency relation is acyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSchema {
    name: String,
    classes: Vec<EntityClass>,
    rules: Vec<ConstructionRule>,
    class_index: HashMap<String, usize>,
    rule_index: HashMap<String, usize>,
}

impl TaskSchema {
    /// The schema's name (defaults to `"schema"` when not set).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All declared entity classes, in declaration order.
    pub fn classes(&self) -> &[EntityClass] {
        &self.classes
    }

    /// All construction rules, in declaration order.
    pub fn rules(&self) -> &[ConstructionRule] {
        &self.rules
    }

    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<&EntityClass> {
        self.class_index.get(name).map(|&i| &self.classes[i])
    }

    /// Looks up a rule by activity name.
    pub fn rule(&self, activity: &str) -> Option<&ConstructionRule> {
        self.rule_index.get(activity).map(|&i| &self.rules[i])
    }

    /// The rule that produces `data_class`, if any. Data classes with no
    /// producer are *primary inputs* the designer supplies directly
    /// (like `stimuli` in the paper's example).
    pub fn producer_of(&self, data_class: &str) -> Option<&ConstructionRule> {
        self.rules.iter().find(|r| r.output() == data_class)
    }

    /// The rules that consume `data_class`.
    pub fn consumers_of(&self, data_class: &str) -> Vec<&ConstructionRule> {
        self.rules
            .iter()
            .filter(|r| r.inputs().iter().any(|i| i == data_class))
            .collect()
    }

    /// Data classes never produced by any rule — the designer-supplied
    /// primary inputs of every flow instantiated from this schema.
    pub fn primary_inputs(&self) -> Vec<&EntityClass> {
        self.classes
            .iter()
            .filter(|c| c.kind() == EntityKind::Data && self.producer_of(c.name()).is_none())
            .collect()
    }

    /// Data classes never consumed by any rule — final design outputs.
    pub fn primary_outputs(&self) -> Vec<&EntityClass> {
        self.classes
            .iter()
            .filter(|c| {
                c.kind() == EntityKind::Data
                    && self.consumers_of(c.name()).is_empty()
                    && self.producer_of(c.name()).is_some()
            })
            .collect()
    }

    /// Renders the schema back to DSL source accepted by
    /// [`parse_schema`](crate::parse_schema).
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        for class in &self.classes {
            out.push_str(&format!("{class};\n"));
        }
        for rule in &self.rules {
            out.push_str(&format!(
                "activity {}: {} = {}({});\n",
                rule.activity(),
                rule.output(),
                rule.tool(),
                rule.inputs().join(", ")
            ));
        }
        out
    }
}

impl fmt::Display for TaskSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schema {} ({} classes, {} rules)",
            self.name,
            self.classes.len(),
            self.rules.len()
        )?;
        for rule in &self.rules {
            writeln!(f, "  {rule}")?;
        }
        Ok(())
    }
}

/// Builds and validates a [`TaskSchema`].
///
/// # Example
///
/// ```
/// use schema::{EntityKind, TaskSchemaBuilder};
///
/// # fn main() -> Result<(), schema::SchemaError> {
/// let schema = TaskSchemaBuilder::new("circuit")
///     .class("netlist", EntityKind::Data)
///     .class("netlist_editor", EntityKind::Tool)
///     .rule("Create", "netlist", "netlist_editor", &[])
///     .build()?;
/// assert_eq!(schema.primary_outputs()[0].name(), "netlist");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskSchemaBuilder {
    name: String,
    classes: Vec<EntityClass>,
    rules: Vec<ConstructionRule>,
}

impl TaskSchemaBuilder {
    /// Starts a schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TaskSchemaBuilder {
            name: name.into(),
            classes: Vec::new(),
            rules: Vec::new(),
        }
    }

    /// Replaces the schema name, keeping all declarations.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Declares an entity class.
    #[must_use]
    pub fn class(mut self, name: impl Into<String>, kind: EntityKind) -> Self {
        self.classes.push(EntityClass::new(name, kind));
        self
    }

    /// Declares a construction rule. Pass an empty `activity` to derive
    /// a label from the tool name (`"simulator"` → `"Run simulator"`).
    #[must_use]
    pub fn rule(
        mut self,
        activity: impl Into<String>,
        output: impl Into<String>,
        tool: impl Into<String>,
        inputs: &[&str],
    ) -> Self {
        let mut activity = activity.into();
        let tool = tool.into();
        if activity.is_empty() {
            activity = format!("Run {tool}");
        }
        self.rules.push(ConstructionRule::new(
            activity,
            output,
            tool,
            inputs.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }

    /// Validates all invariants and produces the schema.
    ///
    /// # Errors
    ///
    /// Any [`SchemaError`] variant other than `Parse` may be returned;
    /// see the variant docs for the exact conditions.
    pub fn build(self) -> Result<TaskSchema, SchemaError> {
        if self.rules.is_empty() {
            return Err(SchemaError::Empty);
        }
        let mut class_index = HashMap::new();
        for (i, class) in self.classes.iter().enumerate() {
            if class_index.insert(class.name().to_owned(), i).is_some() {
                return Err(SchemaError::DuplicateClass(class.name().to_owned()));
            }
        }
        let mut rule_index = HashMap::new();
        let mut producers: HashMap<&str, &str> = HashMap::new();
        for (i, rule) in self.rules.iter().enumerate() {
            if rule_index.insert(rule.activity().to_owned(), i).is_some() {
                return Err(SchemaError::DuplicateActivity(rule.activity().to_owned()));
            }
            let check_kind =
                |name: &str, expected: EntityKind, kind_word: &'static str| match class_index
                    .get(name)
                {
                    None => Err(SchemaError::UnknownClass {
                        class: name.to_owned(),
                        activity: rule.activity().to_owned(),
                    }),
                    Some(&ci) if self.classes[ci].kind() != expected => {
                        Err(SchemaError::WrongKind {
                            class: name.to_owned(),
                            activity: rule.activity().to_owned(),
                            expected: kind_word,
                        })
                    }
                    Some(_) => Ok(()),
                };
            check_kind(rule.output(), EntityKind::Data, "data")?;
            check_kind(rule.tool(), EntityKind::Tool, "tool")?;
            let mut seen_inputs = HashSet::new();
            for input in rule.inputs() {
                check_kind(input, EntityKind::Data, "data")?;
                if !seen_inputs.insert(input.as_str()) {
                    return Err(SchemaError::DuplicateInput {
                        class: input.clone(),
                        activity: rule.activity().to_owned(),
                    });
                }
                if input == rule.output() {
                    return Err(SchemaError::SelfDependency {
                        activity: rule.activity().to_owned(),
                    });
                }
            }
            if let Some(first) = producers.insert(rule.output(), rule.activity()) {
                let _ = first;
                return Err(SchemaError::DuplicateProducer {
                    class: rule.output().to_owned(),
                    activity: rule.activity().to_owned(),
                });
            }
        }
        let schema = TaskSchema {
            name: if self.name.is_empty() {
                "schema".to_owned()
            } else {
                self.name
            },
            classes: self.classes,
            rules: self.rules,
            class_index,
            rule_index,
        };
        // Acyclicity: project onto the graph substrate, which rejects
        // cycles at edge insertion.
        crate::graph::SchemaGraph::new(&schema)
            .map_err(|activity| SchemaError::CyclicSchema { activity })?;
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit() -> TaskSchemaBuilder {
        TaskSchemaBuilder::new("circuit")
            .class("netlist", EntityKind::Data)
            .class("stimuli", EntityKind::Data)
            .class("performance", EntityKind::Data)
            .class("netlist_editor", EntityKind::Tool)
            .class("simulator", EntityKind::Tool)
            .rule("Create", "netlist", "netlist_editor", &[])
            .rule(
                "Simulate",
                "performance",
                "simulator",
                &["netlist", "stimuli"],
            )
    }

    #[test]
    fn builds_paper_example() {
        let s = circuit().build().unwrap();
        assert_eq!(s.classes().len(), 5);
        assert_eq!(s.rules().len(), 2);
        assert_eq!(s.rule("Simulate").unwrap().output(), "performance");
        assert_eq!(s.producer_of("netlist").unwrap().activity(), "Create");
        assert!(s.producer_of("stimuli").is_none());
    }

    #[test]
    fn primary_inputs_and_outputs() {
        let s = circuit().build().unwrap();
        let ins: Vec<_> = s.primary_inputs().iter().map(|c| c.name()).collect();
        assert_eq!(ins, vec!["stimuli"]);
        let outs: Vec<_> = s.primary_outputs().iter().map(|c| c.name()).collect();
        assert_eq!(outs, vec!["performance"]);
    }

    #[test]
    fn consumers_of_netlist() {
        let s = circuit().build().unwrap();
        let consumers = s.consumers_of("netlist");
        assert_eq!(consumers.len(), 1);
        assert_eq!(consumers[0].activity(), "Simulate");
    }

    #[test]
    fn empty_schema_rejected() {
        assert_eq!(TaskSchemaBuilder::new("x").build(), Err(SchemaError::Empty));
    }

    #[test]
    fn duplicate_class_rejected() {
        let err = TaskSchemaBuilder::new("x")
            .class("a", EntityKind::Data)
            .class("a", EntityKind::Tool)
            .class("t", EntityKind::Tool)
            .rule("R", "a", "t", &[])
            .build()
            .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateClass("a".into()));
    }

    #[test]
    fn duplicate_activity_rejected() {
        let err = circuit()
            .class("layout", EntityKind::Data)
            .rule("Create", "layout", "netlist_editor", &[])
            .build()
            .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateActivity("Create".into()));
    }

    #[test]
    fn duplicate_producer_rejected() {
        let err = circuit()
            .rule("Create2", "netlist", "netlist_editor", &[])
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateProducer { class, .. } if class == "netlist"));
    }

    #[test]
    fn unknown_class_rejected() {
        let err = circuit()
            .class("waves", EntityKind::Data)
            .rule("View", "waves", "viewer", &[])
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::UnknownClass { class, .. } if class == "viewer"));
    }

    #[test]
    fn wrong_kind_rejected() {
        // Using a data class in tool position.
        let err = TaskSchemaBuilder::new("x")
            .class("a", EntityKind::Data)
            .class("b", EntityKind::Data)
            .rule("R", "a", "b", &[])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SchemaError::WrongKind {
                expected: "tool",
                ..
            }
        ));
        // Using a tool class as an input.
        let err = TaskSchemaBuilder::new("x")
            .class("a", EntityKind::Data)
            .class("t", EntityKind::Tool)
            .rule("R", "a", "t", &["t"])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SchemaError::WrongKind {
                expected: "data",
                ..
            }
        ));
    }

    #[test]
    fn duplicate_input_rejected() {
        let err = circuit()
            .class("report", EntityKind::Data)
            .rule("Check", "report", "simulator", &["netlist", "netlist"])
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateInput { .. }));
    }

    #[test]
    fn self_dependency_rejected() {
        let err = TaskSchemaBuilder::new("x")
            .class("a", EntityKind::Data)
            .class("t", EntityKind::Tool)
            .rule("R", "a", "t", &["a"])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            SchemaError::SelfDependency {
                activity: "R".into()
            }
        );
    }

    #[test]
    fn cyclic_schema_rejected() {
        let err = TaskSchemaBuilder::new("x")
            .class("a", EntityKind::Data)
            .class("b", EntityKind::Data)
            .class("t", EntityKind::Tool)
            .rule("MakeB", "b", "t", &["a"])
            .rule("MakeA", "a", "t", &["b"])
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::CyclicSchema { .. }));
    }

    #[test]
    fn empty_activity_name_derived_from_tool() {
        let s = TaskSchemaBuilder::new("x")
            .class("a", EntityKind::Data)
            .class("t", EntityKind::Tool)
            .rule("", "a", "t", &[])
            .build()
            .unwrap();
        assert_eq!(s.rules()[0].activity(), "Run t");
    }

    #[test]
    fn to_source_roundtrips_through_parser() {
        let s = circuit().build().unwrap();
        let reparsed = crate::parse_schema(&s.to_source()).unwrap();
        assert_eq!(reparsed.rules(), s.rules());
        assert_eq!(reparsed.classes(), s.classes());
    }

    #[test]
    fn display_shows_rules() {
        let s = circuit().build().unwrap();
        let text = s.to_string();
        assert!(text.contains("Simulate: performance = simulator(netlist, stimuli)"));
    }
}
