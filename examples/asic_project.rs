//! A realistic project: a nine-activity RTL-to-signoff ASIC flow run
//! by a three-designer team, with calendars, PERT risk analysis, a
//! mid-project slip, automatic propagation, and a history-informed
//! replan — the full feature surface a project manager would use.
//!
//! Run with `cargo run --example asic_project`.

use hercules::Hercules;
use schedule::gantt::GanttOptions;
use schedule::pert::{completion_probability, ThreePoint};
use schedule::{CalDate, Calendar, ScheduleNetwork, WorkDays};
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let team = Team::with_names(["alice", "bob", "carol"]);
    let mut h = Hercules::new(examples::asic_flow(), ToolLibrary::standard(), team, 5);

    // Designer intuition for the big-ticket items; the rest falls back
    // to tool models (and, after execution, measured history).
    h.set_estimate("WriteRtl", WorkDays::new(12.0))?;
    h.set_estimate("VerifyRtl", WorkDays::new(6.0))?;

    // --- Plan against a real calendar -------------------------------
    let plan = h.plan("signoff_report")?;
    let cal = Calendar::five_day(CalDate::new(1995, 6, 12)) // DAC'95 week
        .with_holiday(CalDate::new(1995, 7, 4)); // Independence Day
    println!("proposed schedule (project start {}):", cal.start());
    for pa in plan.activities() {
        println!(
            "  {:<12} {} .. {}  {}  {}",
            pa.activity,
            cal.date_of(pa.start.days()),
            cal.date_of((pa.start + pa.duration).days()),
            if pa.critical { "CRITICAL" } else { "        " },
            pa.assignee,
        );
    }
    println!(
        "proposed tapeout: {} (day {})",
        cal.date_of(plan.project_finish().days()),
        plan.project_finish()
    );

    // --- PERT risk on the same network ------------------------------
    let mut net = ScheduleNetwork::new();
    let mut ids = Vec::new();
    for pa in plan.activities() {
        ids.push((
            pa.activity.clone(),
            net.add_activity(pa.activity.clone(), pa.duration)?,
        ));
    }
    let tree = h.extract_task_tree("signoff_report")?;
    for (activity, id) in &ids {
        for consumer in tree.consumers_of_output(activity) {
            let cid = ids.iter().find(|(a, _)| a == consumer).expect("in plan").1;
            net.add_precedence(*id, cid)?;
        }
    }
    let estimates: Vec<_> = ids
        .iter()
        .map(|(activity, id)| {
            let d = plan.activity(activity).expect("planned").duration.days();
            (
                *id,
                ThreePoint::new(d * 0.6, d, d * 2.0).expect("valid three-point"),
            )
        })
        .collect();
    let deadline = WorkDays::new(plan.project_finish().days() * 1.15);
    let risk = completion_probability(&net, &estimates, deadline)?;
    println!(
        "\nPERT: expected finish day {:.1}, sigma {:.1}d; P(finish within +15% buffer) = {:.0}%",
        risk.expected.days(),
        risk.std_dev,
        risk.probability * 100.0
    );

    // --- Execute the front of the flow; something slips --------------
    h.execute("rtl")?;
    let slip = h.db().finish_slip("WriteRtl").unwrap_or(0.0);
    println!("\nafter executing through RTL: WriteRtl slip {slip:+.1}d");
    let outcome = h.propagate_slip("WriteRtl")?;
    println!(
        "automatic update: {} downstream plans shifted, new finish day {}",
        outcome.len(),
        outcome.project_finish
    );

    // --- Finish the project; replan uses measured history ------------
    h.execute("signoff_report")?;
    let replay = h.replan("signoff_report")?;
    println!(
        "\nproject complete at day {}; a fresh replan has {} open items (history now feeds estimates)",
        h.clock(),
        replay.len()
    );

    let status = h.status();
    print!(
        "\n{}",
        status.gantt(&GanttOptions {
            ascii: true,
            width: 72,
            label_width: 14,
            // Civil-date axis: ticks show MM-DD under the work calendar.
            calendar: Some(cal.clone()),
        })
    );
    println!("\nvariance: {}", status.variance());
    println!(
        "slipped activities: {} of {}",
        status.slipped_count(),
        status.rows().len()
    );
    Ok(())
}
