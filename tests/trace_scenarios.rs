//! Integration tests for the named trace scenarios (`hercules::trace`)
//! and their exported forms — including the golden Chrome trace the
//! CI `obs` stage pins.
//!
//! Every test in this binary that runs Hercules code does so inside an
//! exclusive [`obs::Collector::session`], so parallel test threads
//! serialize on the session lock and never pollute each other's
//! traces.

use std::path::Path;

use hercules::trace::{record, CHAOS_TRACE_SEED};
use obs::export::{to_chrome, to_jsonl, validate_json, validate_jsonl, Timebase};

/// The acceptance bar for `herc trace`: a chaos seed's span tree
/// covers plan → execute (including retry and blocked telemetry) →
/// replan → journal recovery.
#[test]
fn chaos_trace_covers_full_degraded_lifecycle() {
    let trace = record("chaos", CHAOS_TRACE_SEED).unwrap();
    trace.validate().unwrap();
    for span in [
        "hercules.plan",
        "hercules.execute",
        "execute.activity",
        "hercules.replan",
        "journal.recover",
    ] {
        assert!(trace.has_span(span), "missing span {span}");
    }
    for event in [
        "execute.retry",
        "execute.timeout",
        "execute.blocked",
        "fault.injected",
        "journal.append",
    ] {
        assert!(trace.has_event(event), "missing event {event}");
    }
}

#[test]
fn chaos_trace_is_deterministic() {
    let a = record("chaos", CHAOS_TRACE_SEED).unwrap();
    let b = record("chaos", CHAOS_TRACE_SEED).unwrap();
    assert_eq!(a.shape(), b.shape());
    assert_eq!(
        to_chrome(&a, Timebase::Logical),
        to_chrome(&b, Timebase::Logical)
    );
}

/// Both exporters emit output the in-repo validator accepts, in both
/// timestamp domains — the same check the CI `obs` stage applies to
/// the `herc trace` output.
#[test]
fn exports_are_well_formed() {
    let trace = record("chaos", CHAOS_TRACE_SEED).unwrap();
    for timebase in [Timebase::Wall, Timebase::Logical] {
        validate_json(&to_chrome(&trace, timebase)).unwrap();
        validate_jsonl(&to_jsonl(&trace, timebase)).unwrap();
    }
}

/// The committed `artifacts/fig8_trace.json` must match what the
/// exporter produces today: the Fig. 8 session under the logical
/// timebase is byte-deterministic, so any drift is a real change to
/// the span taxonomy, the exporter format, or the scenario itself.
#[test]
fn fig8_chrome_trace_matches_golden() {
    let trace = record("fig8", 0).unwrap();
    let actual = to_chrome(&trace, Timebase::Logical);
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("artifacts/fig8_trace.json");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", golden_path.display()));
    if golden.trim_end() != actual.trim_end() {
        let first = golden
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (g, a))| g != a)
            .map(|(i, (g, a))| format!("line {}:\n  golden: {g}\n  actual: {a}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: golden {} vs actual {}",
                    golden.lines().count(),
                    actual.lines().count()
                )
            });
        panic!(
            "fig8 trace drifted from artifacts/fig8_trace.json\nfirst difference at {first}\n\
             if the change is intentional, regenerate with:\n  \
             cargo run -p dac95-schedflow --bin herc -- trace fig8 --logical --out artifacts/fig8_trace.json\n"
        );
    }
}
