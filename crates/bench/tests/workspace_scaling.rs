//! The B12 acceptance gate: mixed plan/replan/query throughput against
//! the multi-project workspace must scale ≥2× from 1 to 4 threads.
//!
//! Each write session holds its project's exclusive lock across a
//! simulated tool/commit latency, so this gate tests **lock
//! granularity** — RwLock-per-project sharding overlaps the waits of
//! sessions on different projects — and stays meaningful on
//! single-core CI containers (see `kernels::workspace_concurrent`).
//! A regression to a coarse store-wide lock flattens the curve and
//! fails here long before a human reads a benchmark report.

use std::time::Instant;

use bench::kernels::workspace_concurrent::{run_batch, seeded_workspace, PROJECTS};

/// Wall time of the best of `tries` batches at `threads` threads —
/// min, not mean, to shrug off scheduler noise on loaded CI hosts.
fn best_batch_secs(
    ws: &std::sync::Arc<hercules::Workspace>,
    threads: usize,
    ops_per_project: usize,
    tries: usize,
) -> f64 {
    (0..tries)
        .map(|_| {
            let t0 = Instant::now();
            run_batch(ws, threads, ops_per_project);
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn four_threads_double_single_thread_throughput() {
    const OPS_PER_PROJECT: usize = 8;
    const TRIES: usize = 5;

    let ws = seeded_workspace();
    // Warmup: populate plan caches and fault in the code paths.
    run_batch(&ws, 1, 2);

    let t1 = best_batch_secs(&ws, 1, OPS_PER_PROJECT, TRIES);
    let t4 = best_batch_secs(&ws, 4, OPS_PER_PROJECT, TRIES);

    let total_ops = (PROJECTS * OPS_PER_PROJECT) as f64;
    let ops_s_1 = total_ops / t1;
    let ops_s_4 = total_ops / t4;
    let scaling = ops_s_4 / ops_s_1;
    eprintln!(
        "workspace_concurrent: 1 thread {ops_s_1:.0} ops/s, \
         4 threads {ops_s_4:.0} ops/s, scaling {scaling:.2}x"
    );
    assert!(
        scaling >= 2.0,
        "throughput scaled only {scaling:.2}x from 1 to 4 threads \
         ({ops_s_1:.0} -> {ops_s_4:.0} ops/s); the workspace's \
         per-project sharding has regressed toward a global lock"
    );
}
