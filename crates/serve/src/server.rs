//! The TCP front end: a blocking accept loop feeding a bounded
//! connection queue drained by a fixed worker-thread pool.
//!
//! Backpressure is two-layered:
//!
//! 1. the **accept queue** is bounded (`queue_cap`): when every worker
//!    is busy and the queue is full, the accept thread answers 429
//!    immediately instead of letting connections pile up unanswered;
//! 2. **per-tenant in-flight caps** (see [`crate::auth::Admission`])
//!    protect tenants from each other once a connection reaches a
//!    worker.
//!
//! Queue depth is observed into the `serve.queue.depth` histogram on
//! every enqueue and overflow rejections count into
//! `serve.queue.rejected`, so load shedding is visible in `/metrics`.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use hercules::Workspace;
use obs::{Collector, Metrics};

use crate::access_log::AccessLog;
use crate::api::{Api, ApiConfig};
use crate::auth::TokenRegistry;
use crate::http::{read_request, ReadOutcome, Response, DEFAULT_IO_TIMEOUT};

/// Server construction knobs.
#[derive(Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:0"` (port 0 ⇒ ephemeral).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded accept-queue capacity; overflow ⇒ 429.
    pub queue_cap: usize,
    /// Max in-flight requests per tenant before 429.
    pub per_tenant_cap: usize,
    /// Simulated per-request session latency (benches).
    pub session_latency: Duration,
    /// Bearer tokens; empty ⇒ open mode.
    pub tokens: TokenRegistry,
    /// Socket read/write timeout.
    pub io_timeout: Duration,
    /// Flight-recorder ring capacity per thread (0 disables). The
    /// recorder is lossy and always-on: a live server keeps the most
    /// recent spans for `GET /debug/flight` and 5xx fault bodies at a
    /// cost bounded by B16 `obs_live`.
    pub flight_cap: usize,
    /// Where to append the JSONL access log, if anywhere.
    pub access_log: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_cap: 128,
            per_tenant_cap: 64,
            session_latency: Duration::ZERO,
            tokens: TokenRegistry::default(),
            io_timeout: DEFAULT_IO_TIMEOUT,
            flight_cap: 4096,
            access_log: None,
        }
    }
}

struct QueueMetrics {
    depth: obs::Histogram,
    rejected: obs::Counter,
    connections: obs::Counter,
}

fn queue_metrics() -> &'static QueueMetrics {
    static METRICS: OnceLock<QueueMetrics> = OnceLock::new();
    METRICS.get_or_init(|| QueueMetrics {
        depth: Metrics::histogram(
            "serve.queue.depth",
            &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
        ),
        rejected: Metrics::counter("serve.queue.rejected"),
        connections: Metrics::counter("serve.connections"),
    })
}

/// Bounded MPMC queue of accepted connections. `push` fails (→ 429)
/// when full; `pop` blocks until an item or shutdown arrives.
struct ConnQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    cap: usize,
}

struct QueueState {
    items: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Returns the stream back on overflow.
    fn push(&self, stream: TcpStream) -> Result<usize, TcpStream> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.items.len() >= self.cap {
            return Err(stream);
        }
        state.items.push_back(stream);
        let depth = state.items.len();
        drop(state);
        self.cv.notify_one();
        Ok(depth)
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(stream) = state.items.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.cv.notify_all();
    }
}

/// A running workspace server. Dropping without [`Server::shutdown`]
/// detaches the threads (they exit with the process); tests should
/// call `shutdown` for a clean join.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept thread and worker pool, and returns.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(ws: Arc<Workspace>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        if config.flight_cap > 0 {
            Collector::enable_flight(config.flight_cap);
        }
        let access_log = match &config.access_log {
            Some(path) => Some(AccessLog::open(path)?),
            None => None,
        };
        let api = Arc::new(Api::new(
            ws,
            ApiConfig {
                tokens: config.tokens,
                per_tenant_cap: config.per_tenant_cap,
                session_latency: config.session_latency,
                access_log,
            },
        ));
        let queue = Arc::new(ConnQueue::new(config.queue_cap));
        let stop = Arc::new(AtomicBool::new(false));
        let io_timeout = config.io_timeout;

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let api = Arc::clone(&api);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            serve_connection(stream, &api, io_timeout);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let accept_thread = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || {
                    for incoming in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = incoming else { continue };
                        queue_metrics().connections.inc();
                        match queue.push(stream) {
                            Ok(depth) => queue_metrics().depth.observe(depth as f64),
                            Err(mut stream) => {
                                // Shed load in the accept thread: a
                                // well-formed 429 is cheaper than a
                                // worker slot.
                                queue_metrics().rejected.inc();
                                let _ = stream.set_write_timeout(Some(io_timeout));
                                let _ = stream.write_all(
                                    &Response::error(429, "server queue full, retry later")
                                        .to_bytes(true),
                                );
                            }
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            addr,
            stop,
            queue,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (use for clients when the port was ephemeral).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.queue.close();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Handles one connection: a keep-alive loop of
/// read → route → respond. Malformed requests get their mapped 4xx/5xx
/// and close the connection; clean disconnects just end the loop.
fn serve_connection(mut stream: TcpStream, api: &Api, io_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        match read_request(&mut stream) {
            ReadOutcome::Request(req) => {
                let response = api.handle(&req);
                let close = !req.keep_alive();
                if stream.write_all(&response.to_bytes(close)).is_err() || close {
                    return;
                }
            }
            ReadOutcome::Reject(reject) => {
                let _ = stream
                    .write_all(&Response::error(reject.status, &reject.reason).to_bytes(true));
                return;
            }
            ReadOutcome::Disconnected => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use schema::examples;

    fn schema_source() -> String {
        format!(
            "schema circuit;\n{}",
            examples::circuit_design().to_source()
        )
    }

    fn start_open(workers: usize) -> (Server, Client) {
        let server = Server::start(
            Arc::new(Workspace::in_memory()),
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let client = Client::new(server.addr());
        (server, client)
    }

    #[test]
    fn serves_healthz_and_shuts_down_cleanly() {
        let (server, client) = start_open(2);
        let resp = client.get("/healthz").expect("healthz");
        assert_eq!(resp.status, 200);
        let health = obs::export::parse_json(&resp.body).expect("healthz is JSON");
        assert_eq!(
            health.get("status").and_then(|v| v.as_str()),
            Some("ok"),
            "{}",
            resp.body
        );
        assert_eq!(
            health.get("schema").and_then(|v| v.as_str()),
            Some(hercules::PROJECT_CONF_MAGIC)
        );
        assert_eq!(health.get("projects").and_then(|v| v.as_f64()), Some(0.0));
        assert_eq!(health.get("wedged").and_then(|v| v.as_f64()), Some(0.0));
        // Every response echoes a trace id the client can log.
        let trace = resp.header("x-herc-trace").expect("trace header");
        assert_eq!(trace.len(), 16, "{trace}");
        server.shutdown();
    }

    #[test]
    fn trace_header_round_trips_and_filters_the_flight_dump() {
        let (server, _) = start_open(2);
        let client = Client::new(server.addr()).with_header("x-herc-trace", "00000000deadbeef");
        let resp = client
            .post("/projects/alu?team=2&seed=7", schema_source().as_bytes())
            .expect("create");
        assert_eq!(resp.status, 201, "{}", resp.body);
        assert_eq!(resp.header("x-herc-trace"), Some("00000000deadbeef"));
        let resp = client
            .post("/projects/alu/plan?target=performance", b"")
            .expect("plan");
        assert_eq!(resp.status, 200, "{}", resp.body);
        // The flight recorder (on by default) kept this request's spans.
        let resp = client
            .get("/debug/flight?trace=00000000deadbeef")
            .expect("flight");
        assert_eq!(resp.status, 200, "{}", resp.body);
        obs::export::validate_json(&resp.body).expect("flight dump is JSON");
        assert!(
            resp.body.contains("\"serve.request\""),
            "dump should hold the request span: {}",
            resp.body
        );
        assert!(resp.body.contains("00000000deadbeef"), "{}", resp.body);
        // An id nobody used filters down to nothing.
        let resp = client
            .get("/debug/flight?trace=0000000000000001")
            .expect("flight");
        let dump = obs::export::parse_json(&resp.body).unwrap();
        assert_eq!(
            dump.get("total_records").and_then(|v| v.as_f64()),
            Some(0.0),
            "{}",
            resp.body
        );
        server.shutdown();
    }

    #[test]
    fn metrics_expose_prometheus_and_labeled_series() {
        let (server, client) = start_open(2);
        client.get("/projects").expect("warm-up request");
        let resp = client.get("/metrics?format=prom").expect("prom");
        assert_eq!(resp.status, 200);
        obs::export::validate_prometheus(&resp.body).expect("exposition must validate");
        assert!(
            resp.body
                .contains("serve_requests{endpoint=\"projects.list\"}"),
            "{}",
            resp.body
        );
        let resp = client.get("/metrics").expect("json");
        let metrics = obs::export::parse_json(&resp.body).expect("metrics JSON");
        assert!(
            metrics
                .get("serve.requests{endpoint=\"projects.list\"}")
                .is_some(),
            "{}",
            resp.body
        );
        server.shutdown();
    }

    #[test]
    fn access_log_records_every_request_with_its_trace_id() {
        let dir = std::env::temp_dir().join(format!(
            "schedflow-serve-log-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let server = Server::start(
            Arc::new(Workspace::in_memory()),
            ServerConfig {
                workers: 1,
                access_log: Some(path.clone()),
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let client = Client::new(server.addr()).with_header("x-herc-trace", "0000000000c0ffee");
        client.get("/projects").expect("list");
        server.shutdown();
        let text = std::fs::read_to_string(&path).unwrap();
        obs::export::validate_jsonl(&text).expect("access log is JSONL");
        let line = text
            .lines()
            .find(|l| l.contains("projects.list"))
            .expect("list request logged");
        let entry = obs::export::parse_json(line).unwrap();
        assert_eq!(
            entry.get("trace").and_then(|v| v.as_str()),
            Some("0000000000c0ffee")
        );
        assert_eq!(entry.get("status").and_then(|v| v.as_f64()), Some(200.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_project_lifecycle_over_tcp() {
        let (server, client) = start_open(2);
        let resp = client
            .post("/projects/alu?team=2&seed=7", schema_source().as_bytes())
            .expect("create");
        assert_eq!(resp.status, 201, "{}", resp.body);
        let resp = client
            .post("/projects/alu/run?target=performance", b"")
            .expect("run");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let resp = client.get("/projects/alu/status").expect("status");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("variance: "));
        let resp = client.get("/metrics").expect("metrics");
        assert_eq!(resp.status, 200);
        server.shutdown();
    }

    #[test]
    fn tokens_gate_requests_end_to_end() {
        let server = Server::start(
            Arc::new(Workspace::in_memory()),
            ServerConfig {
                tokens: TokenRegistry::parse("alice:sesame").unwrap(),
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let anon = Client::new(server.addr());
        assert_eq!(anon.get("/projects").expect("req").status, 401);
        let alice = Client::new(server.addr()).with_token("sesame");
        assert_eq!(alice.get("/projects").expect("req").status, 200);
        server.shutdown();
    }

    #[test]
    fn keep_alive_carries_multiple_requests() {
        let (server, client) = start_open(1);
        let responses = client
            .pipelined(&[
                ("GET", "/healthz"),
                ("GET", "/projects"),
                ("GET", "/healthz"),
            ])
            .expect("keep-alive");
        assert_eq!(responses.len(), 3);
        assert!(responses.iter().all(|r| r.status == 200));
        server.shutdown();
    }
}
