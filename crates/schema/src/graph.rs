use std::collections::HashMap;

use flowgraph::{Dag, NodeId};

use crate::model::{EntityKind, TaskSchema};

/// A node of the schema's bipartite flow graph: either a data class or
/// an activity (construction rule).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SchemaNode {
    /// A data class, identified by name.
    Data(String),
    /// An activity, identified by its label.
    Activity(String),
}

impl SchemaNode {
    /// The underlying name, whichever variant.
    pub fn name(&self) -> &str {
        match self {
            SchemaNode::Data(n) | SchemaNode::Activity(n) => n,
        }
    }

    /// Returns `true` for [`SchemaNode::Activity`].
    pub fn is_activity(&self) -> bool {
        matches!(self, SchemaNode::Activity(_))
    }
}

impl std::fmt::Display for SchemaNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaNode::Data(n) => write!(f, "[{n}]"),
            SchemaNode::Activity(n) => write!(f, "({n})"),
        }
    }
}

/// The bipartite projection of a [`TaskSchema`] onto the DAG substrate:
/// `input data -> activity -> output data` edges for every rule.
///
/// This is the Level-1 graph that Level-2 task trees are extracted
/// from. Hercules initialises its task database by walking this graph
/// and creating a container per entity ("the Hercules task database is
/// initialized from the schema by generating a series of containers").
///
/// # Example
///
/// ```
/// use schema::{examples, SchemaGraph};
///
/// # fn main() -> Result<(), schema::SchemaError> {
/// let schema = examples::circuit_design();
/// let graph = SchemaGraph::for_schema(&schema);
/// assert_eq!(graph.activity_order(), vec!["Create", "Simulate"]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SchemaGraph {
    dag: Dag<SchemaNode, ()>,
    data_nodes: HashMap<String, NodeId>,
    activity_nodes: HashMap<String, NodeId>,
}

impl SchemaGraph {
    /// Builds the graph, returning `Err(activity)` naming a rule on a
    /// dependency cycle if the schema is cyclic.
    ///
    /// Exposed to the crate so validation can reuse the cycle check;
    /// external callers should use [`SchemaGraph::for_schema`] on an
    /// already-validated schema.
    pub(crate) fn new(schema: &TaskSchema) -> Result<Self, String> {
        let mut dag = Dag::new();
        let mut data_nodes = HashMap::new();
        let mut activity_nodes = HashMap::new();
        for class in schema.classes() {
            if class.kind() == EntityKind::Data {
                let id = dag.add_node(SchemaNode::Data(class.name().to_owned()));
                data_nodes.insert(class.name().to_owned(), id);
            }
        }
        for rule in schema.rules() {
            let a = dag.add_node(SchemaNode::Activity(rule.activity().to_owned()));
            activity_nodes.insert(rule.activity().to_owned(), a);
            for input in rule.inputs() {
                let d = data_nodes[input.as_str()];
                dag.add_edge(d, a, ())
                    .map_err(|_| rule.activity().to_owned())?;
            }
            let out = data_nodes[rule.output()];
            dag.add_edge(a, out, ())
                .map_err(|_| rule.activity().to_owned())?;
        }
        Ok(SchemaGraph {
            dag,
            data_nodes,
            activity_nodes,
        })
    }

    /// Builds the graph for a schema that already passed validation.
    ///
    /// # Panics
    ///
    /// Panics if the schema is cyclic, which validated schemas never
    /// are.
    pub fn for_schema(schema: &TaskSchema) -> Self {
        SchemaGraph::new(schema).expect("validated schemas are acyclic")
    }

    /// The underlying DAG (data and activity nodes, dependency edges).
    pub fn dag(&self) -> &Dag<SchemaNode, ()> {
        &self.dag
    }

    /// Node id of a data class.
    pub fn data_node(&self, class: &str) -> Option<NodeId> {
        self.data_nodes.get(class).copied()
    }

    /// Node id of an activity.
    pub fn activity_node(&self, activity: &str) -> Option<NodeId> {
        self.activity_nodes.get(activity).copied()
    }

    /// Activities in dependency order (inputs before outputs) — the
    /// order schedule planning and execution visit them.
    pub fn activity_order(&self) -> Vec<String> {
        self.dag
            .topological_order()
            .expect("schema graphs are DAGs by construction")
            .into_iter()
            .filter_map(|id| match self.dag.node_weight(id) {
                Some(SchemaNode::Activity(name)) => Some(name.clone()),
                _ => None,
            })
            .collect()
    }

    /// Renders the schema graph in Graphviz DOT: data classes as boxes,
    /// activities as ellipses — the diagram editors draw from Level 1.
    ///
    /// # Example
    ///
    /// ```
    /// use schema::{examples, SchemaGraph};
    ///
    /// let dot = SchemaGraph::for_schema(&examples::circuit_design()).to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("\"netlist\" -> \"Simulate\""));
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph schema {\n  rankdir=LR;\n");
        for node in self.dag.nodes() {
            match node.weight {
                SchemaNode::Data(name) => {
                    out.push_str(&format!("  \"{name}\" [shape=box];\n"));
                }
                SchemaNode::Activity(name) => {
                    out.push_str(&format!("  \"{name}\" [shape=ellipse, style=bold];\n"));
                }
            }
        }
        for edge in self.dag.edges() {
            let from = self.dag.node_weight(edge.from).expect("endpoint exists");
            let to = self.dag.node_weight(edge.to).expect("endpoint exists");
            out.push_str(&format!("  \"{}\" -> \"{}\";\n", from.name(), to.name()));
        }
        out.push_str("}\n");
        out
    }

    /// Activities in the input cone of `target` (a data class or
    /// activity name): the scope a task tree for `target` must cover.
    pub fn activities_for_target(&self, target: &str) -> Vec<String> {
        let root = self
            .data_node(target)
            .or_else(|| self.activity_node(target));
        let Some(root) = root else {
            return Vec::new();
        };
        let cone = self.dag.input_cone(&[root]);
        self.dag
            .topological_order()
            .expect("schema graphs are DAGs by construction")
            .into_iter()
            .filter(|id| cone.contains(id))
            .filter_map(|id| match self.dag.node_weight(id) {
                Some(SchemaNode::Activity(name)) => Some(name.clone()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn circuit_graph_shape() {
        let schema = examples::circuit_design();
        let g = SchemaGraph::for_schema(&schema);
        // 3 data nodes + 2 activities.
        assert_eq!(g.dag().node_count(), 5);
        // Create->netlist, netlist->Simulate, stimuli->Simulate,
        // Simulate->performance.
        assert_eq!(g.dag().edge_count(), 4);
    }

    #[test]
    fn activity_order_is_dependency_order() {
        let schema = examples::circuit_design();
        let g = SchemaGraph::for_schema(&schema);
        assert_eq!(g.activity_order(), vec!["Create", "Simulate"]);
    }

    #[test]
    fn activities_for_target_scopes_cone() {
        let schema = examples::asic_flow();
        let g = SchemaGraph::for_schema(&schema);
        let all = g.activity_order();
        let for_netlist = g.activities_for_target("netlist");
        assert!(for_netlist.len() < all.len());
        assert!(for_netlist.contains(&"Synthesize".to_owned()));
        assert!(!for_netlist.contains(&"Route".to_owned()));
    }

    #[test]
    fn activities_for_unknown_target_is_empty() {
        let schema = examples::circuit_design();
        let g = SchemaGraph::for_schema(&schema);
        assert!(g.activities_for_target("nonsense").is_empty());
    }

    #[test]
    fn node_lookups() {
        let schema = examples::circuit_design();
        let g = SchemaGraph::for_schema(&schema);
        assert!(g.data_node("netlist").is_some());
        assert!(g.activity_node("Simulate").is_some());
        assert!(g.data_node("Simulate").is_none());
    }

    #[test]
    fn dot_export_contains_all_nodes_and_edges() {
        let schema = examples::circuit_design();
        let g = SchemaGraph::for_schema(&schema);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph schema {"));
        assert!(dot.ends_with("}\n"));
        for class in ["netlist", "stimuli", "performance"] {
            assert!(dot.contains(&format!("\"{class}\" [shape=box]")));
        }
        for activity in ["Create", "Simulate"] {
            assert!(dot.contains(&format!("\"{activity}\" [shape=ellipse")));
        }
        assert_eq!(dot.matches(" -> ").count(), g.dag().edge_count());
    }

    #[test]
    fn display_marks_kinds() {
        assert_eq!(SchemaNode::Data("x".into()).to_string(), "[x]");
        assert_eq!(SchemaNode::Activity("y".into()).to_string(), "(y)");
        assert!(SchemaNode::Activity("y".into()).is_activity());
        assert_eq!(SchemaNode::Data("x".into()).name(), "x");
    }
}
