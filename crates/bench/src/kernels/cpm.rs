//! B1 — CPM forward/backward pass scaling with flow size.
//!
//! Expected shape: near-linear in activities + constraints; even
//! 10 000-activity networks analyze in milliseconds, which is why the
//! integrated system can afford to replan on every status change.

use harness::bench::Record;
use schedule::{ScheduleNetwork, WorkDays};

fn layered_network(layers: usize, width: usize) -> ScheduleNetwork {
    let mut net = ScheduleNetwork::new();
    let mut prev: Vec<_> = Vec::new();
    for l in 0..layers {
        let mut this = Vec::new();
        for w in 0..width {
            let id = net
                .add_activity(format!("l{l}w{w}"), WorkDays::new(1.0 + (w % 3) as f64))
                .expect("unique names");
            for &p in prev.iter().take(2) {
                net.add_precedence(p, id).expect("forward edges");
            }
            this.push(id);
        }
        prev = this;
    }
    net
}

/// Runs the kernel; `quick` selects the smoke-test plan and sizes.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("cpm", quick);
    let sizes: &[usize] = if quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    for &activities in sizes {
        let net = layered_network(activities / 10, 10);
        suite.bench(
            &format!("cpm_analyze/{activities}"),
            Some(activities as u64),
            || net.analyze().expect("acyclic"),
        );
    }
    suite.into_records()
}
