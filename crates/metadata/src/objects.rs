use std::fmt;

use schedule::WorkDays;

use crate::ids::{DataObjectId, EntityInstanceId, PlanningSessionId, RunId, ScheduleInstanceId};

/// Level-4 actual design data — the bytes a tool produced.
///
/// In the real Hercules this is a pointer into the design-data store;
/// here the content is held inline (our tools are synthetic), which
/// exercises the same code path: Level-3 metadata *links to* Level-4
/// data rather than containing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataObject {
    id: DataObjectId,
    name: String,
    content: Vec<u8>,
}

impl DataObject {
    pub(crate) fn new(id: DataObjectId, name: String, content: Vec<u8>) -> Self {
        DataObject { id, name, content }
    }

    /// This object's id.
    pub fn id(&self) -> DataObjectId {
        self.id
    }

    /// File-like name of the datum, e.g. `"counter.net"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw content.
    pub fn content(&self) -> &[u8] {
        &self.content
    }

    /// Content size in bytes.
    pub fn size(&self) -> usize {
        self.content.len()
    }
}

impl fmt::Display for DataObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?} ({} bytes)", self.id, self.name, self.size())
    }
}

/// Level-3 execution metadata for one version of one entity.
///
/// Created when a run of an activity completes: records *when* the
/// datum was produced, *by whom*, which run produced it, which other
/// instances it was derived from, and where the Level-4 data lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityInstance {
    id: EntityInstanceId,
    class: String,
    version: u32,
    created_at_millidays: i64,
    creator: String,
    produced_by: Option<RunId>,
    depends_on: Vec<EntityInstanceId>,
    data: DataObjectId,
}

impl EntityInstance {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: EntityInstanceId,
        class: String,
        version: u32,
        created_at: WorkDays,
        creator: String,
        produced_by: Option<RunId>,
        depends_on: Vec<EntityInstanceId>,
        data: DataObjectId,
    ) -> Self {
        EntityInstance {
            id,
            class,
            version,
            created_at_millidays: to_millidays(created_at),
            creator,
            produced_by,
            depends_on,
            data,
        }
    }

    /// This instance's id.
    pub fn id(&self) -> EntityInstanceId {
        self.id
    }

    /// The entity class this instance belongs to.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// Version number within the class container (1-based).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// When the instance was created, as an offset from project start.
    pub fn created_at(&self) -> WorkDays {
        from_millidays(self.created_at_millidays)
    }

    /// Who created it ("when an activity is performed *and by whom*").
    pub fn creator(&self) -> &str {
        &self.creator
    }

    /// The run that produced it (`None` for designer-supplied primary
    /// inputs like the paper's `stimuli`).
    pub fn produced_by(&self) -> Option<RunId> {
        self.produced_by
    }

    /// Instance dependencies: the exact input instances consumed.
    pub fn depends_on(&self) -> &[EntityInstanceId] {
        &self.depends_on
    }

    /// The Level-4 design data this metadata describes.
    pub fn data(&self) -> DataObjectId {
        self.data
    }
}

impl fmt::Display for EntityInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}@v{} by {} at {}",
            self.id,
            self.class,
            self.version,
            self.creator,
            self.created_at()
        )
    }
}

/// Execution state of a [`Run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Started but not yet finished.
    InProgress,
    /// Finished, producing an output instance.
    Finished,
}

/// One execution of an activity — "tools are not tied to specific
/// tasks and iterations of tasks can be performed", so an activity's
/// container accumulates a run per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    id: RunId,
    activity: String,
    operator: String,
    iteration: u32,
    started_at_millidays: i64,
    finished_at_millidays: Option<i64>,
    output: Option<EntityInstanceId>,
}

impl Run {
    pub(crate) fn new(
        id: RunId,
        activity: String,
        operator: String,
        iteration: u32,
        started_at: WorkDays,
    ) -> Self {
        Run {
            id,
            activity,
            operator,
            iteration,
            started_at_millidays: to_millidays(started_at),
            finished_at_millidays: None,
            output: None,
        }
    }

    pub(crate) fn finish(&mut self, finished_at: WorkDays, output: EntityInstanceId) {
        self.finished_at_millidays = Some(to_millidays(finished_at));
        self.output = Some(output);
    }

    /// This run's id.
    pub fn id(&self) -> RunId {
        self.id
    }

    /// The activity executed.
    pub fn activity(&self) -> &str {
        &self.activity
    }

    /// The designer who ran it.
    pub fn operator(&self) -> &str {
        &self.operator
    }

    /// 1-based iteration count of this activity.
    pub fn iteration(&self) -> u32 {
        self.iteration
    }

    /// Start offset from project start.
    pub fn started_at(&self) -> WorkDays {
        from_millidays(self.started_at_millidays)
    }

    /// Finish offset, once finished.
    pub fn finished_at(&self) -> Option<WorkDays> {
        self.finished_at_millidays.map(from_millidays)
    }

    /// Elapsed duration, once finished.
    pub fn duration(&self) -> Option<WorkDays> {
        self.finished_at()
            .map(|f| f.saturating_sub(self.started_at()))
    }

    /// The produced entity instance, once finished.
    pub fn output(&self) -> Option<EntityInstanceId> {
        self.output
    }

    /// Current state.
    pub fn state(&self) -> RunState {
        if self.finished_at_millidays.is_some() {
            RunState::Finished
        } else {
            RunState::InProgress
        }
    }
}

impl fmt::Display for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.finished_at() {
            Some(end) => write!(
                f,
                "{} {}#{} by {} [{} .. {}]",
                self.id,
                self.activity,
                self.iteration,
                self.operator,
                self.started_at(),
                end
            ),
            None => write!(
                f,
                "{} {}#{} by {} [{} ..)",
                self.id,
                self.activity,
                self.iteration,
                self.operator,
                self.started_at()
            ),
        }
    }
}

/// Level-3 *schedule* data for one planned version of one activity —
/// the mirror of [`EntityInstance`] in the schedule space.
///
/// Records when the activity *should* run, for how long, and who is
/// assigned; once the designer declares the activity done, a link to
/// the final [`EntityInstance`] connects plan to reality.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleInstance {
    id: ScheduleInstanceId,
    activity: String,
    version: u32,
    session: PlanningSessionId,
    planned_start_millidays: i64,
    planned_duration_millidays: i64,
    assignees: Vec<String>,
    derived_from: Option<ScheduleInstanceId>,
    linked_entity: Option<EntityInstanceId>,
}

impl ScheduleInstance {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: ScheduleInstanceId,
        activity: String,
        version: u32,
        session: PlanningSessionId,
        planned_start: WorkDays,
        planned_duration: WorkDays,
        derived_from: Option<ScheduleInstanceId>,
    ) -> Self {
        ScheduleInstance {
            id,
            activity,
            version,
            session,
            planned_start_millidays: to_millidays(planned_start),
            planned_duration_millidays: to_millidays(planned_duration),
            assignees: Vec::new(),
            derived_from,
            linked_entity: None,
        }
    }

    pub(crate) fn assign(&mut self, designer: String) {
        if !self.assignees.contains(&designer) {
            self.assignees.push(designer);
        }
    }

    pub(crate) fn set_link(&mut self, entity: EntityInstanceId) {
        self.linked_entity = Some(entity);
    }

    /// This schedule instance's id.
    pub fn id(&self) -> ScheduleInstanceId {
        self.id
    }

    /// The planned activity.
    pub fn activity(&self) -> &str {
        &self.activity
    }

    /// Version within the activity's schedule container (1-based) —
    /// "different versions of schedule instances for each task can be
    /// generated... the schedule plan can be updated at any time".
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The planning session that created this instance.
    pub fn session(&self) -> PlanningSessionId {
        self.session
    }

    /// Proposed start offset from project start.
    pub fn planned_start(&self) -> WorkDays {
        from_millidays(self.planned_start_millidays)
    }

    /// Proposed duration.
    pub fn planned_duration(&self) -> WorkDays {
        from_millidays(self.planned_duration_millidays)
    }

    /// Proposed finish offset.
    pub fn planned_finish(&self) -> WorkDays {
        self.planned_start() + self.planned_duration()
    }

    /// Designers assigned to the activity.
    pub fn assignees(&self) -> &[String] {
        &self.assignees
    }

    /// The prior schedule instance this plan was derived from, if any —
    /// the provenance chain behind "which schedule plans were used to
    /// create the present schedule plan".
    pub fn derived_from(&self) -> Option<ScheduleInstanceId> {
        self.derived_from
    }

    /// The final entity instance, once the designer linked completion.
    pub fn linked_entity(&self) -> Option<EntityInstanceId> {
        self.linked_entity
    }

    /// Whether the activity has been declared complete.
    pub fn is_complete(&self) -> bool {
        self.linked_entity.is_some()
    }
}

impl fmt::Display for ScheduleInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}@v{} [{} + {}]",
            self.id,
            self.activity,
            self.version,
            self.planned_start(),
            self.planned_duration()
        )?;
        if let Some(e) = self.linked_entity {
            write!(f, " -> {e}")?;
        }
        Ok(())
    }
}

/// A planning session — the schedule-space analog of a [`Run`]. One
/// simulated execution of the flow produces one session grouping the
/// schedule instances it created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanningSession {
    id: PlanningSessionId,
    created_at_millidays: i64,
    instances: Vec<ScheduleInstanceId>,
}

impl PlanningSession {
    pub(crate) fn new(id: PlanningSessionId, created_at: WorkDays) -> Self {
        PlanningSession {
            id,
            created_at_millidays: to_millidays(created_at),
            instances: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, instance: ScheduleInstanceId) {
        self.instances.push(instance);
    }

    /// This session's id.
    pub fn id(&self) -> PlanningSessionId {
        self.id
    }

    /// When planning happened, as an offset from project start.
    pub fn created_at(&self) -> WorkDays {
        from_millidays(self.created_at_millidays)
    }

    /// Schedule instances created by this session, in planning order.
    pub fn instances(&self) -> &[ScheduleInstanceId] {
        &self.instances
    }
}

/// Timestamps are stored as integer milli-days so metadata objects stay
/// `Eq`/hashable while keeping sub-minute planning resolution.
pub(crate) fn to_millidays(t: WorkDays) -> i64 {
    (t.days() * 1000.0).round() as i64
}

pub(crate) fn from_millidays(md: i64) -> WorkDays {
    WorkDays::new(md as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millidays_roundtrip() {
        for d in [0.0, 0.001, 1.5, 17.25, 9999.0] {
            let t = WorkDays::new(d);
            assert_eq!(from_millidays(to_millidays(t)), t);
        }
    }

    #[test]
    fn data_object_accessors() {
        let d = DataObject::new(DataObjectId::new(0, 0), "x.net".into(), vec![1, 2, 3]);
        assert_eq!(d.size(), 3);
        assert_eq!(d.name(), "x.net");
        assert!(d.to_string().contains("3 bytes"));
    }

    #[test]
    fn run_lifecycle() {
        let mut run = Run::new(
            RunId::new(0, 0),
            "Simulate".into(),
            "bob".into(),
            1,
            WorkDays::new(2.0),
        );
        assert_eq!(run.state(), RunState::InProgress);
        assert_eq!(run.duration(), None);
        assert!(run.to_string().ends_with("..)"));
        run.finish(WorkDays::new(3.5), EntityInstanceId::new(0, 0));
        assert_eq!(run.state(), RunState::Finished);
        assert_eq!(run.duration(), Some(WorkDays::new(1.5)));
        assert_eq!(run.output(), Some(EntityInstanceId::new(0, 0)));
    }

    #[test]
    fn schedule_instance_dates() {
        let sc = ScheduleInstance::new(
            ScheduleInstanceId::new(0, 0),
            "Create".into(),
            1,
            PlanningSessionId::new(0, 0),
            WorkDays::new(1.0),
            WorkDays::new(2.0),
            None,
        );
        assert_eq!(sc.planned_finish(), WorkDays::new(3.0));
        assert!(!sc.is_complete());
        assert_eq!(sc.derived_from(), None);
    }

    #[test]
    fn assign_is_idempotent() {
        let mut sc = ScheduleInstance::new(
            ScheduleInstanceId::new(0, 0),
            "Create".into(),
            1,
            PlanningSessionId::new(0, 0),
            WorkDays::ZERO,
            WorkDays::ZERO,
            None,
        );
        sc.assign("alice".into());
        sc.assign("alice".into());
        sc.assign("bob".into());
        assert_eq!(sc.assignees(), ["alice", "bob"]);
    }

    #[test]
    fn entity_instance_display() {
        let e = EntityInstance::new(
            EntityInstanceId::new(4, 0),
            "netlist".into(),
            2,
            WorkDays::new(1.0),
            "alice".into(),
            Some(RunId::new(1, 0)),
            vec![EntityInstanceId::new(0, 0)],
            DataObjectId::new(7, 0),
        );
        let s = e.to_string();
        assert!(s.contains("netlist@v2"));
        assert!(s.contains("alice"));
        assert_eq!(e.depends_on(), [EntityInstanceId::new(0, 0)]);
    }
}
